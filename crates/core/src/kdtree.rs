//! The canonical KD-tree (paper Fig. 5a), stored cache-compact.
//!
//! Interior nodes carry only a split axis and plane; all points live in
//! leaf buckets of at most [`LEAF_SIZE`] points. Median splits keep the
//! tree balanced, giving `O(log n)` expected search; search prunes any
//! sub-tree whose half-space cannot contain a result closer than the
//! current best — the pruning that makes KD-trees efficient but also
//! *serializes* the search, which is the paper's motivation for the
//! two-stage variant.
//!
//! # Memory layout
//!
//! The structure is tuned for the cache, not for pointer elegance:
//!
//! * **Implicit (Eytzinger) node array** — interior nodes live in a flat
//!   `Vec` at heap positions (children of slot `e` at `2e+1` / `2e+2`),
//!   so descending a level is index arithmetic on a contiguous array
//!   instead of chasing child pointers, and the hot top levels of the
//!   tree share a handful of cache lines.
//! * **SoA leaf buckets** — leaf points are gathered into one
//!   [`PointSoA`] arena in depth-first leaf order; each leaf owns a
//!   contiguous lane slice sized to the SIMD width ([`LEAF_SIZE`] = 2×8
//!   lanes), which the [`crate::simd`] kernels scan without touching the
//!   original `Vec3` array.
//!
//! All results still refer to indices in the original build-order point
//! slice, and remain bit-identical to the previous one-point-per-node
//! layout: results are globally ordered by `(distance², index)`, which is
//! independent of traversal and bucket order.

use std::collections::BinaryHeap;

use crate::soa::PointSoA;
use crate::{simd, Neighbor, SearchStats};
use tigris_geom::Vec3;

/// Maximum points per leaf bucket: two full 8-lane SIMD blocks.
pub const LEAF_SIZE: usize = 2 * simd::LANES;

/// One implicit-array slot.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Padding for heap positions no subtree reached.
    Empty,
    /// An interior node: a splitting plane only, no point.
    Interior {
        /// Split axis: 0, 1 or 2.
        axis: u8,
        /// Split plane coordinate along `axis`.
        split: f64,
    },
    /// A leaf bucket: a contiguous range of the SoA arena.
    Leaf {
        /// First arena slot of this leaf.
        start: u32,
        /// Number of points in this leaf.
        len: u32,
    },
}

/// A canonical 3D KD-tree over a point set.
///
/// The tree owns a copy of the points; all results refer to indices in the
/// original input slice.
///
/// # Example
///
/// ```
/// use tigris_core::KdTree;
/// use tigris_geom::Vec3;
///
/// let pts = vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::new(5.0, 5.0, 5.0)];
/// let tree = KdTree::build(&pts);
/// assert_eq!(tree.nn(Vec3::new(0.9, 0.1, 0.0)).unwrap().index, 1);
/// assert_eq!(tree.radius(Vec3::ZERO, 1.5).len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Vec<Vec3>,
    /// Implicit node array: children of slot `e` at `2e+1` / `2e+2`.
    nodes: Vec<Slot>,
    /// Leaf point coordinates, SoA, in depth-first leaf order.
    arena: PointSoA,
    /// Arena slot → index in `points` (build order).
    ids: Vec<u32>,
    height: usize,
}

impl KdTree {
    /// Builds a balanced KD-tree by recursive median splits.
    ///
    /// The split axis at each node is the axis of largest extent of the
    /// node's point subset (the classic surface-area heuristic simplified
    /// for points). Construction is `O(n log² n)`.
    pub fn build(points: &[Vec3]) -> Self {
        let mut tree = KdTree {
            points: points.to_vec(),
            nodes: Vec::new(),
            arena: PointSoA::with_capacity(points.len()),
            ids: Vec::with_capacity(points.len()),
            height: 0,
        };
        if points.is_empty() {
            return tree;
        }
        let mut indices: Vec<u32> = (0..points.len() as u32).collect();
        let mut height = 0;
        build_into(
            points,
            &mut indices[..],
            0,
            &mut tree.nodes,
            &mut tree.arena,
            &mut tree.ids,
            1,
            &mut height,
        );
        tree.height = height;
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Height of the tree (number of levels, counting the leaf level;
    /// 0 for an empty tree).
    pub fn height(&self) -> usize {
        self.height
    }

    /// The indexed points.
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Number of interior (splitting-plane) nodes.
    pub fn interior_count(&self) -> usize {
        self.nodes.iter().filter(|s| matches!(s, Slot::Interior { .. })).count()
    }

    /// Number of leaf buckets.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|s| matches!(s, Slot::Leaf { .. })).count()
    }

    /// Heap bytes held by the tree: the point copy, the implicit node
    /// array, the SoA leaf arena and the id map (capacities, i.e. what
    /// the allocator charges).
    pub fn memory_bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<Vec3>()
            + self.nodes.capacity() * std::mem::size_of::<Slot>()
            + self.arena.memory_bytes()
            + self.ids.capacity() * std::mem::size_of::<u32>()
    }

    /// Nearest neighbor of `query`, or `None` for an empty tree.
    pub fn nn(&self, query: Vec3) -> Option<Neighbor> {
        let mut stats = SearchStats::new();
        self.nn_with_stats(query, &mut stats)
    }

    /// Nearest neighbor, accumulating visit counters into `stats`.
    ///
    /// Interior visits bill `tree_nodes_visited`; leaf buckets bill
    /// `leaves_scanned` / `leaf_points_scanned` (they are exhaustive SIMD
    /// scans, not per-point traversal).
    pub fn nn_with_stats(&self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        if self.nodes.is_empty() {
            return None;
        }
        stats.queries += 1;
        let mut best_d2 = f64::INFINITY;
        let mut best_id = u32::MAX;
        self.nn_recurse(0, query, &mut best_d2, &mut best_id, stats);
        (best_id != u32::MAX).then(|| Neighbor::new(best_id as usize, best_d2))
    }

    fn nn_recurse(
        &self,
        slot: usize,
        query: Vec3,
        best_d2: &mut f64,
        best_id: &mut u32,
        stats: &mut SearchStats,
    ) {
        match self.nodes[slot] {
            Slot::Empty => unreachable!("traversal never reaches padding slots"),
            Slot::Leaf { start, len } => {
                let (start, len) = (start as usize, len as usize);
                stats.leaves_scanned += 1;
                stats.leaf_points_scanned += len as u64;
                let view = self.arena.range(start, len);
                if let Some((d2, id)) = simd::nn_reduce(query, view, &self.ids[start..start + len])
                {
                    if d2 < *best_d2 || (d2 == *best_d2 && id < *best_id) {
                        *best_d2 = d2;
                        *best_id = id;
                    }
                }
            }
            Slot::Interior { axis, split } => {
                stats.tree_nodes_visited += 1;
                let delta = query.axis(axis as usize) - split;
                let (near, far) = if delta < 0.0 {
                    (2 * slot + 1, 2 * slot + 2)
                } else {
                    (2 * slot + 2, 2 * slot + 1)
                };
                self.nn_recurse(near, query, best_d2, best_id, stats);
                // The far half-space can only contain a better result when
                // the sphere around the query with the current best radius
                // crosses the splitting plane.
                if delta * delta <= *best_d2 {
                    self.nn_recurse(far, query, best_d2, best_id, stats);
                } else {
                    stats.subtrees_pruned += 1;
                }
            }
        }
    }

    /// The `k` nearest neighbors of `query`, sorted ascending by distance.
    ///
    /// Returns fewer than `k` results when the tree holds fewer points.
    pub fn knn(&self, query: Vec3, k: usize) -> Vec<Neighbor> {
        let mut stats = SearchStats::new();
        self.knn_with_stats(query, k, &mut stats)
    }

    /// k-NN with visit accounting.
    pub fn knn_with_stats(&self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        if self.nodes.is_empty() || k == 0 {
            return Vec::new();
        }
        stats.queries += 1;
        // Max-heap on distance keeps the current k best; the root is the
        // worst of the k and is the pruning bound.
        let mut heap: BinaryHeap<Neighbor> = BinaryHeap::with_capacity(k + 1);
        self.knn_recurse(0, query, k, &mut heap, stats);
        let mut out = heap.into_sorted_vec();
        out.truncate(k);
        out
    }

    fn knn_recurse(
        &self,
        slot: usize,
        query: Vec3,
        k: usize,
        heap: &mut BinaryHeap<Neighbor>,
        stats: &mut SearchStats,
    ) {
        match self.nodes[slot] {
            Slot::Empty => unreachable!("traversal never reaches padding slots"),
            Slot::Leaf { start, len } => {
                let (start, len) = (start as usize, len as usize);
                stats.leaves_scanned += 1;
                stats.leaf_points_scanned += len as u64;
                let mut d2s = [0.0_f64; LEAF_SIZE];
                simd::squared_distances(query, self.arena.range(start, len), &mut d2s[..len]);
                for (l, &d2) in d2s[..len].iter().enumerate() {
                    let cand = Neighbor::new(self.ids[start + l] as usize, d2);
                    if heap.len() < k {
                        heap.push(cand);
                    } else if let Some(worst) = heap.peek() {
                        // Full (distance, index) order so boundary ties
                        // break to the lower index — the brute-force (and
                        // cross-backend) contract.
                        if cand < *worst {
                            heap.pop();
                            heap.push(cand);
                        }
                    }
                }
            }
            Slot::Interior { axis, split } => {
                stats.tree_nodes_visited += 1;
                let delta = query.axis(axis as usize) - split;
                let (near, far) = if delta < 0.0 {
                    (2 * slot + 1, 2 * slot + 2)
                } else {
                    (2 * slot + 2, 2 * slot + 1)
                };
                self.knn_recurse(near, query, k, heap, stats);
                let bound = if heap.len() < k {
                    f64::INFINITY
                } else {
                    heap.peek().map_or(f64::INFINITY, |w| w.distance_squared)
                };
                if delta * delta <= bound {
                    self.knn_recurse(far, query, k, heap, stats);
                } else {
                    stats.subtrees_pruned += 1;
                }
            }
        }
    }

    /// All points within `radius` of `query`, sorted ascending by distance.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius(&self, query: Vec3, radius: f64) -> Vec<Neighbor> {
        let mut stats = SearchStats::new();
        self.radius_with_stats(query, radius, &mut stats)
    }

    /// Radius search with visit accounting.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius_with_stats(
        &self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        assert!(radius >= 0.0, "radius must be non-negative");
        if self.nodes.is_empty() {
            return Vec::new();
        }
        stats.queries += 1;
        // One leaf's worth of headroom skips the 4→8→16 realloc chain for
        // the common "a handful of hits" query.
        let mut out = Vec::with_capacity(LEAF_SIZE);
        self.radius_scan(query, radius * radius, radius, &mut out, stats);
        // `Neighbor` is totally ordered by (d², index) and indices are
        // unique, so the sorted result is independent of both traversal
        // order and sort stability.
        out.sort_unstable();
        out
    }

    /// Radius search appending into a caller-owned buffer: the hits are
    /// pushed onto `out` (existing contents untouched) and only the
    /// appended range is sorted, so the results for this query are
    /// bit-identical to [`KdTree::radius_with_stats`] while a warm
    /// buffer makes the query allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius_into_with_stats(
        &self,
        query: Vec3,
        radius: f64,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        assert!(radius >= 0.0, "radius must be non-negative");
        if self.nodes.is_empty() {
            return;
        }
        stats.queries += 1;
        let start = out.len();
        self.radius_scan(query, radius * radius, radius, out, stats);
        out[start..].sort_unstable();
    }

    /// Radius search for a whole group of (ideally co-located) queries
    /// in one traversal, filling `rows[i]` with the hits of
    /// `queries[i]`.
    ///
    /// The traversal descends into every subtree that at least one
    /// member's search ball could reach — the union of the members'
    /// individual traversals — so each member scans a superset of the
    /// leaves its own query would visit. All points within a member's
    /// radius live inside that member's own traversal region, the `d² ≤
    /// r²` filter rejects everything else, and the final per-row sort
    /// restores the canonical `(d², index)` order, so every row is
    /// bit-identical to [`KdTree::radius_with_stats`] on its query. The
    /// win is amortization: interior nodes are dispatched once per
    /// group instead of once per member, and each visited leaf's SoA
    /// lanes stream through the SIMD filter for all members while still
    /// cache-hot.
    ///
    /// Rows are cleared first. Visit accounting stays truthful to the
    /// shared work: `leaves_scanned` / `tree_nodes_visited` /
    /// `subtrees_pruned` count the single group traversal, while
    /// `queries` and `leaf_points_scanned` (every point-vs-member
    /// distance test) keep per-member totals.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative or `rows.len() !=
    /// queries.len()`.
    pub fn radius_group_into_with_stats(
        &self,
        queries: &[Vec3],
        radius: f64,
        rows: &mut [Vec<Neighbor>],
        stats: &mut SearchStats,
    ) {
        self.radius_group_unsorted_into_with_stats(queries, radius, rows, stats);
        for row in rows.iter_mut() {
            // Canonical (d², index) order — identical to the per-query
            // sort, but keyed on raw bits: d² is never negative, so its
            // IEEE bit pattern orders exactly like the float and a
            // single integer compare replaces the two-field `Ord`
            // chain. The unstable sort leaves equal-d² runs (rare in
            // real clouds) in arbitrary member order; the linear finish
            // below restores the index tie-break, making the result
            // independent of traversal order and sort stability.
            row.sort_unstable_by_key(|n| n.distance_squared.to_bits());
            let mut i = 1;
            while i < row.len() {
                let bits = row[i - 1].distance_squared.to_bits();
                if bits == row[i].distance_squared.to_bits() {
                    let start = i - 1;
                    let mut end = i + 1;
                    while end < row.len() && row[end].distance_squared.to_bits() == bits {
                        end += 1;
                    }
                    row[start..end].sort_unstable_by_key(|n| n.index);
                    i = end;
                } else {
                    i += 1;
                }
            }
        }
    }

    /// [`KdTree::radius_group_into_with_stats`] without the final
    /// canonical per-row sort: `rows[i]` receives exactly the hit *set*
    /// of `queries[i]` — same neighbors, same bits — but in traversal
    /// (ascending arena) order rather than `(d², index)` order.
    ///
    /// The sort is the dominant per-row cost of the grouped path on
    /// dense neighborhoods, and consumers whose accumulation is
    /// order-independent (exact `+= 1.0` histogram adds, for example)
    /// don't need it. Order-sensitive consumers must use the sorted
    /// entry point.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative or `rows.len() !=
    /// queries.len()`.
    pub fn radius_group_unsorted_into_with_stats(
        &self,
        queries: &[Vec3],
        radius: f64,
        rows: &mut [Vec<Neighbor>],
        stats: &mut SearchStats,
    ) {
        assert!(radius >= 0.0, "radius must be non-negative");
        assert_eq!(queries.len(), rows.len(), "one output row per query");
        for row in rows.iter_mut() {
            row.clear();
        }
        if self.nodes.is_empty() || queries.is_empty() {
            return;
        }
        stats.queries += queries.len() as u64;
        let (mut lo, mut hi) = (queries[0], queries[0]);
        for q in &queries[1..] {
            lo.x = lo.x.min(q.x);
            lo.y = lo.y.min(q.y);
            lo.z = lo.z.min(q.z);
            hi.x = hi.x.max(q.x);
            hi.y = hi.y.max(q.y);
            hi.z = hi.z.max(q.z);
        }
        let r2 = radius * radius;
        // The DFS below visits leaves left to right, which is ascending
        // arena order, so reachable leaves coalesce into a few long
        // contiguous spans. Hits are collected per merged span instead
        // of per leaf: one kernel dispatch covers what would otherwise
        // be dozens of calls on sub-SIMD-width slices, and each
        // member's query stays register-resident across a whole span.
        const MAX_SPANS: usize = 128;
        let mut spans = [(0_usize, 0_usize); MAX_SPANS];
        let mut nspans = 0_usize;
        let mut stack = [0_usize; 64];
        let mut top = 1;
        while top > 0 {
            top -= 1;
            let mut slot = stack[top];
            loop {
                match self.nodes[slot] {
                    Slot::Empty => unreachable!("traversal never reaches padding slots"),
                    Slot::Leaf { start, len } => {
                        let (start, len) = (start as usize, len as usize);
                        stats.leaves_scanned += 1;
                        stats.leaf_points_scanned += (len * queries.len()) as u64;
                        if nspans > 0 && spans[nspans - 1].0 + spans[nspans - 1].1 == start {
                            spans[nspans - 1].1 += len;
                        } else {
                            if nspans == MAX_SPANS {
                                self.scan_spans(&spans, queries, r2, rows);
                                nspans = 0;
                            }
                            spans[nspans] = (start, len);
                            nspans += 1;
                        }
                        break;
                    }
                    Slot::Interior { axis, split } => {
                        stats.tree_nodes_visited += 1;
                        // A side is reachable iff some member's ball
                        // crosses onto it — interval tests against the
                        // group's bounding box. `lo ≤ hi` keeps at
                        // least one side reachable.
                        let a = axis as usize;
                        let visit_left = lo.axis(a) - radius <= split;
                        let visit_right = hi.axis(a) + radius >= split;
                        if visit_left && visit_right {
                            stack[top] = 2 * slot + 2;
                            top += 1;
                            slot = 2 * slot + 1;
                        } else {
                            stats.subtrees_pruned += 1;
                            slot = if visit_left { 2 * slot + 1 } else { 2 * slot + 2 };
                        }
                    }
                }
            }
        }
        self.scan_spans(&spans[..nspans], queries, r2, rows);
    }

    /// Streams every `(start, len)` arena span through the SIMD radius
    /// filter for each group member, appending hits to the member's
    /// row. Span order per member is ascending arena order — the row
    /// order the unsorted entry point exposes; the sorted entry point
    /// re-sorts rows afterwards.
    fn scan_spans(
        &self,
        spans: &[(usize, usize)],
        queries: &[Vec3],
        r2: f64,
        rows: &mut [Vec<Neighbor>],
    ) {
        for (q, row) in queries.iter().zip(rows.iter_mut()) {
            for &(start, len) in spans {
                simd::radius_collect(
                    *q,
                    self.arena.range(start, len),
                    &self.ids[start..start + len],
                    r2,
                    row,
                );
            }
        }
    }

    /// Iterative radius traversal: descends near children inline and
    /// parks far children on an explicit stack. Unlike NN search, the
    /// `|Δ| ≤ r` prune does not depend on results found so far, so this
    /// visits exactly the nodes the recursive formulation would.
    fn radius_scan(
        &self,
        query: Vec3,
        r2: f64,
        r: f64,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        // One deferred far child per interior level: median splits keep
        // height ≤ ~log₂(n/8), far below this with u32 point ids.
        let mut stack = [0_usize; 64];
        let mut top = 1;
        while top > 0 {
            top -= 1;
            let mut slot = stack[top];
            loop {
                match self.nodes[slot] {
                    Slot::Empty => unreachable!("traversal never reaches padding slots"),
                    Slot::Leaf { start, len } => {
                        let (start, len) = (start as usize, len as usize);
                        stats.leaves_scanned += 1;
                        stats.leaf_points_scanned += len as u64;
                        simd::radius_collect(
                            query,
                            self.arena.range(start, len),
                            &self.ids[start..start + len],
                            r2,
                            out,
                        );
                        break;
                    }
                    Slot::Interior { axis, split } => {
                        stats.tree_nodes_visited += 1;
                        let delta = query.axis(axis as usize) - split;
                        let (near, far) = if delta < 0.0 {
                            (2 * slot + 1, 2 * slot + 2)
                        } else {
                            (2 * slot + 2, 2 * slot + 1)
                        };
                        if delta.abs() <= r {
                            stack[top] = far;
                            top += 1;
                        } else {
                            stats.subtrees_pruned += 1;
                        }
                        slot = near;
                    }
                }
            }
        }
    }
}

/// Recursively builds the subtree over `indices` into implicit slot
/// `slot`, appending leaf points to the SoA arena in depth-first order.
#[allow(clippy::too_many_arguments)]
fn build_into(
    points: &[Vec3],
    indices: &mut [u32],
    slot: usize,
    nodes: &mut Vec<Slot>,
    arena: &mut PointSoA,
    ids: &mut Vec<u32>,
    depth: usize,
    height: &mut usize,
) {
    if nodes.len() <= slot {
        nodes.resize(slot + 1, Slot::Empty);
    }
    if indices.len() <= LEAF_SIZE {
        *height = (*height).max(depth);
        let start = ids.len() as u32;
        for &i in indices.iter() {
            arena.push(points[i as usize]);
            ids.push(i);
        }
        nodes[slot] = Slot::Leaf { start, len: indices.len() as u32 };
        return;
    }

    // Split on the axis with the largest extent of this subset.
    let mut lo = Vec3::splat(f64::INFINITY);
    let mut hi = Vec3::splat(f64::NEG_INFINITY);
    for &i in indices.iter() {
        lo = lo.min(points[i as usize]);
        hi = hi.max(points[i as usize]);
    }
    let ext = hi - lo;
    let axis = if ext.x >= ext.y && ext.x >= ext.z {
        0
    } else if ext.y >= ext.z {
        1
    } else {
        2
    };

    // Median partition: left coords ≤ split ≤ right coords, which is what
    // makes |query − split| a sound pruning bound for the far half.
    let mid = indices.len() / 2;
    indices.select_nth_unstable_by(mid, |&a, &b| {
        let va = points[a as usize].axis(axis);
        let vb = points[b as usize].axis(axis);
        va.partial_cmp(&vb).unwrap().then(a.cmp(&b))
    });
    let split = points[indices[mid] as usize].axis(axis);
    nodes[slot] = Slot::Interior { axis: axis as u8, split };

    // Both halves are non-empty (len > LEAF_SIZE ≥ 1), so an interior
    // slot always has both children built.
    let (left_slice, right_slice) = indices.split_at_mut(mid);
    build_into(points, left_slice, 2 * slot + 1, nodes, arena, ids, depth + 1, height);
    build_into(points, right_slice, 2 * slot + 2, nodes, arena, ids, depth + 1, height);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::{knn_brute_force, nn_brute_force, radius_brute_force};

    /// Deterministic pseudo-random cloud without pulling in `rand` here.
    fn lcg_cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 20.0 - 10.0
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn build_empty_and_singleton() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.nn(Vec3::ZERO).is_none());
        assert!(t.radius(Vec3::ZERO, 1.0).is_empty());
        assert!(t.knn(Vec3::ZERO, 3).is_empty());

        let t = KdTree::build(&[Vec3::X]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.interior_count(), 0);
        assert_eq!(t.nn(Vec3::ZERO).unwrap().index, 0);
    }

    #[test]
    fn grouped_radius_rows_are_bit_identical_to_per_query_search() {
        let pts = lcg_cloud(700, 11);
        let t = KdTree::build(&pts);
        // Groups of every size 1..=17 (straddling leaf and SIMD widths),
        // mixing co-located runs with scattered members, duplicate
        // queries, and off-cloud queries with no hits.
        let mut queries: Vec<Vec3> = pts.iter().step_by(9).copied().collect();
        queries.push(pts[3]);
        queries.push(pts[3]);
        queries.push(Vec3::new(500.0, -500.0, 0.0));
        let mut start = 0;
        let mut size = 1;
        while start < queries.len() {
            let end = (start + size).min(queries.len());
            let group = &queries[start..end];
            let mut rows = vec![vec![Neighbor::new(9, 9.0)]; group.len()];
            let mut gstats = SearchStats::new();
            t.radius_group_into_with_stats(group, 1.7, &mut rows, &mut gstats);
            assert_eq!(gstats.queries, group.len() as u64);
            for (q, row) in group.iter().zip(&rows) {
                let mut stats = SearchStats::new();
                let expected = t.radius_with_stats(*q, 1.7, &mut stats);
                assert_eq!(row.len(), expected.len());
                for (a, b) in row.iter().zip(&expected) {
                    assert_eq!(a.index, b.index);
                    assert_eq!(a.distance_squared.to_bits(), b.distance_squared.to_bits());
                }
            }
            start = end;
            size = size % 17 + 1;
        }
        // Radius zero returns exactly the coincident points.
        let mut rows = vec![Vec::new(); 2];
        let mut stats = SearchStats::new();
        t.radius_group_into_with_stats(
            &[pts[5], Vec3::new(99.0, 99.0, 99.0)],
            0.0,
            &mut rows,
            &mut stats,
        );
        assert!(rows[0].iter().any(|n| n.index == 5 && n.distance_squared == 0.0));
        assert!(rows[1].is_empty());
        // Empty tree and empty group are no-ops.
        let empty = KdTree::build(&[]);
        let mut rows = vec![vec![Neighbor::new(1, 1.0)]];
        empty.radius_group_into_with_stats(&[Vec3::ZERO], 1.0, &mut rows, &mut stats);
        assert!(rows[0].is_empty(), "rows are cleared even on an empty tree");
        t.radius_group_into_with_stats(&[], 1.0, &mut [], &mut stats);
    }

    #[test]
    fn unsorted_grouped_radius_rows_hold_the_same_hit_set() {
        let pts = lcg_cloud(700, 23);
        let t = KdTree::build(&pts);
        let queries: Vec<Vec3> = pts.iter().step_by(31).copied().collect();
        for group in queries.chunks(7) {
            let mut rows = vec![vec![Neighbor::new(9, 9.0)]; group.len()];
            let mut stats = SearchStats::new();
            t.radius_group_unsorted_into_with_stats(group, 1.7, &mut rows, &mut stats);
            for (q, row) in group.iter().zip(&mut rows) {
                let expected = t.radius_with_stats(*q, 1.7, &mut SearchStats::new());
                // Canonically sorting the unsorted row must reproduce the
                // per-query result exactly — same hits, same bits.
                row.sort_unstable();
                assert_eq!(row.len(), expected.len());
                for (a, b) in row.iter().zip(&expected) {
                    assert_eq!(a.index, b.index);
                    assert_eq!(a.distance_squared.to_bits(), b.distance_squared.to_bits());
                }
            }
        }
    }

    #[test]
    fn height_is_logarithmic() {
        let pts = lcg_cloud(1024, 7);
        let t = KdTree::build(&pts);
        // Median splits over 1024 points with 16-point buckets reach the
        // leaf level after 6 halvings: height = 7 (interior levels + leaf
        // level).
        assert!(t.height() >= 6 && t.height() <= 8, "height = {}", t.height());
    }

    #[test]
    fn every_point_lands_in_exactly_one_leaf() {
        for n in [1, 15, 16, 17, 100, 1023] {
            let pts = lcg_cloud(n, n as u64);
            let t = KdTree::build(&pts);
            // The arena is a permutation of the input: ids cover 0..n once.
            let mut seen = vec![false; n];
            for slot in &t.nodes {
                if let Slot::Leaf { start, len } = *slot {
                    assert!(len as usize <= LEAF_SIZE);
                    for s in start..start + len {
                        let id = t.ids[s as usize] as usize;
                        assert!(!seen[id], "point {id} in two leaves (n = {n})");
                        seen[id] = true;
                        assert_eq!(t.arena.get(s as usize), pts[id]);
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "missing points (n = {n})");
        }
    }

    #[test]
    fn nn_matches_brute_force() {
        let pts = lcg_cloud(500, 42);
        let tree = KdTree::build(&pts);
        for (qi, q) in lcg_cloud(200, 1).into_iter().enumerate() {
            let a = tree.nn(q).unwrap();
            let b = nn_brute_force(&pts, q).unwrap();
            assert_eq!(a.index, b.index, "query {qi}");
            assert_eq!(a.distance_squared, b.distance_squared);
        }
    }

    #[test]
    fn nn_on_tree_points_is_exact() {
        let pts = lcg_cloud(100, 3);
        let tree = KdTree::build(&pts);
        for (i, &p) in pts.iter().enumerate() {
            let n = tree.nn(p).unwrap();
            assert_eq!(n.distance_squared, 0.0);
            assert_eq!(pts[n.index], pts[i]);
        }
    }

    #[test]
    fn radius_matches_brute_force() {
        let pts = lcg_cloud(400, 9);
        let tree = KdTree::build(&pts);
        for q in lcg_cloud(50, 2) {
            for r in [0.5, 2.0, 6.0] {
                let a = tree.radius(q, r);
                let b = radius_brute_force(&pts, q, r);
                assert_eq!(a.len(), b.len(), "r = {r}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.index, y.index);
                }
            }
        }
    }

    #[test]
    fn knn_matches_brute_force_distances() {
        let pts = lcg_cloud(300, 11);
        let tree = KdTree::build(&pts);
        for q in lcg_cloud(40, 5) {
            for k in [1, 4, 17] {
                let a = tree.knn(q, k);
                let b = knn_brute_force(&pts, q, k);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert!((x.distance_squared - y.distance_squared).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn knn_k_larger_than_tree() {
        let pts = lcg_cloud(5, 1);
        let tree = KdTree::build(&pts);
        assert_eq!(tree.knn(Vec3::ZERO, 50).len(), 5);
        assert!(tree.knn(Vec3::ZERO, 0).is_empty());
    }

    #[test]
    fn pruning_reduces_visits() {
        let pts = lcg_cloud(4096, 13);
        let tree = KdTree::build(&pts);
        let mut stats = SearchStats::new();
        tree.nn_with_stats(Vec3::new(0.1, 0.2, 0.3), &mut stats).unwrap();
        // NN on a balanced 4096-point bucket tree visits a handful of
        // interior nodes and leaf buckets, not the whole structure, and
        // must prune something.
        assert!(stats.tree_nodes_visited < 255, "visited {}", stats.tree_nodes_visited);
        assert!(stats.leaves_scanned > 0);
        assert!(stats.leaf_points_scanned < 4096);
        assert!(stats.subtrees_pruned > 0);
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let pts = vec![Vec3::X; 17];
        let tree = KdTree::build(&pts);
        let n = tree.nn(Vec3::X).unwrap();
        assert_eq!(n.distance_squared, 0.0);
        assert_eq!(tree.radius(Vec3::X, 0.1).len(), 17);
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Vec3> = (0..64).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let tree = KdTree::build(&pts);
        let n = tree.nn(Vec3::new(31.4, 0.0, 0.0)).unwrap();
        assert_eq!(pts[n.index].x, 31.0);
        assert_eq!(tree.radius(Vec3::new(10.0, 0.0, 0.0), 2.5).len(), 5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn radius_rejects_negative() {
        KdTree::build(&[Vec3::ZERO]).radius(Vec3::ZERO, -0.1);
    }

    #[test]
    fn memory_bytes_grows_with_the_point_set() {
        assert_eq!(KdTree::build(&[]).memory_bytes(), 0);
        let mut last = 0;
        for n in [16, 256, 4096] {
            let tree = KdTree::build(&lcg_cloud(n, 5));
            let bytes = tree.memory_bytes();
            // The tree stores the points twice (build-order copy + SoA
            // arena) plus ids, so the floor is easy to state exactly.
            let floor = n * (2 * std::mem::size_of::<Vec3>() + std::mem::size_of::<u32>());
            assert!(bytes >= floor, "n = {n}: {bytes} < {floor}");
            assert!(bytes > last, "n = {n}: accounting must grow with the point set");
            last = bytes;
        }
    }

    #[test]
    fn radius_results_sorted() {
        let pts = lcg_cloud(200, 21);
        let tree = KdTree::build(&pts);
        let res = tree.radius(Vec3::ZERO, 8.0);
        for w in res.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}

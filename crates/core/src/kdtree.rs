//! The canonical KD-tree (paper Fig. 5a).
//!
//! Every node stores one point; the point's coordinate along the node's
//! split axis defines a hyperplane partitioning the node's children. Median
//! splits keep the tree balanced, giving `O(log n)` expected search. Search
//! prunes any sub-tree whose half-space cannot contain a result closer than
//! the current best — the pruning that makes KD-trees efficient but also
//! *serializes* the search, which is the paper's motivation for the
//! two-stage variant.

use std::collections::BinaryHeap;

use crate::{Neighbor, SearchStats};
use tigris_geom::Vec3;

const NONE: u32 = u32::MAX;

/// One tree node: a point index, a split axis, and two optional children.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Index into the tree's point array.
    point: u32,
    /// Split axis: 0, 1 or 2.
    axis: u8,
    /// Left child node index, or `NONE`.
    left: u32,
    /// Right child node index, or `NONE`.
    right: u32,
}

/// A canonical 3D KD-tree over a point set.
///
/// The tree owns a copy of the points; all results refer to indices in the
/// original input slice.
///
/// # Example
///
/// ```
/// use tigris_core::KdTree;
/// use tigris_geom::Vec3;
///
/// let pts = vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::new(5.0, 5.0, 5.0)];
/// let tree = KdTree::build(&pts);
/// assert_eq!(tree.nn(Vec3::new(0.9, 0.1, 0.0)).unwrap().index, 1);
/// assert_eq!(tree.radius(Vec3::ZERO, 1.5).len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Vec<Vec3>,
    nodes: Vec<Node>,
    root: u32,
    height: usize,
}

impl KdTree {
    /// Builds a balanced KD-tree by recursive median splits.
    ///
    /// The split axis at each node is the axis of largest extent of the
    /// node's point subset (the classic surface-area heuristic simplified
    /// for points). Construction is `O(n log² n)`.
    pub fn build(points: &[Vec3]) -> Self {
        let mut indices: Vec<u32> = (0..points.len() as u32).collect();
        let mut nodes = Vec::with_capacity(points.len());
        let root = build_recursive(points, &mut indices[..], &mut nodes, 0);
        let height = if nodes.is_empty() { 0 } else { subtree_height(&nodes, root) };
        KdTree { points: points.to_vec(), nodes, root, height }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Height of the tree (number of levels; 0 for an empty tree).
    pub fn height(&self) -> usize {
        self.height
    }

    /// The indexed points.
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Nearest neighbor of `query`, or `None` for an empty tree.
    pub fn nn(&self, query: Vec3) -> Option<Neighbor> {
        let mut stats = SearchStats::new();
        self.nn_with_stats(query, &mut stats)
    }

    /// Nearest neighbor, accumulating visit counters into `stats`.
    pub fn nn_with_stats(&self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        if self.nodes.is_empty() {
            return None;
        }
        stats.queries += 1;
        let mut best = Neighbor::new(usize::MAX, f64::INFINITY);
        self.nn_recurse(self.root, query, &mut best, stats);
        (best.index != usize::MAX).then_some(best)
    }

    fn nn_recurse(&self, node_idx: u32, query: Vec3, best: &mut Neighbor, stats: &mut SearchStats) {
        let node = &self.nodes[node_idx as usize];
        let p = self.points[node.point as usize];
        stats.tree_nodes_visited += 1;
        let d2 = query.distance_squared(p);
        if d2 < best.distance_squared
            || (d2 == best.distance_squared && (node.point as usize) < best.index)
        {
            *best = Neighbor::new(node.point as usize, d2);
        }

        let axis = node.axis as usize;
        let delta = query.axis(axis) - p.axis(axis);
        let (near, far) =
            if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };

        if near != NONE {
            self.nn_recurse(near, query, best, stats);
        }
        if far != NONE {
            // The far half-space can only contain a better result when the
            // sphere around the query with the current best radius crosses
            // the splitting plane.
            if delta * delta <= best.distance_squared {
                self.nn_recurse(far, query, best, stats);
            } else {
                stats.subtrees_pruned += 1;
            }
        }
    }

    /// The `k` nearest neighbors of `query`, sorted ascending by distance.
    ///
    /// Returns fewer than `k` results when the tree holds fewer points.
    pub fn knn(&self, query: Vec3, k: usize) -> Vec<Neighbor> {
        let mut stats = SearchStats::new();
        self.knn_with_stats(query, k, &mut stats)
    }

    /// k-NN with visit accounting.
    pub fn knn_with_stats(&self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        if self.nodes.is_empty() || k == 0 {
            return Vec::new();
        }
        stats.queries += 1;
        // Max-heap on distance keeps the current k best; the root is the
        // worst of the k and is the pruning bound.
        let mut heap: BinaryHeap<Neighbor> = BinaryHeap::with_capacity(k + 1);
        self.knn_recurse(self.root, query, k, &mut heap, stats);
        let mut out = heap.into_sorted_vec();
        out.truncate(k);
        out
    }

    fn knn_recurse(
        &self,
        node_idx: u32,
        query: Vec3,
        k: usize,
        heap: &mut BinaryHeap<Neighbor>,
        stats: &mut SearchStats,
    ) {
        let node = &self.nodes[node_idx as usize];
        let p = self.points[node.point as usize];
        stats.tree_nodes_visited += 1;
        let d2 = query.distance_squared(p);
        let cand = Neighbor::new(node.point as usize, d2);
        if heap.len() < k {
            heap.push(cand);
        } else if let Some(worst) = heap.peek() {
            // Full (distance, index) order so boundary ties break to the
            // lower index — the brute-force (and cross-backend) contract.
            if cand < *worst {
                heap.pop();
                heap.push(cand);
            }
        }

        let axis = node.axis as usize;
        let delta = query.axis(axis) - p.axis(axis);
        let (near, far) =
            if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        if near != NONE {
            self.knn_recurse(near, query, k, heap, stats);
        }
        if far != NONE {
            let bound = if heap.len() < k {
                f64::INFINITY
            } else {
                heap.peek().map_or(f64::INFINITY, |w| w.distance_squared)
            };
            if delta * delta <= bound {
                self.knn_recurse(far, query, k, heap, stats);
            } else {
                stats.subtrees_pruned += 1;
            }
        }
    }

    /// All points within `radius` of `query`, sorted ascending by distance.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius(&self, query: Vec3, radius: f64) -> Vec<Neighbor> {
        let mut stats = SearchStats::new();
        self.radius_with_stats(query, radius, &mut stats)
    }

    /// Radius search with visit accounting.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius_with_stats(
        &self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        stats.queries += 1;
        self.radius_recurse(self.root, query, radius * radius, radius, &mut out, stats);
        out.sort();
        out
    }

    fn radius_recurse(
        &self,
        node_idx: u32,
        query: Vec3,
        r2: f64,
        r: f64,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        let node = &self.nodes[node_idx as usize];
        let p = self.points[node.point as usize];
        stats.tree_nodes_visited += 1;
        let d2 = query.distance_squared(p);
        if d2 <= r2 {
            out.push(Neighbor::new(node.point as usize, d2));
        }

        let axis = node.axis as usize;
        let delta = query.axis(axis) - p.axis(axis);
        let (near, far) =
            if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        if near != NONE {
            self.radius_recurse(near, query, r2, r, out, stats);
        }
        if far != NONE {
            if delta.abs() <= r {
                self.radius_recurse(far, query, r2, r, out, stats);
            } else {
                stats.subtrees_pruned += 1;
            }
        }
    }
}

/// Recursively builds the subtree over `indices`, appending nodes to
/// `nodes` and returning the subtree root index (or `NONE` when empty).
fn build_recursive(
    points: &[Vec3],
    indices: &mut [u32],
    nodes: &mut Vec<Node>,
    _depth: usize,
) -> u32 {
    if indices.is_empty() {
        return NONE;
    }
    // Split on the axis with the largest extent of this subset.
    let mut lo = Vec3::splat(f64::INFINITY);
    let mut hi = Vec3::splat(f64::NEG_INFINITY);
    for &i in indices.iter() {
        lo = lo.min(points[i as usize]);
        hi = hi.max(points[i as usize]);
    }
    let ext = hi - lo;
    let axis = if ext.x >= ext.y && ext.x >= ext.z {
        0
    } else if ext.y >= ext.z {
        1
    } else {
        2
    };

    let mid = indices.len() / 2;
    indices.select_nth_unstable_by(mid, |&a, &b| {
        let va = points[a as usize].axis(axis);
        let vb = points[b as usize].axis(axis);
        va.partial_cmp(&vb).unwrap().then(a.cmp(&b))
    });
    let point = indices[mid];

    let node_idx = nodes.len() as u32;
    nodes.push(Node { point, axis: axis as u8, left: NONE, right: NONE });

    // Split the slice around the median; recursion order fills `nodes`
    // depth-first, which is also the layout the accelerator model assumes.
    let (left_slice, rest) = indices.split_at_mut(mid);
    let right_slice = &mut rest[1..];
    let left = build_recursive(points, left_slice, nodes, _depth + 1);
    let right = build_recursive(points, right_slice, nodes, _depth + 1);
    nodes[node_idx as usize].left = left;
    nodes[node_idx as usize].right = right;
    node_idx
}

fn subtree_height(nodes: &[Node], root: u32) -> usize {
    if root == NONE {
        return 0;
    }
    let n = &nodes[root as usize];
    1 + subtree_height(nodes, n.left).max(subtree_height(nodes, n.right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::{knn_brute_force, nn_brute_force, radius_brute_force};

    /// Deterministic pseudo-random cloud without pulling in `rand` here.
    fn lcg_cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 20.0 - 10.0
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn build_empty_and_singleton() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.nn(Vec3::ZERO).is_none());
        assert!(t.radius(Vec3::ZERO, 1.0).is_empty());
        assert!(t.knn(Vec3::ZERO, 3).is_empty());

        let t = KdTree::build(&[Vec3::X]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.nn(Vec3::ZERO).unwrap().index, 0);
    }

    #[test]
    fn height_is_logarithmic() {
        let pts = lcg_cloud(1024, 7);
        let t = KdTree::build(&pts);
        // A median-split tree over 1024 points has height ≈ 10–11.
        assert!(t.height() >= 10 && t.height() <= 12, "height = {}", t.height());
    }

    #[test]
    fn nn_matches_brute_force() {
        let pts = lcg_cloud(500, 42);
        let tree = KdTree::build(&pts);
        for (qi, q) in lcg_cloud(200, 1).into_iter().enumerate() {
            let a = tree.nn(q).unwrap();
            let b = nn_brute_force(&pts, q).unwrap();
            assert_eq!(a.index, b.index, "query {qi}");
            assert_eq!(a.distance_squared, b.distance_squared);
        }
    }

    #[test]
    fn nn_on_tree_points_is_exact() {
        let pts = lcg_cloud(100, 3);
        let tree = KdTree::build(&pts);
        for (i, &p) in pts.iter().enumerate() {
            let n = tree.nn(p).unwrap();
            assert_eq!(n.distance_squared, 0.0);
            assert_eq!(pts[n.index], pts[i]);
        }
    }

    #[test]
    fn radius_matches_brute_force() {
        let pts = lcg_cloud(400, 9);
        let tree = KdTree::build(&pts);
        for q in lcg_cloud(50, 2) {
            for r in [0.5, 2.0, 6.0] {
                let a = tree.radius(q, r);
                let b = radius_brute_force(&pts, q, r);
                assert_eq!(a.len(), b.len(), "r = {r}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.index, y.index);
                }
            }
        }
    }

    #[test]
    fn knn_matches_brute_force_distances() {
        let pts = lcg_cloud(300, 11);
        let tree = KdTree::build(&pts);
        for q in lcg_cloud(40, 5) {
            for k in [1, 4, 17] {
                let a = tree.knn(q, k);
                let b = knn_brute_force(&pts, q, k);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert!((x.distance_squared - y.distance_squared).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn knn_k_larger_than_tree() {
        let pts = lcg_cloud(5, 1);
        let tree = KdTree::build(&pts);
        assert_eq!(tree.knn(Vec3::ZERO, 50).len(), 5);
        assert!(tree.knn(Vec3::ZERO, 0).is_empty());
    }

    #[test]
    fn pruning_reduces_visits() {
        let pts = lcg_cloud(4096, 13);
        let tree = KdTree::build(&pts);
        let mut stats = SearchStats::new();
        tree.nn_with_stats(Vec3::new(0.1, 0.2, 0.3), &mut stats).unwrap();
        // NN on a balanced 4096-point tree should visit far fewer than all
        // nodes (typically a few dozen), and must prune something.
        assert!(stats.tree_nodes_visited < 1000, "visited {}", stats.tree_nodes_visited);
        assert!(stats.subtrees_pruned > 0);
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let pts = vec![Vec3::X; 17];
        let tree = KdTree::build(&pts);
        let n = tree.nn(Vec3::X).unwrap();
        assert_eq!(n.distance_squared, 0.0);
        assert_eq!(tree.radius(Vec3::X, 0.1).len(), 17);
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Vec3> = (0..64).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let tree = KdTree::build(&pts);
        let n = tree.nn(Vec3::new(31.4, 0.0, 0.0)).unwrap();
        assert_eq!(pts[n.index].x, 31.0);
        assert_eq!(tree.radius(Vec3::new(10.0, 0.0, 0.0), 2.5).len(), 5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn radius_rejects_negative() {
        KdTree::build(&[Vec3::ZERO]).radius(Vec3::ZERO, -0.1);
    }

    #[test]
    fn radius_results_sorted() {
        let pts = lcg_cloud(200, 21);
        let tree = KdTree::build(&pts);
        let res = tree.radius(Vec3::ZERO, 8.0);
        for w in res.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}

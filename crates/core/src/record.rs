//! Query records: a serializable trace of the searches a workload issued.
//!
//! The registration pipeline can log every KD-tree query it makes
//! (`tigris-pipeline`'s `Searcher3::enable_query_logging`), and the
//! accelerator model can *replay* the exact stream
//! (`tigris-accel`'s `AcceleratorSim::replay`) — giving the end-to-end
//! evaluation the accelerator's simulated time for precisely the searches
//! the software actually performed.

use tigris_geom::Vec3;

/// The kind of search a record describes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind {
    /// Nearest-neighbor search.
    Nn,
    /// Radius search with the given radius.
    Radius(f64),
    /// k-nearest-neighbors search.
    Knn(usize),
}

/// One logged query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRecord {
    /// The query point.
    pub point: Vec3,
    /// What was searched for.
    pub kind: QueryKind,
}

impl QueryRecord {
    /// An NN query record.
    pub fn nn(point: Vec3) -> Self {
        QueryRecord { point, kind: QueryKind::Nn }
    }

    /// A radius query record.
    pub fn radius(point: Vec3, radius: f64) -> Self {
        QueryRecord { point, kind: QueryKind::Radius(radius) }
    }

    /// A k-NN query record.
    pub fn knn(point: Vec3, k: usize) -> Self {
        QueryRecord { point, kind: QueryKind::Knn(k) }
    }
}

/// Splits a query log into maximal runs of the same kind, preserving
/// order — the unit the accelerator replays as one batch.
pub fn segment_by_kind(records: &[QueryRecord]) -> Vec<(QueryKind, Vec<Vec3>)> {
    let mut out: Vec<(QueryKind, Vec<Vec3>)> = Vec::new();
    for r in records {
        match out.last_mut() {
            Some((kind, points)) if *kind == r.kind => points.push(r.point),
            _ => out.push((r.kind, vec![r.point])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(QueryRecord::nn(Vec3::X).kind, QueryKind::Nn);
        assert_eq!(QueryRecord::radius(Vec3::X, 2.0).kind, QueryKind::Radius(2.0));
        assert_eq!(QueryRecord::knn(Vec3::X, 5).kind, QueryKind::Knn(5));
    }

    #[test]
    fn segmentation_groups_runs() {
        let log = vec![
            QueryRecord::nn(Vec3::X),
            QueryRecord::nn(Vec3::Y),
            QueryRecord::radius(Vec3::Z, 1.0),
            QueryRecord::radius(Vec3::X, 1.0),
            QueryRecord::radius(Vec3::Y, 2.0), // different radius → new run
            QueryRecord::nn(Vec3::Z),
        ];
        let segs = segment_by_kind(&log);
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0].0, QueryKind::Nn);
        assert_eq!(segs[0].1.len(), 2);
        assert_eq!(segs[1].1.len(), 2);
        assert_eq!(segs[2].0, QueryKind::Radius(2.0));
        assert_eq!(segs[3].1.len(), 1);
    }

    #[test]
    fn empty_log() {
        assert!(segment_by_kind(&[]).is_empty());
    }
}

//! The two-stage KD-tree (paper Sec. 4.1, Fig. 5b) — the
//! acceleration-amenable data structure at the heart of Tigris.
//!
//! The structure splits a canonical KD-tree into a *top-tree* of height
//! `h_top` — identical to the first `h_top` levels of the classic tree —
//! and *leaf sets*: each top-tree leaf organizes all remaining descendants
//! as an unordered set that is searched exhaustively. Exhaustive leaf scans
//! have no intra-query dependencies, exposing node-level parallelism (NLP)
//! to the accelerator's search units, while independent queries expose
//! query-level parallelism (QLP). The price is redundant node visits
//! (paper Fig. 6): a shorter top-tree means larger leaf sets and more
//! brute-force work.
//!
//! With `h_top = 0` the structure degenerates to a single unordered set —
//! pure exhaustive search, the extreme the paper notes.
//!
//! Leaf sets keep their public index form ([`LeafSet::points`], which the
//! accelerator model replays), but the scan hot path works on a private
//! structure-of-arrays arena: every leaf's coordinates are banked
//! contiguously ([`crate::soa::PointSoA`]) in leaf order, and exhaustive
//! scans run through the [`crate::simd`] kernels — the software analogue
//! of the paper's search units streaming a leaf's unordered set through
//! the distance datapath.

use crate::soa::PointSoA;
use crate::{simd, Neighbor, SearchStats};
use tigris_geom::Vec3;

/// Points per [`crate::simd::squared_distances`] block in the k-NN leaf
/// scan (leaf sets can be arbitrarily large, so the scratch buffer is
/// fixed and the scan is chunked).
const KNN_SCAN_BLOCK: usize = 64;

/// The default top-tree height for `n_points`: targets leaf sets of ~128
/// points (the paper's configuration: ~130k points at height 10 ⇒
/// 1024 leaves of ~128), clamped to `[1, 16]`.
///
/// Used wherever a two-stage structure must be built without an explicit
/// height — the backend registry's `"two-stage"`/`"two-stage-approx"`
/// factories and `tigris-accel`'s default accelerator backend.
///
/// ```
/// use tigris_core::twostage::default_top_height;
/// assert_eq!(default_top_height(131_072), 10);
/// assert_eq!(default_top_height(100), 1); // tiny clouds: shallowest split
/// ```
pub fn default_top_height(n_points: usize) -> usize {
    let mut h = 0usize;
    while (n_points >> h) > 128 && h < 16 {
        h += 1;
    }
    h.max(1)
}

/// A child link in the top-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopChild {
    /// An internal top-tree node, by index into [`TwoStageKdTree::top_nodes`].
    Node(u32),
    /// A leaf set, by index into [`TwoStageKdTree::leaves`].
    Leaf(u32),
    /// No child (the subset was empty).
    None,
}

/// An internal node of the top-tree. Identical in role to a canonical
/// KD-tree node: it stores one point and splits its remaining descendants
/// by the hyperplane through that point.
#[derive(Debug, Clone, Copy)]
pub struct TopNode {
    /// Index of this node's point in the tree's point array.
    pub point: u32,
    /// Split axis (0, 1, 2).
    pub axis: u8,
    /// Split coordinate: the node point's coordinate along `axis`.
    pub split: f64,
    /// Child containing points below the split.
    pub left: TopChild,
    /// Child containing points at or above the split.
    pub right: TopChild,
}

/// A top-tree leaf: its children as an unordered set of point indices
/// (paper: "Each leaf node in the top-tree organizes its children as an
/// unordered set rather than a sub-tree to enable exhaustive search").
#[derive(Debug, Clone, Default)]
pub struct LeafSet {
    /// Indices of the points in this leaf's unordered set.
    pub points: Vec<u32>,
}

/// The two-stage KD-tree.
///
/// # Example
///
/// ```
/// use tigris_core::TwoStageKdTree;
/// use tigris_geom::Vec3;
///
/// let pts: Vec<Vec3> = (0..64).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
/// let tree = TwoStageKdTree::build(&pts, 3);
/// assert_eq!(tree.top_height(), 3);
/// let n = tree.nn(Vec3::new(17.2, 0.0, 0.0)).unwrap();
/// assert_eq!(pts[n.index].x, 17.0);
/// ```
#[derive(Debug, Clone)]
pub struct TwoStageKdTree {
    points: Vec<Vec3>,
    top_nodes: Vec<TopNode>,
    leaves: Vec<LeafSet>,
    root: TopChild,
    top_height: usize,
    /// Leaf point coordinates, SoA, concatenated in leaf order.
    arena: PointSoA,
    /// Arena slot → index in `points`; mirrors `leaves[*].points` exactly.
    arena_ids: Vec<u32>,
    /// Per-leaf `(start, len)` ranges into the arena.
    spans: Vec<(u32, u32)>,
}

impl TwoStageKdTree {
    /// Builds a two-stage KD-tree whose top-tree has height `top_height`.
    ///
    /// The top-tree is built with the same median splits as
    /// [`crate::KdTree`]; the first `top_height` levels of both trees hold
    /// the same points. Descendants beyond the top-tree become unordered
    /// leaf sets. A `top_height` of 0 produces a single leaf set holding
    /// every point.
    pub fn build(points: &[Vec3], top_height: usize) -> Self {
        let mut indices: Vec<u32> = (0..points.len() as u32).collect();
        let mut top_nodes = Vec::new();
        let mut leaves = Vec::new();
        let root = build_top(points, &mut indices[..], top_height, &mut top_nodes, &mut leaves);
        // Bank every leaf's coordinates contiguously for the SIMD scans.
        let total: usize = leaves.iter().map(|l| l.points.len()).sum();
        let mut arena = PointSoA::with_capacity(total);
        let mut arena_ids = Vec::with_capacity(total);
        let mut spans = Vec::with_capacity(leaves.len());
        for leaf in &leaves {
            let start = arena_ids.len() as u32;
            for &i in &leaf.points {
                arena.push(points[i as usize]);
                arena_ids.push(i);
            }
            spans.push((start, leaf.points.len() as u32));
        }
        TwoStageKdTree {
            points: points.to_vec(),
            top_nodes,
            leaves,
            root,
            top_height,
            arena,
            arena_ids,
            spans,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The height of the top-tree this structure was built with.
    pub fn top_height(&self) -> usize {
        self.top_height
    }

    /// The indexed points.
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// The internal top-tree nodes (read-only; consumed by the accelerator
    /// model, which replays traversals cycle by cycle).
    pub fn top_nodes(&self) -> &[TopNode] {
        &self.top_nodes
    }

    /// The leaf sets.
    pub fn leaves(&self) -> &[LeafSet] {
        &self.leaves
    }

    /// The root link.
    pub fn root(&self) -> TopChild {
        self.root
    }

    /// Mean number of points per leaf set — the paper's "leaf-set size"
    /// knob (Fig. 6 x-axis). 0 when there are no leaves.
    pub fn mean_leaf_size(&self) -> f64 {
        if self.leaves.is_empty() {
            0.0
        } else {
            let total: usize = self.leaves.iter().map(|l| l.points.len()).sum();
            total as f64 / self.leaves.len() as f64
        }
    }

    /// The leaf set a pure (prune-free) descent from the root delivers
    /// `query` to — the leaf the accelerator's front-end routes the query
    /// to first. `None` when the descent dead-ends in an empty child or the
    /// tree is empty.
    pub fn primary_leaf(&self, query: Vec3) -> Option<usize> {
        let mut cur = self.root;
        loop {
            match cur {
                TopChild::Leaf(l) => return Some(l as usize),
                TopChild::None => return None,
                TopChild::Node(n) => {
                    let node = &self.top_nodes[n as usize];
                    cur = if query.axis(node.axis as usize) < node.split {
                        node.left
                    } else {
                        node.right
                    };
                }
            }
        }
    }

    /// Nearest neighbor of `query`, or `None` for an empty tree.
    ///
    /// Without approximation the result is identical to the canonical
    /// KD-tree's (both are exact searches over the same point set).
    pub fn nn(&self, query: Vec3) -> Option<Neighbor> {
        let mut stats = SearchStats::new();
        self.nn_with_stats(query, &mut stats)
    }

    /// Nearest neighbor with visit accounting.
    pub fn nn_with_stats(&self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        if self.is_empty() {
            return None;
        }
        stats.queries += 1;
        let mut best = Neighbor::new(usize::MAX, f64::INFINITY);
        self.nn_child(self.root, query, &mut best, stats);
        (best.index != usize::MAX).then_some(best)
    }

    fn nn_child(&self, child: TopChild, query: Vec3, best: &mut Neighbor, stats: &mut SearchStats) {
        match child {
            TopChild::None => {}
            TopChild::Leaf(l) => {
                self.scan_leaf_nn(l as usize, query, best, stats);
            }
            TopChild::Node(n) => {
                let node = &self.top_nodes[n as usize];
                let p = self.points[node.point as usize];
                stats.tree_nodes_visited += 1;
                let d2 = query.distance_squared(p);
                if d2 < best.distance_squared
                    || (d2 == best.distance_squared && (node.point as usize) < best.index)
                {
                    *best = Neighbor::new(node.point as usize, d2);
                }
                let delta = query.axis(node.axis as usize) - node.split;
                let (near, far) =
                    if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
                self.nn_child(near, query, best, stats);
                if far != TopChild::None {
                    if delta * delta <= best.distance_squared {
                        self.nn_child(far, query, best, stats);
                    } else {
                        stats.subtrees_pruned += 1;
                    }
                }
            }
        }
    }

    /// Exhaustively scans one leaf set for the NN candidate, the back-end
    /// search-unit operation: one fused distance + horizontal-min kernel
    /// pass over the leaf's SoA slice.
    pub(crate) fn scan_leaf_nn(
        &self,
        leaf: usize,
        query: Vec3,
        best: &mut Neighbor,
        stats: &mut SearchStats,
    ) {
        let (start, len) = self.spans[leaf];
        let (start, len) = (start as usize, len as usize);
        stats.leaves_scanned += 1;
        stats.leaf_points_scanned += len as u64;
        let view = self.arena.range(start, len);
        if let Some((d2, id)) = simd::nn_reduce(query, view, &self.arena_ids[start..start + len]) {
            if d2 < best.distance_squared
                || (d2 == best.distance_squared && (id as usize) < best.index)
            {
                *best = Neighbor::new(id as usize, d2);
            }
        }
    }

    /// The `k` nearest neighbors of `query`, sorted ascending by distance.
    ///
    /// Returns fewer than `k` results when the tree holds fewer points.
    pub fn knn(&self, query: Vec3, k: usize) -> Vec<Neighbor> {
        let mut stats = SearchStats::new();
        self.knn_with_stats(query, k, &mut stats)
    }

    /// k-NN with visit accounting. Traversal prunes against the k-th-best
    /// distance; leaf sets are scanned exhaustively as usual.
    pub fn knn_with_stats(&self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        stats.queries += 1;
        let mut heap: std::collections::BinaryHeap<Neighbor> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        self.knn_child(self.root, query, k, &mut heap, stats);
        let mut out = heap.into_sorted_vec();
        out.truncate(k);
        out
    }

    fn knn_child(
        &self,
        child: TopChild,
        query: Vec3,
        k: usize,
        heap: &mut std::collections::BinaryHeap<Neighbor>,
        stats: &mut SearchStats,
    ) {
        let offer = |i: usize, d2: f64, heap: &mut std::collections::BinaryHeap<Neighbor>| {
            let cand = Neighbor::new(i, d2);
            if heap.len() < k {
                heap.push(cand);
            } else if let Some(worst) = heap.peek() {
                // Full (distance, index) order so boundary ties break to
                // the lower index — the brute-force contract; without it,
                // trees of different heights could return different
                // tie-sets at the k-th boundary.
                if cand < *worst {
                    heap.pop();
                    heap.push(cand);
                }
            }
        };
        match child {
            TopChild::None => {}
            TopChild::Leaf(l) => {
                let (start, len) = self.spans[l as usize];
                let (start, len) = (start as usize, len as usize);
                stats.leaves_scanned += 1;
                stats.leaf_points_scanned += len as u64;
                // Blockwise distance kernel; candidates offered in scan
                // order, so heap evolution matches the scalar loop.
                let mut d2s = [0.0_f64; KNN_SCAN_BLOCK];
                let mut off = 0;
                while off < len {
                    let n = (len - off).min(KNN_SCAN_BLOCK);
                    simd::squared_distances(query, self.arena.range(start + off, n), &mut d2s[..n]);
                    for (j, &d2) in d2s[..n].iter().enumerate() {
                        offer(self.arena_ids[start + off + j] as usize, d2, heap);
                    }
                    off += n;
                }
            }
            TopChild::Node(n) => {
                let node = &self.top_nodes[n as usize];
                let p = self.points[node.point as usize];
                stats.tree_nodes_visited += 1;
                offer(node.point as usize, query.distance_squared(p), heap);
                let delta = query.axis(node.axis as usize) - node.split;
                let (near, far) =
                    if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
                self.knn_child(near, query, k, heap, stats);
                if far != TopChild::None {
                    let bound = if heap.len() < k {
                        f64::INFINITY
                    } else {
                        heap.peek().map_or(f64::INFINITY, |w| w.distance_squared)
                    };
                    if delta * delta <= bound {
                        self.knn_child(far, query, k, heap, stats);
                    } else {
                        stats.subtrees_pruned += 1;
                    }
                }
            }
        }
    }

    /// Nearest-neighbor search in the *decoupled* (parallelism-exposing)
    /// execution model: the top-tree traversal prunes only with distances
    /// to top-tree splitter points, and every surviving leaf is scanned
    /// exhaustively afterwards.
    ///
    /// This is how the two-stage structure is actually exploited for
    /// query-level parallelism — leaf scans are batched and their results
    /// cannot tighten the traversal bound — and is the execution the
    /// paper's redundancy analysis (Fig. 6) quantifies. Results are still
    /// exact; only the amount of work differs from [`Self::nn`].
    pub fn nn_decoupled_with_stats(
        &self,
        query: Vec3,
        stats: &mut SearchStats,
    ) -> Option<Neighbor> {
        if self.is_empty() {
            return None;
        }
        stats.queries += 1;
        let mut best = Neighbor::new(usize::MAX, f64::INFINITY);
        let mut leaves = Vec::new();
        self.collect_leaves_nn(self.root, query, &mut best, &mut leaves, stats);
        for leaf in leaves {
            self.scan_leaf_nn(leaf, query, &mut best, stats);
        }
        (best.index != usize::MAX).then_some(best)
    }

    /// Top-tree phase of the decoupled NN search: prunes with the bound
    /// from splitter points only and records surviving leaves.
    fn collect_leaves_nn(
        &self,
        child: TopChild,
        query: Vec3,
        best: &mut Neighbor,
        leaves: &mut Vec<usize>,
        stats: &mut SearchStats,
    ) {
        match child {
            TopChild::None => {}
            TopChild::Leaf(l) => leaves.push(l as usize),
            TopChild::Node(n) => {
                let node = &self.top_nodes[n as usize];
                let p = self.points[node.point as usize];
                stats.tree_nodes_visited += 1;
                let d2 = query.distance_squared(p);
                if d2 < best.distance_squared
                    || (d2 == best.distance_squared && (node.point as usize) < best.index)
                {
                    *best = Neighbor::new(node.point as usize, d2);
                }
                let delta = query.axis(node.axis as usize) - node.split;
                let (near, far) =
                    if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
                self.collect_leaves_nn(near, query, best, leaves, stats);
                if far != TopChild::None {
                    if delta * delta <= best.distance_squared {
                        self.collect_leaves_nn(far, query, best, leaves, stats);
                    } else {
                        stats.subtrees_pruned += 1;
                    }
                }
            }
        }
    }

    /// All points within `radius` of `query`, sorted ascending by distance.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius(&self, query: Vec3, radius: f64) -> Vec<Neighbor> {
        let mut stats = SearchStats::new();
        self.radius_with_stats(query, radius, &mut stats)
    }

    /// Radius search with visit accounting.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius_with_stats(
        &self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        stats.queries += 1;
        self.radius_child(self.root, query, radius, radius * radius, &mut out, stats);
        out.sort();
        out
    }

    fn radius_child(
        &self,
        child: TopChild,
        query: Vec3,
        r: f64,
        r2: f64,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        match child {
            TopChild::None => {}
            TopChild::Leaf(l) => {
                self.scan_leaf_radius(l as usize, query, r2, out, stats);
            }
            TopChild::Node(n) => {
                let node = &self.top_nodes[n as usize];
                let p = self.points[node.point as usize];
                stats.tree_nodes_visited += 1;
                let d2 = query.distance_squared(p);
                if d2 <= r2 {
                    out.push(Neighbor::new(node.point as usize, d2));
                }
                let delta = query.axis(node.axis as usize) - node.split;
                let (near, far) =
                    if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
                self.radius_child(near, query, r, r2, out, stats);
                if far != TopChild::None {
                    if delta.abs() <= r {
                        self.radius_child(far, query, r, r2, out, stats);
                    } else {
                        stats.subtrees_pruned += 1;
                    }
                }
            }
        }
    }

    /// Exhaustively scans one leaf set for radius results: one masked
    /// radius-compare kernel pass over the leaf's SoA slice, appending
    /// hits in scan order.
    pub(crate) fn scan_leaf_radius(
        &self,
        leaf: usize,
        query: Vec3,
        r2: f64,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        let (start, len) = self.spans[leaf];
        let (start, len) = (start as usize, len as usize);
        stats.leaves_scanned += 1;
        stats.leaf_points_scanned += len as u64;
        simd::radius_collect(
            query,
            self.arena.range(start, len),
            &self.arena_ids[start..start + len],
            r2,
            out,
        );
    }
}

/// Builds the top-tree recursively; subsets reaching `remaining_height == 0`
/// become unordered leaf sets.
fn build_top(
    points: &[Vec3],
    indices: &mut [u32],
    remaining_height: usize,
    top_nodes: &mut Vec<TopNode>,
    leaves: &mut Vec<LeafSet>,
) -> TopChild {
    if indices.is_empty() {
        return TopChild::None;
    }
    if remaining_height == 0 {
        let leaf_idx = leaves.len() as u32;
        leaves.push(LeafSet { points: indices.to_vec() });
        return TopChild::Leaf(leaf_idx);
    }

    // Same split policy as the canonical tree (KdTree::build): the axis of
    // largest extent, median point as the splitter.
    let mut lo = Vec3::splat(f64::INFINITY);
    let mut hi = Vec3::splat(f64::NEG_INFINITY);
    for &i in indices.iter() {
        lo = lo.min(points[i as usize]);
        hi = hi.max(points[i as usize]);
    }
    let ext = hi - lo;
    let axis = if ext.x >= ext.y && ext.x >= ext.z {
        0
    } else if ext.y >= ext.z {
        1
    } else {
        2
    };

    let mid = indices.len() / 2;
    indices.select_nth_unstable_by(mid, |&a, &b| {
        let va = points[a as usize].axis(axis);
        let vb = points[b as usize].axis(axis);
        va.partial_cmp(&vb).unwrap().then(a.cmp(&b))
    });
    let point = indices[mid];
    let split = points[point as usize].axis(axis);

    let node_idx = top_nodes.len();
    top_nodes.push(TopNode {
        point,
        axis: axis as u8,
        split,
        left: TopChild::None,
        right: TopChild::None,
    });

    let (left_slice, rest) = indices.split_at_mut(mid);
    let right_slice = &mut rest[1..];
    let left = build_top(points, left_slice, remaining_height - 1, top_nodes, leaves);
    let right = build_top(points, right_slice, remaining_height - 1, top_nodes, leaves);
    top_nodes[node_idx].left = left;
    top_nodes[node_idx].right = right;
    TopChild::Node(node_idx as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::{nn_brute_force, radius_brute_force};
    use crate::KdTree;

    fn lcg_cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 20.0 - 10.0
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn zero_height_is_single_leaf() {
        let pts = lcg_cloud(50, 1);
        let tree = TwoStageKdTree::build(&pts, 0);
        assert_eq!(tree.leaves().len(), 1);
        assert_eq!(tree.leaves()[0].points.len(), 50);
        assert!(tree.top_nodes().is_empty());
        // Exhaustive search still exact.
        let q = Vec3::new(0.3, -0.2, 0.7);
        assert_eq!(tree.nn(q).unwrap().index, nn_brute_force(&pts, q).unwrap().index);
    }

    #[test]
    fn leaf_count_and_size_scale_with_height() {
        let pts = lcg_cloud(1024, 3);
        let t3 = TwoStageKdTree::build(&pts, 3);
        let t5 = TwoStageKdTree::build(&pts, 5);
        assert_eq!(t3.leaves().len(), 8);
        assert_eq!(t5.leaves().len(), 32);
        assert!(t3.mean_leaf_size() > t5.mean_leaf_size());
        // All points accounted for: top nodes + leaf points == total.
        let total3 =
            t3.top_nodes().len() + t3.leaves().iter().map(|l| l.points.len()).sum::<usize>();
        assert_eq!(total3, 1024);
    }

    #[test]
    fn top_tree_matches_classic_prefix() {
        // The top-tree must store the same splitter points as the first
        // h_top levels of the canonical tree (paper: "The top-tree is
        // exactly the same as the first h_top levels of the classic
        // KD-tree"). We verify via the root splitter.
        let pts = lcg_cloud(256, 9);
        let classic = KdTree::build(&pts);
        let two = TwoStageKdTree::build(&pts, 4);
        // Root point of both trees is the global median on the widest axis;
        // the classic tree stores the same point at its root.
        let TopChild::Node(root) = two.root() else { panic!("expected node root") };
        let two_root_point = two.top_nodes()[root as usize].point;
        // KdTree nodes are laid out root-first.
        let classic_nn = classic.nn(pts[two_root_point as usize]).unwrap();
        assert_eq!(classic_nn.distance_squared, 0.0);
    }

    #[test]
    fn nn_matches_brute_force_at_all_heights() {
        let pts = lcg_cloud(500, 42);
        for h in [0, 1, 2, 4, 6, 9] {
            let tree = TwoStageKdTree::build(&pts, h);
            for q in lcg_cloud(60, 7) {
                let a = tree.nn(q).unwrap();
                let b = nn_brute_force(&pts, q).unwrap();
                assert_eq!(a.index, b.index, "h = {h}");
            }
        }
    }

    #[test]
    fn radius_matches_brute_force_at_all_heights() {
        let pts = lcg_cloud(300, 5);
        for h in [0, 2, 5, 8] {
            let tree = TwoStageKdTree::build(&pts, h);
            for q in lcg_cloud(20, 13) {
                let a = tree.radius(q, 3.0);
                let b = radius_brute_force(&pts, q, 3.0);
                assert_eq!(a.len(), b.len(), "h = {h}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.index, y.index);
                }
            }
        }
    }

    #[test]
    fn redundancy_grows_as_top_tree_shrinks() {
        // Paper Fig. 6a: a shorter top-tree (larger leaf sets) visits more
        // nodes for the same queries.
        let pts = lcg_cloud(4096, 17);
        let queries = lcg_cloud(100, 23);
        let classic = KdTree::build(&pts);

        let mut base = SearchStats::new();
        for &q in &queries {
            classic.nn_with_stats(q, &mut base);
        }

        let mut prev_redundancy = 0.0;
        for h in [10, 7, 4, 1] {
            let tree = TwoStageKdTree::build(&pts, h);
            let mut s = SearchStats::new();
            for &q in &queries {
                tree.nn_with_stats(q, &mut s);
            }
            let red = s.redundancy_vs(&base);
            assert!(
                red >= prev_redundancy * 0.9,
                "redundancy should grow as h shrinks: h={h} red={red} prev={prev_redundancy}"
            );
            prev_redundancy = red;
        }
        // At h=1 nearly everything is exhaustive: redundancy must be large.
        assert!(prev_redundancy > 5.0, "prev = {prev_redundancy}");
    }

    #[test]
    fn primary_leaf_contains_region_of_query() {
        let pts = lcg_cloud(512, 31);
        let tree = TwoStageKdTree::build(&pts, 4);
        for q in lcg_cloud(50, 3) {
            let leaf = tree.primary_leaf(q);
            // Descent must terminate at a leaf for a non-degenerate tree.
            assert!(leaf.is_some());
            assert!(leaf.unwrap() < tree.leaves().len());
        }
    }

    #[test]
    fn primary_leaf_empty_tree() {
        let tree = TwoStageKdTree::build(&[], 3);
        assert!(tree.primary_leaf(Vec3::ZERO).is_none());
        assert!(tree.nn(Vec3::ZERO).is_none());
        assert!(tree.radius(Vec3::ZERO, 1.0).is_empty());
    }

    #[test]
    fn height_deeper_than_points_degenerates_gracefully() {
        let pts = lcg_cloud(7, 2);
        let tree = TwoStageKdTree::build(&pts, 10);
        // Every point becomes a top node or a tiny/empty leaf; searches stay exact.
        let q = Vec3::new(1.0, 1.0, 1.0);
        assert_eq!(tree.nn(q).unwrap().index, nn_brute_force(&pts, q).unwrap().index);
    }

    #[test]
    fn arena_mirrors_leaf_sets_exactly() {
        // The public LeafSet index lists and the private SoA arena must
        // stay two views of the same layout: same ids, same order, same
        // coordinates.
        for h in [0usize, 2, 4, 7] {
            let pts = lcg_cloud(700, 61);
            let tree = TwoStageKdTree::build(&pts, h);
            assert_eq!(tree.spans.len(), tree.leaves().len());
            let mut cursor = 0u32;
            for (leaf, &(start, len)) in tree.leaves().iter().zip(&tree.spans) {
                assert_eq!(start, cursor, "h = {h}");
                assert_eq!(len as usize, leaf.points.len());
                for (slot, &i) in leaf.points.iter().enumerate() {
                    assert_eq!(tree.arena_ids[start as usize + slot], i);
                    assert_eq!(tree.arena.get(start as usize + slot), pts[i as usize]);
                }
                cursor += len;
            }
            assert_eq!(cursor as usize, tree.arena.len());
        }
    }

    #[test]
    fn stats_accounting_separates_tree_and_leaf_work() {
        let pts = lcg_cloud(1000, 8);
        let tree = TwoStageKdTree::build(&pts, 3);
        let mut s = SearchStats::new();
        tree.nn_with_stats(Vec3::ZERO, &mut s);
        assert!(s.tree_nodes_visited <= 7, "top-tree of height 3 has ≤ 7 nodes");
        assert!(s.leaf_points_scanned > 0);
        assert!(s.leaves_scanned >= 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn radius_rejects_negative() {
        TwoStageKdTree::build(&[Vec3::ZERO], 1).radius(Vec3::ZERO, -1.0);
    }

    #[test]
    fn knn_matches_brute_force_at_all_heights() {
        let pts = lcg_cloud(400, 51);
        for h in [0usize, 2, 5, 9] {
            let tree = TwoStageKdTree::build(&pts, h);
            for q in lcg_cloud(20, 53) {
                for k in [1usize, 5, 13] {
                    let got = tree.knn(q, k);
                    let expected = crate::bruteforce::knn_brute_force(&pts, q, k);
                    assert_eq!(got.len(), expected.len(), "h={h} k={k}");
                    for (a, b) in got.iter().zip(&expected) {
                        assert!((a.distance_squared - b.distance_squared).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn knn_edge_cases() {
        let pts = lcg_cloud(5, 55);
        let tree = TwoStageKdTree::build(&pts, 2);
        assert!(tree.knn(Vec3::ZERO, 0).is_empty());
        assert_eq!(tree.knn(Vec3::ZERO, 100).len(), 5);
        assert!(TwoStageKdTree::build(&[], 2).knn(Vec3::ZERO, 3).is_empty());
    }

    #[test]
    fn decoupled_nn_is_exact_but_works_harder() {
        let pts = lcg_cloud(3000, 41);
        let tree = TwoStageKdTree::build(&pts, 5);
        let mut coupled = SearchStats::new();
        let mut decoupled = SearchStats::new();
        for q in lcg_cloud(100, 43) {
            let a = tree.nn_with_stats(q, &mut coupled).unwrap();
            let b = tree.nn_decoupled_with_stats(q, &mut decoupled).unwrap();
            // Same (exact) answer…
            assert_eq!(a.index, b.index);
        }
        // …but the decoupled model cannot prune with leaf results, so it
        // visits at least as many nodes (usually many more).
        assert!(
            decoupled.total_nodes_visited() >= coupled.total_nodes_visited(),
            "decoupled {} < coupled {}",
            decoupled.total_nodes_visited(),
            coupled.total_nodes_visited()
        );
    }
}

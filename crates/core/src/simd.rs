//! Explicit distance + reduction kernels over [`SoaView`] lanes — the
//! software stand-in for the accelerator's distance datapath.
//!
//! Three kernels cover every exhaustive scan in the crate:
//!
//! * [`squared_distances`] — one squared distance per candidate, written
//!   to an output slice (the "distance array" stage of the paper's
//!   pipeline).
//! * [`nn_reduce`] — squared distances fused with a horizontal
//!   `(distance, id)` min reduction: the 1-NN kernel.
//! * [`radius_collect`] — squared distances fused with a masked
//!   `d² ≤ r²` compare that appends hits in scan order: the radius-search
//!   kernel.
//!
//! Six more kernels cover the registration *front end* (normal
//! estimation and SPFH/FPFH descriptor histograms), which gathers each
//! point's neighborhood into scratch lanes and reduces over it:
//!
//! * [`lane_sums`] — per-lane coordinate sums (the centroid numerators of
//!   a plane fit), each lane a single left-to-right chain.
//! * [`cov_upper`] — the six unique entries of a neighborhood covariance
//!   `Σ (p−c)(p−c)ᵀ`, products evaluated blockwise, each entry's sum a
//!   single left-to-right chain.
//! * [`distances`] — Euclidean (non-squared) distances, the pair-distance
//!   stage of SPFH; `sqrt` is correctly rounded, so the blocked variant
//!   stays exact.
//! * [`axpy`] — `acc[i] += w·v[i]` across a descriptor row, the FPFH
//!   weighted-neighbor accumulate (each element an independent chain).
//! * [`bin11`] — the 11-bucket clamp-scale-truncate histogram binning of
//!   SPFH features, elementwise.
//! * [`pair_features_batch`] — the full Darboux-frame evaluation
//!   (distance, canonical source/target ordering, frame axes, the three
//!   angle dot products) for a block of point pairs, with degenerate
//!   lanes reported through flag bytes instead of early returns; only
//!   the final `atan2` stays scalar per lane (libm, no vector
//!   counterpart with identical rounding).
//!
//! Two implementations exist side by side and are **always both
//! compiled**:
//!
//! * [`scalar`] — the one-point-per-iteration reference, written to be
//!   obviously correct.
//! * [`wide`] — cache-blocked lane kernels: candidates are processed in
//!   8-wide then 4-wide `f64` blocks (`[f64; 8]` / `[f64; 4]` — the
//!   portable-SIMD shape LLVM turns into AVX/NEON vector code), with a
//!   scalar remainder loop for the final `n mod 4` lanes.
//!
//! The crate-level re-exports select the implementation at build time:
//! [`wide`] by default, [`scalar`] when the `scalar-kernels` cargo
//! feature is enabled (for targets where auto-vectorization misbehaves or
//! when bisecting a numeric regression). The two are **bit-identical**,
//! not merely close: every lane evaluates
//! `(dx·dx + dy·dy) + dz·dz` in exactly
//! [`Vec3::distance_squared`](tigris_geom::Vec3::distance_squared)'s
//! association, Rust never contracts to FMA, and the `(d², id)`
//! lexicographic min is associative and commutative (ids are unique), so
//! blocked reduction order cannot change the winner.
//! `core/tests/kernel_equivalence.rs` enforces this differentially on
//! adversarial inputs.

use crate::soa::SoaView;
use crate::Neighbor;

/// Widest block the [`wide`] kernels process per step (points per
/// iteration). KD-tree leaves are sized in multiples of this.
pub const LANES: usize = 8;

/// Half-width block used to drain most of an `n mod 8` remainder before
/// falling back to the scalar tail.
pub const LANES_HALF: usize = 4;

#[cfg(not(feature = "scalar-kernels"))]
pub use wide::{
    axpy, bin11, cov_upper, distances, lane_sums, nn_reduce, pair_features_batch, radius_collect,
    squared_distances,
};

#[cfg(feature = "scalar-kernels")]
pub use scalar::{
    axpy, bin11, cov_upper, distances, lane_sums, nn_reduce, pair_features_batch, radius_collect,
    squared_distances,
};

/// [`pair_features_batch`] flag: the lane passed the `dist < 1e-9`
/// coincident-points guard; lanes without it carry no usable feature.
pub const PAIR_DIST_OK: u8 = 1;
/// [`pair_features_batch`] flag: the Darboux frame is well-defined (the
/// `v` axis normalization did not reject the lane).
pub const PAIR_FRAME_OK: u8 = 2;
/// [`pair_features_batch`] flag: the two canonical-ordering magnitudes
/// tied exactly (`a == b`), so a symmetric consumer must evaluate the
/// reverse direction separately.
pub const PAIR_TIE: u8 = 4;

/// `true` when the build-time selected kernels are the blocked [`wide`]
/// ones (i.e. the `scalar-kernels` fallback feature is off).
pub const fn wide_kernels_selected() -> bool {
    !cfg!(feature = "scalar-kernels")
}

#[inline(always)]
fn lex_min(d2: f64, id: u32, best_d2: &mut f64, best_id: &mut u32) {
    if d2 < *best_d2 || (d2 == *best_d2 && id < *best_id) {
        *best_d2 = d2;
        *best_id = id;
    }
}

/// One-point-per-iteration reference kernels.
///
/// These define the semantics the [`wide`] kernels must reproduce bit for
/// bit. They are also the build-time fallback behind the `scalar-kernels`
/// feature.
pub mod scalar {
    // Every kernel walks several parallel slices (coordinate lanes, ids,
    // output) in lockstep; a shared index is the clearest form.
    #![allow(clippy::needless_range_loop)]

    use super::*;

    /// Writes `‖query − pts[i]‖²` to `out[i]` for every candidate.
    ///
    /// # Panics
    ///
    /// Panics unless `out`, the coordinate lanes of `pts`, all have the
    /// same length.
    pub fn squared_distances(query: tigris_geom::Vec3, pts: SoaView<'_>, out: &mut [f64]) {
        let n = pts.len();
        assert_eq!(out.len(), n, "one output slot per candidate point");
        for i in 0..n {
            let dx = query.x - pts.xs[i];
            let dy = query.y - pts.ys[i];
            let dz = query.z - pts.zs[i];
            out[i] = (dx * dx + dy * dy) + dz * dz;
        }
    }

    /// Returns the `(d², id)` lexicographic minimum over all candidates
    /// (nearest neighbor, ties broken to the smaller id), or `None` for an
    /// empty view.
    ///
    /// # Panics
    ///
    /// Panics unless `ids.len() == pts.len()`.
    pub fn nn_reduce(
        query: tigris_geom::Vec3,
        pts: SoaView<'_>,
        ids: &[u32],
    ) -> Option<(f64, u32)> {
        let n = pts.len();
        assert_eq!(ids.len(), n, "one id per candidate point");
        if n == 0 {
            return None;
        }
        let mut best_d2 = f64::INFINITY;
        let mut best_id = u32::MAX;
        for i in 0..n {
            let dx = query.x - pts.xs[i];
            let dy = query.y - pts.ys[i];
            let dz = query.z - pts.zs[i];
            let d2 = (dx * dx + dy * dy) + dz * dz;
            lex_min(d2, ids[i], &mut best_d2, &mut best_id);
        }
        Some((best_d2, best_id))
    }

    /// Appends a [`Neighbor`] for every candidate with `d² ≤ r²`, in scan
    /// order.
    ///
    /// # Panics
    ///
    /// Panics unless `ids.len() == pts.len()`.
    pub fn radius_collect(
        query: tigris_geom::Vec3,
        pts: SoaView<'_>,
        ids: &[u32],
        r2: f64,
        out: &mut Vec<Neighbor>,
    ) {
        let n = pts.len();
        assert_eq!(ids.len(), n, "one id per candidate point");
        for i in 0..n {
            let dx = query.x - pts.xs[i];
            let dy = query.y - pts.ys[i];
            let dz = query.z - pts.zs[i];
            let d2 = (dx * dx + dy * dy) + dz * dz;
            if d2 <= r2 {
                out.push(Neighbor::new(ids[i] as usize, d2));
            }
        }
    }

    /// Per-lane coordinate sums `[Σx, Σy, Σz]`, each lane one
    /// left-to-right chain — the centroid numerators of a plane fit,
    /// summed exactly as the scalar `centroid += p` loop it replaces.
    pub fn lane_sums(pts: SoaView<'_>) -> [f64; 3] {
        let (mut sx, mut sy, mut sz) = (0.0_f64, 0.0_f64, 0.0_f64);
        for i in 0..pts.len() {
            sx += pts.xs[i];
            sy += pts.ys[i];
            sz += pts.zs[i];
        }
        [sx, sy, sz]
    }

    /// The six unique entries `[xx, xy, xz, yy, yz, zz]` of the
    /// neighborhood covariance `Σ (p − c)(p − c)ᵀ`, each entry one
    /// left-to-right chain of `d_r · d_c` products in scan order — the
    /// association of the entrywise `cov = cov + outer(d, d)` loop it
    /// replaces (the mirrored lower-triangle entries are bit-equal
    /// because IEEE multiplication commutes).
    pub fn cov_upper(pts: SoaView<'_>, centroid: [f64; 3]) -> [f64; 6] {
        let [cx, cy, cz] = centroid;
        let mut acc = [0.0_f64; 6];
        for i in 0..pts.len() {
            let dx = pts.xs[i] - cx;
            let dy = pts.ys[i] - cy;
            let dz = pts.zs[i] - cz;
            acc[0] += dx * dx;
            acc[1] += dx * dy;
            acc[2] += dx * dz;
            acc[3] += dy * dy;
            acc[4] += dy * dz;
            acc[5] += dz * dz;
        }
        acc
    }

    /// Writes `‖query − pts[i]‖` (the non-squared distance) to `out[i]`
    /// for every candidate — the pair-distance stage of SPFH/FPFH.
    ///
    /// # Panics
    ///
    /// Panics unless `out` and the coordinate lanes of `pts` have the
    /// same length.
    pub fn distances(query: tigris_geom::Vec3, pts: SoaView<'_>, out: &mut [f64]) {
        let n = pts.len();
        assert_eq!(out.len(), n, "one output slot per candidate point");
        for i in 0..n {
            let dx = query.x - pts.xs[i];
            let dy = query.y - pts.ys[i];
            let dz = query.z - pts.zs[i];
            out[i] = ((dx * dx + dy * dy) + dz * dz).sqrt();
        }
    }

    /// `acc[i] += w · v[i]` across a descriptor row — the FPFH
    /// weighted-neighbor accumulate. Each element is an independent
    /// chain, so blocking cannot reassociate anything.
    ///
    /// # Panics
    ///
    /// Panics unless `acc.len() == v.len()`.
    pub fn axpy(acc: &mut [f64], w: f64, v: &[f64]) {
        let n = acc.len();
        assert_eq!(v.len(), n, "accumulator and row must have the same length");
        for i in 0..n {
            acc[i] += w * v[i];
        }
    }

    /// The SPFH 11-bucket binning `min(⌊clamp((v−lo)/(hi−lo), 0, 1)·11⌋,
    /// 10)`, elementwise into `out`.
    ///
    /// # Panics
    ///
    /// Panics unless `out.len() == values.len()`.
    pub fn bin11(values: &[f64], lo: f64, hi: f64, out: &mut [u32]) {
        let n = values.len();
        assert_eq!(out.len(), n, "one output bin per value");
        for i in 0..n {
            let t = ((values[i] - lo) / (hi - lo)).clamp(0.0, 1.0);
            out[i] = ((t * 11.0) as u32).min(10);
        }
    }

    /// Canonically-ordered Darboux pair features (Rusu et al., Eq. 1–3)
    /// for a batch of SPFH source/target pairs: lane `i` relates source
    /// point/normal `(ps[i], ns[i])` to target `(pt[i], nt[i])` and
    /// yields the three angles `(alpha[i], phi[i], theta[i])` plus a
    /// [`PAIR_DIST_OK`]`/`[`PAIR_FRAME_OK`]`/`[`PAIR_TIE`] flag byte.
    /// Guards are reported, not branched on: every lane's outputs are
    /// written unconditionally and are garbage unless both `_OK` flags
    /// are set.
    ///
    /// # Panics
    ///
    /// Panics unless all input and output slices share one length.
    #[allow(clippy::too_many_arguments)]
    pub fn pair_features_batch(
        ps: &[tigris_geom::Vec3],
        ns: &[tigris_geom::Vec3],
        pt: &[tigris_geom::Vec3],
        nt: &[tigris_geom::Vec3],
        alpha: &mut [f64],
        phi: &mut [f64],
        theta: &mut [f64],
        flags: &mut [u8],
    ) {
        let n = ps.len();
        assert!(
            [ns.len(), pt.len(), nt.len(), alpha.len(), phi.len(), theta.len(), flags.len()]
                .iter()
                .all(|&l| l == n),
            "one lane per pair across all slices"
        );
        for i in 0..n {
            let d = pt[i] - ps[i];
            let dist = d.norm();
            let du = d / dist;
            let a = ns[i].dot(du).abs();
            let b = nt[i].dot(-du).abs();
            // The canonical source/target ordering of `pair_features`:
            // the side whose normal leans into the connecting line
            // becomes the frame origin.
            let swap = a >= b;
            let (u, n2, dd) = if swap { (ns[i], nt[i], du) } else { (nt[i], ns[i], -du) };
            let v = dd.cross(u);
            let vn = v.norm();
            let nv = v / vn;
            let w = u.cross(nv);
            alpha[i] = nv.dot(n2);
            phi[i] = u.dot(dd);
            theta[i] = w.dot(n2).atan2(u.dot(n2));
            // `if x < eps` (not `x >= eps`) so NaN distances keep the
            // frozen scalar path's "valid" classification bit-for-bit.
            let dist_ok = if dist < 1e-9 { 0 } else { PAIR_DIST_OK };
            let frame_ok = if vn < 1e-12 { 0 } else { PAIR_FRAME_OK };
            let tie = if a == b { PAIR_TIE } else { 0 };
            flags[i] = dist_ok | frame_ok | tie;
        }
    }
}

/// Cache-blocked lane kernels: 8-wide blocks, a 4-wide half block, then a
/// scalar tail.
///
/// Each block loads `N` candidates per coordinate lane into a fixed
/// `[f64; N]` register block and evaluates all lanes with straight-line
/// arithmetic — the shape LLVM auto-vectorizes into packed `f64`
/// instructions on every SIMD target without `unsafe` or intrinsics.
pub mod wide {
    // The scalar remainder tails walk the same parallel slices as
    // `scalar`; see the note there.
    #![allow(clippy::needless_range_loop)]

    use super::*;

    /// Computes one block of `N` squared distances starting at `base`.
    #[inline(always)]
    fn d2_block<const N: usize>(
        qx: f64,
        qy: f64,
        qz: f64,
        pts: SoaView<'_>,
        base: usize,
    ) -> [f64; N] {
        let xs = &pts.xs[base..base + N];
        let ys = &pts.ys[base..base + N];
        let zs = &pts.zs[base..base + N];
        let mut d2 = [0.0_f64; N];
        for l in 0..N {
            let dx = qx - xs[l];
            let dy = qy - ys[l];
            let dz = qz - zs[l];
            d2[l] = (dx * dx + dy * dy) + dz * dz;
        }
        d2
    }

    /// Writes `‖query − pts[i]‖²` to `out[i]` for every candidate.
    ///
    /// # Panics
    ///
    /// Panics unless `out`, the coordinate lanes of `pts`, all have the
    /// same length.
    pub fn squared_distances(query: tigris_geom::Vec3, pts: SoaView<'_>, out: &mut [f64]) {
        let n = pts.len();
        assert_eq!(out.len(), n, "one output slot per candidate point");
        let (qx, qy, qz) = (query.x, query.y, query.z);
        let mut base = 0;
        while base + LANES <= n {
            let d2 = d2_block::<LANES>(qx, qy, qz, pts, base);
            out[base..base + LANES].copy_from_slice(&d2);
            base += LANES;
        }
        if base + LANES_HALF <= n {
            let d2 = d2_block::<LANES_HALF>(qx, qy, qz, pts, base);
            out[base..base + LANES_HALF].copy_from_slice(&d2);
            base += LANES_HALF;
        }
        for i in base..n {
            let dx = qx - pts.xs[i];
            let dy = qy - pts.ys[i];
            let dz = qz - pts.zs[i];
            out[i] = (dx * dx + dy * dy) + dz * dz;
        }
    }

    /// Folds one `N`-lane block into the per-lane running minima
    /// (lanes `0..N` of the accumulators).
    #[inline(always)]
    fn fold_block<const N: usize>(
        d2: &[f64; N],
        ids: &[u32],
        best_d2: &mut [f64; LANES],
        best_id: &mut [u32; LANES],
    ) {
        for l in 0..N {
            if d2[l] < best_d2[l] || (d2[l] == best_d2[l] && ids[l] < best_id[l]) {
                best_d2[l] = d2[l];
                best_id[l] = ids[l];
            }
        }
    }

    /// Returns the `(d², id)` lexicographic minimum over all candidates
    /// (nearest neighbor, ties broken to the smaller id), or `None` for an
    /// empty view.
    ///
    /// Per-lane running minima are folded by a final horizontal reduction;
    /// because lexicographic min over unique ids is associative and
    /// commutative, the result is identical to [`scalar::nn_reduce`]'s
    /// left-to-right fold.
    ///
    /// # Panics
    ///
    /// Panics unless `ids.len() == pts.len()`.
    pub fn nn_reduce(
        query: tigris_geom::Vec3,
        pts: SoaView<'_>,
        ids: &[u32],
    ) -> Option<(f64, u32)> {
        let n = pts.len();
        assert_eq!(ids.len(), n, "one id per candidate point");
        if n == 0 {
            return None;
        }
        let (qx, qy, qz) = (query.x, query.y, query.z);
        let mut lane_d2 = [f64::INFINITY; LANES];
        let mut lane_id = [u32::MAX; LANES];
        let mut base = 0;
        while base + LANES <= n {
            let d2 = d2_block::<LANES>(qx, qy, qz, pts, base);
            fold_block::<LANES>(&d2, &ids[base..base + LANES], &mut lane_d2, &mut lane_id);
            base += LANES;
        }
        if base + LANES_HALF <= n {
            let d2 = d2_block::<LANES_HALF>(qx, qy, qz, pts, base);
            fold_block::<LANES_HALF>(
                &d2,
                &ids[base..base + LANES_HALF],
                &mut lane_d2,
                &mut lane_id,
            );
            base += LANES_HALF;
        }
        // Horizontal reduction of the lane minima, then the scalar tail.
        let mut best_d2 = f64::INFINITY;
        let mut best_id = u32::MAX;
        for l in 0..LANES {
            lex_min(lane_d2[l], lane_id[l], &mut best_d2, &mut best_id);
        }
        for i in base..n {
            let dx = qx - pts.xs[i];
            let dy = qy - pts.ys[i];
            let dz = qz - pts.zs[i];
            let d2 = (dx * dx + dy * dy) + dz * dz;
            lex_min(d2, ids[i], &mut best_d2, &mut best_id);
        }
        Some((best_d2, best_id))
    }

    /// Appends a [`Neighbor`] for every candidate with `d² ≤ r²`, in scan
    /// order.
    ///
    /// Distances are evaluated blockwise; the masked compare then emits
    /// hits lane by lane, preserving the scalar kernel's output order
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics unless `ids.len() == pts.len()`.
    pub fn radius_collect(
        query: tigris_geom::Vec3,
        pts: SoaView<'_>,
        ids: &[u32],
        r2: f64,
        out: &mut Vec<Neighbor>,
    ) {
        let n = pts.len();
        assert_eq!(ids.len(), n, "one id per candidate point");
        let (qx, qy, qz) = (query.x, query.y, query.z);
        let mut base = 0;
        while base + LANES <= n {
            let d2 = d2_block::<LANES>(qx, qy, qz, pts, base);
            for l in 0..LANES {
                if d2[l] <= r2 {
                    out.push(Neighbor::new(ids[base + l] as usize, d2[l]));
                }
            }
            base += LANES;
        }
        if base + LANES_HALF <= n {
            let d2 = d2_block::<LANES_HALF>(qx, qy, qz, pts, base);
            for l in 0..LANES_HALF {
                if d2[l] <= r2 {
                    out.push(Neighbor::new(ids[base + l] as usize, d2[l]));
                }
            }
            base += LANES_HALF;
        }
        for i in base..n {
            let dx = qx - pts.xs[i];
            let dy = qy - pts.ys[i];
            let dz = qz - pts.zs[i];
            let d2 = (dx * dx + dy * dy) + dz * dz;
            if d2 <= r2 {
                out.push(Neighbor::new(ids[i] as usize, d2));
            }
        }
    }

    /// Per-lane coordinate sums `[Σx, Σy, Σz]`.
    ///
    /// The three running sums are the contract (one left-to-right chain
    /// per lane, exactly [`scalar::lane_sums`]); blocking only batches
    /// the loads, so the adds stay in scan order and the chains stay
    /// bit-identical while still overlapping as three independent
    /// dependency chains.
    pub fn lane_sums(pts: SoaView<'_>) -> [f64; 3] {
        let n = pts.len();
        let (mut sx, mut sy, mut sz) = (0.0_f64, 0.0_f64, 0.0_f64);
        let mut base = 0;
        while base + LANES <= n {
            let xs = &pts.xs[base..base + LANES];
            let ys = &pts.ys[base..base + LANES];
            let zs = &pts.zs[base..base + LANES];
            for l in 0..LANES {
                sx += xs[l];
                sy += ys[l];
                sz += zs[l];
            }
            base += LANES;
        }
        for i in base..n {
            sx += pts.xs[i];
            sy += pts.ys[i];
            sz += pts.zs[i];
        }
        [sx, sy, sz]
    }

    /// Computes one block of `N` centered-difference products
    /// `[dx·dx, dx·dy, dx·dz, dy·dy, dy·dz, dz·dz]` starting at `base` —
    /// pure elementwise arithmetic, the vectorizable half of the
    /// covariance accumulation.
    #[inline(always)]
    fn cov_block<const N: usize>(
        cx: f64,
        cy: f64,
        cz: f64,
        pts: SoaView<'_>,
        base: usize,
    ) -> [[f64; N]; 6] {
        let xs = &pts.xs[base..base + N];
        let ys = &pts.ys[base..base + N];
        let zs = &pts.zs[base..base + N];
        let mut p = [[0.0_f64; N]; 6];
        for l in 0..N {
            let dx = xs[l] - cx;
            let dy = ys[l] - cy;
            let dz = zs[l] - cz;
            p[0][l] = dx * dx;
            p[1][l] = dx * dy;
            p[2][l] = dx * dz;
            p[3][l] = dy * dy;
            p[4][l] = dy * dz;
            p[5][l] = dz * dz;
        }
        p
    }

    /// The six unique entries `[xx, xy, xz, yy, yz, zz]` of the
    /// neighborhood covariance `Σ (p − c)(p − c)ᵀ`.
    ///
    /// Products are evaluated blockwise (elementwise — safe to
    /// vectorize); the six accumulation chains then fold each block in
    /// scan order, so every chain reproduces [`scalar::cov_upper`]'s
    /// left-to-right association bit for bit while the six independent
    /// chains overlap in the pipeline.
    pub fn cov_upper(pts: SoaView<'_>, centroid: [f64; 3]) -> [f64; 6] {
        let [cx, cy, cz] = centroid;
        let n = pts.len();
        let mut acc = [0.0_f64; 6];
        let mut base = 0;
        while base + LANES <= n {
            let p = cov_block::<LANES>(cx, cy, cz, pts, base);
            for l in 0..LANES {
                for c in 0..6 {
                    acc[c] += p[c][l];
                }
            }
            base += LANES;
        }
        if base + LANES_HALF <= n {
            let p = cov_block::<LANES_HALF>(cx, cy, cz, pts, base);
            for l in 0..LANES_HALF {
                for c in 0..6 {
                    acc[c] += p[c][l];
                }
            }
            base += LANES_HALF;
        }
        for i in base..n {
            let dx = pts.xs[i] - cx;
            let dy = pts.ys[i] - cy;
            let dz = pts.zs[i] - cz;
            acc[0] += dx * dx;
            acc[1] += dx * dy;
            acc[2] += dx * dz;
            acc[3] += dy * dy;
            acc[4] += dy * dz;
            acc[5] += dz * dz;
        }
        acc
    }

    /// Writes `‖query − pts[i]‖` (the non-squared distance) to `out[i]`
    /// for every candidate.
    ///
    /// Blockwise squared distances followed by an elementwise `sqrt`;
    /// IEEE square root is correctly rounded, so the blocked variant is
    /// bit-identical to [`scalar::distances`].
    ///
    /// # Panics
    ///
    /// Panics unless `out` and the coordinate lanes of `pts` have the
    /// same length.
    pub fn distances(query: tigris_geom::Vec3, pts: SoaView<'_>, out: &mut [f64]) {
        let n = pts.len();
        assert_eq!(out.len(), n, "one output slot per candidate point");
        let (qx, qy, qz) = (query.x, query.y, query.z);
        let mut base = 0;
        while base + LANES <= n {
            let d2 = d2_block::<LANES>(qx, qy, qz, pts, base);
            for l in 0..LANES {
                out[base + l] = d2[l].sqrt();
            }
            base += LANES;
        }
        if base + LANES_HALF <= n {
            let d2 = d2_block::<LANES_HALF>(qx, qy, qz, pts, base);
            for l in 0..LANES_HALF {
                out[base + l] = d2[l].sqrt();
            }
            base += LANES_HALF;
        }
        for i in base..n {
            let dx = qx - pts.xs[i];
            let dy = qy - pts.ys[i];
            let dz = qz - pts.zs[i];
            out[i] = ((dx * dx + dy * dy) + dz * dz).sqrt();
        }
    }

    /// `acc[i] += w · v[i]` across a descriptor row, in 8-wide blocks.
    /// Each element is an independent chain, so blocking cannot
    /// reassociate anything; no FMA is emitted (Rust never contracts).
    ///
    /// # Panics
    ///
    /// Panics unless `acc.len() == v.len()`.
    pub fn axpy(acc: &mut [f64], w: f64, v: &[f64]) {
        let n = acc.len();
        assert_eq!(v.len(), n, "accumulator and row must have the same length");
        let mut base = 0;
        while base + LANES <= n {
            let a = &mut acc[base..base + LANES];
            let b = &v[base..base + LANES];
            for l in 0..LANES {
                a[l] += w * b[l];
            }
            base += LANES;
        }
        for i in base..n {
            acc[i] += w * v[i];
        }
    }

    /// The SPFH 11-bucket binning, elementwise into `out`: the
    /// clamp-and-scale runs blockwise, the float→lane-index cast per
    /// element.
    ///
    /// # Panics
    ///
    /// Panics unless `out.len() == values.len()`.
    pub fn bin11(values: &[f64], lo: f64, hi: f64, out: &mut [u32]) {
        let n = values.len();
        assert_eq!(out.len(), n, "one output bin per value");
        let span = hi - lo;
        let mut base = 0;
        while base + LANES <= n {
            let vs = &values[base..base + LANES];
            let mut scaled = [0.0_f64; LANES];
            for l in 0..LANES {
                scaled[l] = ((vs[l] - lo) / span).clamp(0.0, 1.0) * 11.0;
            }
            for l in 0..LANES {
                out[base + l] = (scaled[l] as u32).min(10);
            }
            base += LANES;
        }
        for i in base..n {
            let t = ((values[i] - lo) / (hi - lo)).clamp(0.0, 1.0);
            out[i] = ((t * 11.0) as u32).min(10);
        }
    }

    /// Batch width of the blocked [`pair_features_batch`]: the
    /// non-transcendental arithmetic runs through stack blocks this
    /// wide, the `atan2` evaluation stays one libm call per lane.
    const PAIR_BLOCK: usize = 64;

    /// Canonically-ordered Darboux pair features — see the [`scalar`]
    /// reference for the semantics. The whole chain (distance,
    /// direction, ordering select, frame axes, dot products) is
    /// branch-free elementwise arithmetic over fixed-width blocks;
    /// subtraction/multiplication/addition orders copy the `Vec3`
    /// operator sequences and division and square root are correctly
    /// rounded, so every lane is bit-identical to the scalar kernel.
    /// Only the final `theta = atan2(y, x)` runs per lane.
    ///
    /// # Panics
    ///
    /// Panics unless all input and output slices share one length.
    #[allow(clippy::too_many_arguments)]
    pub fn pair_features_batch(
        ps: &[tigris_geom::Vec3],
        ns: &[tigris_geom::Vec3],
        pt: &[tigris_geom::Vec3],
        nt: &[tigris_geom::Vec3],
        alpha: &mut [f64],
        phi: &mut [f64],
        theta: &mut [f64],
        flags: &mut [u8],
    ) {
        let n = ps.len();
        assert!(
            [ns.len(), pt.len(), nt.len(), alpha.len(), phi.len(), theta.len(), flags.len()]
                .iter()
                .all(|&l| l == n),
            "one lane per pair across all slices"
        );
        const B: usize = PAIR_BLOCK;
        let mut base = 0;
        while base < n {
            let m = (n - base).min(B);
            // Stage 0 — transpose the AoS lanes into SoA blocks; every
            // later stage is a plain elementwise loop over these.
            let (mut psx, mut psy, mut psz) = ([0.0_f64; B], [0.0_f64; B], [0.0_f64; B]);
            let (mut nsx, mut nsy, mut nsz) = ([0.0_f64; B], [0.0_f64; B], [0.0_f64; B]);
            let (mut ptx, mut pty, mut ptz) = ([0.0_f64; B], [0.0_f64; B], [0.0_f64; B]);
            let (mut ntx, mut nty, mut ntz) = ([0.0_f64; B], [0.0_f64; B], [0.0_f64; B]);
            for k in 0..m {
                let i = base + k;
                (psx[k], psy[k], psz[k]) = (ps[i].x, ps[i].y, ps[i].z);
                (nsx[k], nsy[k], nsz[k]) = (ns[i].x, ns[i].y, ns[i].z);
                (ptx[k], pty[k], ptz[k]) = (pt[i].x, pt[i].y, pt[i].z);
                (ntx[k], nty[k], ntz[k]) = (nt[i].x, nt[i].y, nt[i].z);
            }
            // Stage 1 — connecting line: distance and unit direction.
            // Stages 1–4 run all `B` lanes — a fixed trip count with no
            // bounds checks is what the auto-vectorizer turns into
            // packed code — and the zero-initialized padding lanes
            // produce NaNs that stage 5 never reads.
            let mut dist = [0.0_f64; B];
            let (mut dux, mut duy, mut duz) = ([0.0_f64; B], [0.0_f64; B], [0.0_f64; B]);
            for k in 0..B {
                let dx = ptx[k] - psx[k];
                let dy = pty[k] - psy[k];
                let dz = ptz[k] - psz[k];
                let d = ((dx * dx + dy * dy) + dz * dz).sqrt();
                dist[k] = d;
                dux[k] = dx / d;
                duy[k] = dy / d;
                duz[k] = dz / d;
            }
            // Stage 2 — canonical ordering magnitudes and the select
            // mask (the side whose normal leans into the line wins).
            let mut swap = [false; B];
            let mut tie = [false; B];
            for k in 0..B {
                let a = ((nsx[k] * dux[k] + nsy[k] * duy[k]) + nsz[k] * duz[k]).abs();
                let b = ((ntx[k] * -dux[k] + nty[k] * -duy[k]) + ntz[k] * -duz[k]).abs();
                swap[k] = a >= b;
                tie[k] = a == b;
            }
            // Stage 3 — frame operands after the select.
            let (mut ux, mut uy, mut uz) = ([0.0_f64; B], [0.0_f64; B], [0.0_f64; B]);
            let (mut mx, mut my, mut mz) = ([0.0_f64; B], [0.0_f64; B], [0.0_f64; B]);
            let (mut ex, mut ey, mut ez) = ([0.0_f64; B], [0.0_f64; B], [0.0_f64; B]);
            for k in 0..B {
                let s = swap[k];
                ux[k] = if s { nsx[k] } else { ntx[k] };
                uy[k] = if s { nsy[k] } else { nty[k] };
                uz[k] = if s { nsz[k] } else { ntz[k] };
                mx[k] = if s { ntx[k] } else { nsx[k] };
                my[k] = if s { nty[k] } else { nsy[k] };
                mz[k] = if s { ntz[k] } else { nsz[k] };
                ex[k] = if s { dux[k] } else { -dux[k] };
                ey[k] = if s { duy[k] } else { -duy[k] };
                ez[k] = if s { duz[k] } else { -duz[k] };
            }
            // Stage 4 — v = dd × u normalized (`Vec3::cross` order), w =
            // u × v̂, and the four dot products.
            let mut vn = [0.0_f64; B];
            let mut ty = [0.0_f64; B];
            let mut tx = [0.0_f64; B];
            let mut aout = [0.0_f64; B];
            let mut pout = [0.0_f64; B];
            for k in 0..B {
                let vx = ey[k] * uz[k] - ez[k] * uy[k];
                let vy = ez[k] * ux[k] - ex[k] * uz[k];
                let vz = ex[k] * uy[k] - ey[k] * ux[k];
                let d = ((vx * vx + vy * vy) + vz * vz).sqrt();
                vn[k] = d;
                let qx = vx / d;
                let qy = vy / d;
                let qz = vz / d;
                let wx = uy[k] * qz - uz[k] * qy;
                let wy = uz[k] * qx - ux[k] * qz;
                let wz = ux[k] * qy - uy[k] * qx;
                aout[k] = (qx * mx[k] + qy * my[k]) + qz * mz[k];
                pout[k] = (ux[k] * ex[k] + uy[k] * ey[k]) + uz[k] * ez[k];
                ty[k] = (wx * mx[k] + wy * my[k]) + wz * mz[k];
                tx[k] = (ux[k] * mx[k] + uy[k] * my[k]) + uz[k] * mz[k];
            }
            // Stage 5 — per-lane transcendental and flag assembly.
            for k in 0..m {
                alpha[base + k] = aout[k];
                phi[base + k] = pout[k];
                theta[base + k] = ty[k].atan2(tx[k]);
                // Same NaN-preserving `if x < eps` tests as the scalar
                // variant — the classifications must agree bit-for-bit.
                let dist_ok = if dist[k] < 1e-9 { 0 } else { PAIR_DIST_OK };
                let frame_ok = if vn[k] < 1e-12 { 0 } else { PAIR_FRAME_OK };
                let tie_flag = if tie[k] { PAIR_TIE } else { 0 };
                flags[base + k] = dist_ok | frame_ok | tie_flag;
            }
            base += m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soa::PointSoA;
    use tigris_geom::Vec3;

    fn cloud(n: usize) -> (PointSoA, Vec<u32>) {
        let pts: Vec<Vec3> = (0..n)
            .map(|i| {
                let f = i as f64;
                Vec3::new((f * 0.37).sin() * 5.0, (f * 0.11).cos() * 5.0, f * 0.05)
            })
            .collect();
        (PointSoA::from_points(&pts), (0..n as u32).collect())
    }

    #[test]
    fn wide_matches_scalar_on_all_remainders() {
        // 0..=19 covers n % 8 ∈ {0..7} with and without a half block.
        for n in 0..20 {
            let (soa, ids) = cloud(n);
            let q = Vec3::new(0.3, -1.2, 0.7);

            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            scalar::squared_distances(q, soa.view(), &mut a);
            wide::squared_distances(q, soa.view(), &mut b);
            assert_eq!(a, b, "n = {n}");

            assert_eq!(
                scalar::nn_reduce(q, soa.view(), &ids),
                wide::nn_reduce(q, soa.view(), &ids),
                "n = {n}"
            );

            let r2 = 9.0;
            let mut ha = Vec::new();
            let mut hb = Vec::new();
            scalar::radius_collect(q, soa.view(), &ids, r2, &mut ha);
            wide::radius_collect(q, soa.view(), &ids, r2, &mut hb);
            assert_eq!(ha, hb, "n = {n}");
        }
    }

    #[test]
    fn frontend_kernels_match_scalar_on_all_remainders() {
        for n in 0..20 {
            let (soa, _) = cloud(n);
            let q = Vec3::new(0.3, -1.2, 0.7);

            assert_eq!(scalar::lane_sums(soa.view()), wide::lane_sums(soa.view()), "n = {n}");

            let c = [0.4, -0.7, 1.3];
            assert_eq!(scalar::cov_upper(soa.view(), c), wide::cov_upper(soa.view(), c), "n = {n}");

            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            scalar::distances(q, soa.view(), &mut a);
            wide::distances(q, soa.view(), &mut b);
            assert_eq!(a, b, "n = {n}");

            // axpy over an n-length row, seeded with distinct accumulators.
            let row: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin()).collect();
            let mut acc_a: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
            let mut acc_b = acc_a.clone();
            scalar::axpy(&mut acc_a, 0.37, &row);
            wide::axpy(&mut acc_b, 0.37, &row);
            assert_eq!(acc_a, acc_b, "n = {n}");

            let vals: Vec<f64> = (0..n).map(|i| -1.4 + 0.31 * i as f64).collect();
            let mut ba = vec![0u32; n];
            let mut bb = vec![0u32; n];
            scalar::bin11(&vals, -1.0, 1.0, &mut ba);
            wide::bin11(&vals, -1.0, 1.0, &mut bb);
            assert_eq!(ba, bb, "n = {n}");
        }
    }

    #[test]
    fn pair_features_batch_matches_scalar_lanewise() {
        // Pairs spanning generic geometry, an exact canonical-ordering
        // tie (mirrored normals), coincident points (dist guard), and a
        // degenerate frame (direction parallel to both normals).
        for n in 0..70 {
            let mut ps = Vec::new();
            let mut ns = Vec::new();
            let mut pt = Vec::new();
            let mut nt = Vec::new();
            for i in 0..n {
                let f = i as f64;
                match i % 4 {
                    0 => {
                        ps.push(Vec3::new((f * 0.37).sin(), (f * 0.11).cos(), f * 0.05));
                        ns.push(Vec3::new(0.0, 0.6, 0.8));
                        pt.push(Vec3::new((f * 0.19).cos(), (f * 0.29).sin(), 1.0 - f * 0.02));
                        nt.push(Vec3::new(0.48, 0.6, 0.64));
                    }
                    1 => {
                        // Tie: both normals orthogonal to the line.
                        ps.push(Vec3::new(f, 0.0, 0.0));
                        ns.push(Vec3::new(0.0, 1.0, 0.0));
                        pt.push(Vec3::new(f + 1.0, 0.0, 0.0));
                        nt.push(Vec3::new(0.0, 0.0, 1.0));
                    }
                    2 => {
                        // Coincident points: dist guard fires.
                        ps.push(Vec3::new(f, f, f));
                        ns.push(Vec3::new(1.0, 0.0, 0.0));
                        pt.push(Vec3::new(f, f, f));
                        nt.push(Vec3::new(0.0, 1.0, 0.0));
                    }
                    _ => {
                        // Degenerate frame: du ∥ ns, cross ≈ 0.
                        ps.push(Vec3::new(0.0, 0.0, f));
                        ns.push(Vec3::new(0.0, 0.0, 1.0));
                        pt.push(Vec3::new(0.0, 0.0, f + 2.0));
                        nt.push(Vec3::new(0.0, 0.0, 1.0));
                    }
                }
            }
            let (mut aa, mut pa, mut ta, mut fa) =
                (vec![0.0; n], vec![0.0; n], vec![0.0; n], vec![0u8; n]);
            let (mut ab, mut pb, mut tb, mut fb) =
                (vec![0.0; n], vec![0.0; n], vec![0.0; n], vec![0u8; n]);
            scalar::pair_features_batch(&ps, &ns, &pt, &nt, &mut aa, &mut pa, &mut ta, &mut fa);
            wide::pair_features_batch(&ps, &ns, &pt, &nt, &mut ab, &mut pb, &mut tb, &mut fb);
            assert_eq!(fa, fb, "n = {n}");
            for i in 0..n {
                if fa[i] & (PAIR_DIST_OK | PAIR_FRAME_OK) == PAIR_DIST_OK | PAIR_FRAME_OK {
                    assert_eq!(aa[i].to_bits(), ab[i].to_bits(), "alpha lane {i}, n = {n}");
                    assert_eq!(pa[i].to_bits(), pb[i].to_bits(), "phi lane {i}, n = {n}");
                    assert_eq!(ta[i].to_bits(), tb[i].to_bits(), "theta lane {i}, n = {n}");
                }
            }
        }
    }

    #[test]
    fn cov_upper_matches_outer_product_sums() {
        let (soa, _) = cloud(13);
        let c = [0.25, -0.5, 0.75];
        let acc = cov_upper(soa.view(), c);
        // Reference: the entrywise scan-order accumulation the plane fit
        // used before the kernel split.
        let mut want = [0.0f64; 6];
        for i in 0..13 {
            let d = soa.get(i) - Vec3::new(c[0], c[1], c[2]);
            want[0] += d.x * d.x;
            want[1] += d.x * d.y;
            want[2] += d.x * d.z;
            want[3] += d.y * d.y;
            want[4] += d.y * d.z;
            want[5] += d.z * d.z;
        }
        assert_eq!(acc, want);
    }

    #[test]
    fn bin11_clamps_and_saturates() {
        let vals = [-5.0, -1.0, 0.0, 0.999, 1.0, 5.0, f64::NAN];
        let mut bins = vec![0u32; vals.len()];
        bin11(&vals, -1.0, 1.0, &mut bins);
        assert_eq!(bins[0], 0);
        assert_eq!(bins[1], 0);
        assert_eq!(bins[2], 5);
        assert_eq!(bins[4], 10);
        assert_eq!(bins[5], 10);
        // clamp propagates NaN, and `NaN as u32` saturates to 0.
        assert_eq!(bins[6], 0);
    }

    #[test]
    fn nn_reduce_breaks_ties_to_smaller_id_regardless_of_order() {
        // Two copies of the same point, ids deliberately out of order.
        let soa = PointSoA::from_points(&[Vec3::X; 9]);
        let ids: Vec<u32> = vec![8, 7, 6, 5, 4, 3, 2, 1, 0];
        let q = Vec3::new(2.0, 0.0, 0.0);
        assert_eq!(scalar::nn_reduce(q, soa.view(), &ids), Some((1.0, 0)));
        assert_eq!(wide::nn_reduce(q, soa.view(), &ids), Some((1.0, 0)));
    }

    #[test]
    fn empty_view_has_no_nearest() {
        let soa = PointSoA::new();
        assert_eq!(nn_reduce(Vec3::ZERO, soa.view(), &[]), None);
        let mut out = Vec::new();
        radius_collect(Vec3::ZERO, soa.view(), &[], 1.0, &mut out);
        assert!(out.is_empty());
        squared_distances(Vec3::ZERO, soa.view(), &mut []);
    }

    #[test]
    fn radius_boundary_is_inclusive() {
        let soa = PointSoA::from_points(&[Vec3::new(3.0, 0.0, 0.0)]);
        let mut out = Vec::new();
        radius_collect(Vec3::ZERO, soa.view(), &[0], 9.0, &mut out);
        assert_eq!(out, vec![Neighbor::new(0, 9.0)]);
    }
}

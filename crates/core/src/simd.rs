//! Explicit distance + reduction kernels over [`SoaView`] lanes — the
//! software stand-in for the accelerator's distance datapath.
//!
//! Three kernels cover every exhaustive scan in the crate:
//!
//! * [`squared_distances`] — one squared distance per candidate, written
//!   to an output slice (the "distance array" stage of the paper's
//!   pipeline).
//! * [`nn_reduce`] — squared distances fused with a horizontal
//!   `(distance, id)` min reduction: the 1-NN kernel.
//! * [`radius_collect`] — squared distances fused with a masked
//!   `d² ≤ r²` compare that appends hits in scan order: the radius-search
//!   kernel.
//!
//! Two implementations exist side by side and are **always both
//! compiled**:
//!
//! * [`scalar`] — the one-point-per-iteration reference, written to be
//!   obviously correct.
//! * [`wide`] — cache-blocked lane kernels: candidates are processed in
//!   8-wide then 4-wide `f64` blocks (`[f64; 8]` / `[f64; 4]` — the
//!   portable-SIMD shape LLVM turns into AVX/NEON vector code), with a
//!   scalar remainder loop for the final `n mod 4` lanes.
//!
//! The crate-level re-exports select the implementation at build time:
//! [`wide`] by default, [`scalar`] when the `scalar-kernels` cargo
//! feature is enabled (for targets where auto-vectorization misbehaves or
//! when bisecting a numeric regression). The two are **bit-identical**,
//! not merely close: every lane evaluates
//! `(dx·dx + dy·dy) + dz·dz` in exactly
//! [`Vec3::distance_squared`](tigris_geom::Vec3::distance_squared)'s
//! association, Rust never contracts to FMA, and the `(d², id)`
//! lexicographic min is associative and commutative (ids are unique), so
//! blocked reduction order cannot change the winner.
//! `core/tests/kernel_equivalence.rs` enforces this differentially on
//! adversarial inputs.

use crate::soa::SoaView;
use crate::Neighbor;

/// Widest block the [`wide`] kernels process per step (points per
/// iteration). KD-tree leaves are sized in multiples of this.
pub const LANES: usize = 8;

/// Half-width block used to drain most of an `n mod 8` remainder before
/// falling back to the scalar tail.
pub const LANES_HALF: usize = 4;

#[cfg(not(feature = "scalar-kernels"))]
pub use wide::{nn_reduce, radius_collect, squared_distances};

#[cfg(feature = "scalar-kernels")]
pub use scalar::{nn_reduce, radius_collect, squared_distances};

/// `true` when the build-time selected kernels are the blocked [`wide`]
/// ones (i.e. the `scalar-kernels` fallback feature is off).
pub const fn wide_kernels_selected() -> bool {
    !cfg!(feature = "scalar-kernels")
}

#[inline(always)]
fn lex_min(d2: f64, id: u32, best_d2: &mut f64, best_id: &mut u32) {
    if d2 < *best_d2 || (d2 == *best_d2 && id < *best_id) {
        *best_d2 = d2;
        *best_id = id;
    }
}

/// One-point-per-iteration reference kernels.
///
/// These define the semantics the [`wide`] kernels must reproduce bit for
/// bit. They are also the build-time fallback behind the `scalar-kernels`
/// feature.
pub mod scalar {
    // Every kernel walks several parallel slices (coordinate lanes, ids,
    // output) in lockstep; a shared index is the clearest form.
    #![allow(clippy::needless_range_loop)]

    use super::*;

    /// Writes `‖query − pts[i]‖²` to `out[i]` for every candidate.
    ///
    /// # Panics
    ///
    /// Panics unless `out`, the coordinate lanes of `pts`, all have the
    /// same length.
    pub fn squared_distances(query: tigris_geom::Vec3, pts: SoaView<'_>, out: &mut [f64]) {
        let n = pts.len();
        assert_eq!(out.len(), n, "one output slot per candidate point");
        for i in 0..n {
            let dx = query.x - pts.xs[i];
            let dy = query.y - pts.ys[i];
            let dz = query.z - pts.zs[i];
            out[i] = (dx * dx + dy * dy) + dz * dz;
        }
    }

    /// Returns the `(d², id)` lexicographic minimum over all candidates
    /// (nearest neighbor, ties broken to the smaller id), or `None` for an
    /// empty view.
    ///
    /// # Panics
    ///
    /// Panics unless `ids.len() == pts.len()`.
    pub fn nn_reduce(
        query: tigris_geom::Vec3,
        pts: SoaView<'_>,
        ids: &[u32],
    ) -> Option<(f64, u32)> {
        let n = pts.len();
        assert_eq!(ids.len(), n, "one id per candidate point");
        if n == 0 {
            return None;
        }
        let mut best_d2 = f64::INFINITY;
        let mut best_id = u32::MAX;
        for i in 0..n {
            let dx = query.x - pts.xs[i];
            let dy = query.y - pts.ys[i];
            let dz = query.z - pts.zs[i];
            let d2 = (dx * dx + dy * dy) + dz * dz;
            lex_min(d2, ids[i], &mut best_d2, &mut best_id);
        }
        Some((best_d2, best_id))
    }

    /// Appends a [`Neighbor`] for every candidate with `d² ≤ r²`, in scan
    /// order.
    ///
    /// # Panics
    ///
    /// Panics unless `ids.len() == pts.len()`.
    pub fn radius_collect(
        query: tigris_geom::Vec3,
        pts: SoaView<'_>,
        ids: &[u32],
        r2: f64,
        out: &mut Vec<Neighbor>,
    ) {
        let n = pts.len();
        assert_eq!(ids.len(), n, "one id per candidate point");
        for i in 0..n {
            let dx = query.x - pts.xs[i];
            let dy = query.y - pts.ys[i];
            let dz = query.z - pts.zs[i];
            let d2 = (dx * dx + dy * dy) + dz * dz;
            if d2 <= r2 {
                out.push(Neighbor::new(ids[i] as usize, d2));
            }
        }
    }
}

/// Cache-blocked lane kernels: 8-wide blocks, a 4-wide half block, then a
/// scalar tail.
///
/// Each block loads `N` candidates per coordinate lane into a fixed
/// `[f64; N]` register block and evaluates all lanes with straight-line
/// arithmetic — the shape LLVM auto-vectorizes into packed `f64`
/// instructions on every SIMD target without `unsafe` or intrinsics.
pub mod wide {
    // The scalar remainder tails walk the same parallel slices as
    // `scalar`; see the note there.
    #![allow(clippy::needless_range_loop)]

    use super::*;

    /// Computes one block of `N` squared distances starting at `base`.
    #[inline(always)]
    fn d2_block<const N: usize>(
        qx: f64,
        qy: f64,
        qz: f64,
        pts: SoaView<'_>,
        base: usize,
    ) -> [f64; N] {
        let xs = &pts.xs[base..base + N];
        let ys = &pts.ys[base..base + N];
        let zs = &pts.zs[base..base + N];
        let mut d2 = [0.0_f64; N];
        for l in 0..N {
            let dx = qx - xs[l];
            let dy = qy - ys[l];
            let dz = qz - zs[l];
            d2[l] = (dx * dx + dy * dy) + dz * dz;
        }
        d2
    }

    /// Writes `‖query − pts[i]‖²` to `out[i]` for every candidate.
    ///
    /// # Panics
    ///
    /// Panics unless `out`, the coordinate lanes of `pts`, all have the
    /// same length.
    pub fn squared_distances(query: tigris_geom::Vec3, pts: SoaView<'_>, out: &mut [f64]) {
        let n = pts.len();
        assert_eq!(out.len(), n, "one output slot per candidate point");
        let (qx, qy, qz) = (query.x, query.y, query.z);
        let mut base = 0;
        while base + LANES <= n {
            let d2 = d2_block::<LANES>(qx, qy, qz, pts, base);
            out[base..base + LANES].copy_from_slice(&d2);
            base += LANES;
        }
        if base + LANES_HALF <= n {
            let d2 = d2_block::<LANES_HALF>(qx, qy, qz, pts, base);
            out[base..base + LANES_HALF].copy_from_slice(&d2);
            base += LANES_HALF;
        }
        for i in base..n {
            let dx = qx - pts.xs[i];
            let dy = qy - pts.ys[i];
            let dz = qz - pts.zs[i];
            out[i] = (dx * dx + dy * dy) + dz * dz;
        }
    }

    /// Folds one `N`-lane block into the per-lane running minima
    /// (lanes `0..N` of the accumulators).
    #[inline(always)]
    fn fold_block<const N: usize>(
        d2: &[f64; N],
        ids: &[u32],
        best_d2: &mut [f64; LANES],
        best_id: &mut [u32; LANES],
    ) {
        for l in 0..N {
            if d2[l] < best_d2[l] || (d2[l] == best_d2[l] && ids[l] < best_id[l]) {
                best_d2[l] = d2[l];
                best_id[l] = ids[l];
            }
        }
    }

    /// Returns the `(d², id)` lexicographic minimum over all candidates
    /// (nearest neighbor, ties broken to the smaller id), or `None` for an
    /// empty view.
    ///
    /// Per-lane running minima are folded by a final horizontal reduction;
    /// because lexicographic min over unique ids is associative and
    /// commutative, the result is identical to [`scalar::nn_reduce`]'s
    /// left-to-right fold.
    ///
    /// # Panics
    ///
    /// Panics unless `ids.len() == pts.len()`.
    pub fn nn_reduce(
        query: tigris_geom::Vec3,
        pts: SoaView<'_>,
        ids: &[u32],
    ) -> Option<(f64, u32)> {
        let n = pts.len();
        assert_eq!(ids.len(), n, "one id per candidate point");
        if n == 0 {
            return None;
        }
        let (qx, qy, qz) = (query.x, query.y, query.z);
        let mut lane_d2 = [f64::INFINITY; LANES];
        let mut lane_id = [u32::MAX; LANES];
        let mut base = 0;
        while base + LANES <= n {
            let d2 = d2_block::<LANES>(qx, qy, qz, pts, base);
            fold_block::<LANES>(&d2, &ids[base..base + LANES], &mut lane_d2, &mut lane_id);
            base += LANES;
        }
        if base + LANES_HALF <= n {
            let d2 = d2_block::<LANES_HALF>(qx, qy, qz, pts, base);
            fold_block::<LANES_HALF>(
                &d2,
                &ids[base..base + LANES_HALF],
                &mut lane_d2,
                &mut lane_id,
            );
            base += LANES_HALF;
        }
        // Horizontal reduction of the lane minima, then the scalar tail.
        let mut best_d2 = f64::INFINITY;
        let mut best_id = u32::MAX;
        for l in 0..LANES {
            lex_min(lane_d2[l], lane_id[l], &mut best_d2, &mut best_id);
        }
        for i in base..n {
            let dx = qx - pts.xs[i];
            let dy = qy - pts.ys[i];
            let dz = qz - pts.zs[i];
            let d2 = (dx * dx + dy * dy) + dz * dz;
            lex_min(d2, ids[i], &mut best_d2, &mut best_id);
        }
        Some((best_d2, best_id))
    }

    /// Appends a [`Neighbor`] for every candidate with `d² ≤ r²`, in scan
    /// order.
    ///
    /// Distances are evaluated blockwise; the masked compare then emits
    /// hits lane by lane, preserving the scalar kernel's output order
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics unless `ids.len() == pts.len()`.
    pub fn radius_collect(
        query: tigris_geom::Vec3,
        pts: SoaView<'_>,
        ids: &[u32],
        r2: f64,
        out: &mut Vec<Neighbor>,
    ) {
        let n = pts.len();
        assert_eq!(ids.len(), n, "one id per candidate point");
        let (qx, qy, qz) = (query.x, query.y, query.z);
        let mut base = 0;
        while base + LANES <= n {
            let d2 = d2_block::<LANES>(qx, qy, qz, pts, base);
            for l in 0..LANES {
                if d2[l] <= r2 {
                    out.push(Neighbor::new(ids[base + l] as usize, d2[l]));
                }
            }
            base += LANES;
        }
        if base + LANES_HALF <= n {
            let d2 = d2_block::<LANES_HALF>(qx, qy, qz, pts, base);
            for l in 0..LANES_HALF {
                if d2[l] <= r2 {
                    out.push(Neighbor::new(ids[base + l] as usize, d2[l]));
                }
            }
            base += LANES_HALF;
        }
        for i in base..n {
            let dx = qx - pts.xs[i];
            let dy = qy - pts.ys[i];
            let dz = qz - pts.zs[i];
            let d2 = (dx * dx + dy * dy) + dz * dz;
            if d2 <= r2 {
                out.push(Neighbor::new(ids[i] as usize, d2));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soa::PointSoA;
    use tigris_geom::Vec3;

    fn cloud(n: usize) -> (PointSoA, Vec<u32>) {
        let pts: Vec<Vec3> = (0..n)
            .map(|i| {
                let f = i as f64;
                Vec3::new((f * 0.37).sin() * 5.0, (f * 0.11).cos() * 5.0, f * 0.05)
            })
            .collect();
        (PointSoA::from_points(&pts), (0..n as u32).collect())
    }

    #[test]
    fn wide_matches_scalar_on_all_remainders() {
        // 0..=19 covers n % 8 ∈ {0..7} with and without a half block.
        for n in 0..20 {
            let (soa, ids) = cloud(n);
            let q = Vec3::new(0.3, -1.2, 0.7);

            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            scalar::squared_distances(q, soa.view(), &mut a);
            wide::squared_distances(q, soa.view(), &mut b);
            assert_eq!(a, b, "n = {n}");

            assert_eq!(
                scalar::nn_reduce(q, soa.view(), &ids),
                wide::nn_reduce(q, soa.view(), &ids),
                "n = {n}"
            );

            let r2 = 9.0;
            let mut ha = Vec::new();
            let mut hb = Vec::new();
            scalar::radius_collect(q, soa.view(), &ids, r2, &mut ha);
            wide::radius_collect(q, soa.view(), &ids, r2, &mut hb);
            assert_eq!(ha, hb, "n = {n}");
        }
    }

    #[test]
    fn nn_reduce_breaks_ties_to_smaller_id_regardless_of_order() {
        // Two copies of the same point, ids deliberately out of order.
        let soa = PointSoA::from_points(&[Vec3::X; 9]);
        let ids: Vec<u32> = vec![8, 7, 6, 5, 4, 3, 2, 1, 0];
        let q = Vec3::new(2.0, 0.0, 0.0);
        assert_eq!(scalar::nn_reduce(q, soa.view(), &ids), Some((1.0, 0)));
        assert_eq!(wide::nn_reduce(q, soa.view(), &ids), Some((1.0, 0)));
    }

    #[test]
    fn empty_view_has_no_nearest() {
        let soa = PointSoA::new();
        assert_eq!(nn_reduce(Vec3::ZERO, soa.view(), &[]), None);
        let mut out = Vec::new();
        radius_collect(Vec3::ZERO, soa.view(), &[], 1.0, &mut out);
        assert!(out.is_empty());
        squared_distances(Vec3::ZERO, soa.view(), &mut []);
    }

    #[test]
    fn radius_boundary_is_inclusive() {
        let soa = PointSoA::from_points(&[Vec3::new(3.0, 0.0, 0.0)]);
        let mut out = Vec::new();
        radius_collect(Vec3::ZERO, soa.view(), &[0], 9.0, &mut out);
        assert_eq!(out, vec![Neighbor::new(0, 9.0)]);
    }
}

//! An incrementally insertable search index for growing maps.
//!
//! Mapping workloads (tigris-map) interleave *inserts* — each registered
//! frame's points join the map — with *queries* — loop-closure checks and
//! map lookups. A static KD-tree would have to be rebuilt on every insert
//! (O(n log n) each time); a fully dynamic tree gives up the cache-friendly
//! layout the accelerator-amenable structures rely on.
//!
//! [`DynamicMapIndex`] takes the middle road, mirroring the paper's
//! two-stage split: a **static KD-tree** over the settled majority of the
//! points plus a small **fresh-points buffer** scanned exhaustively, merged
//! by a periodic rebuild once the buffer outgrows its capacity. Every query
//! is answered from both halves and merged with the brute-force
//! `(distance, index)` ordering, so results are *bit-identical* to a
//! KD-tree freshly rebuilt over the same points after any interleaving of
//! inserts and queries (verified by a proptest in
//! `core/tests/index_contract.rs`).
//!
//! The index is registered in the backend registry as `"dynamic"`, so it
//! drops into the registration pipeline, the backend-matrix bench and the
//! DSE sweeps like every other backend.
//!
//! # Example
//!
//! ```
//! use tigris_core::{DynamicMapIndex, KdTree};
//! use tigris_geom::Vec3;
//!
//! let mut index = DynamicMapIndex::new();
//! for i in 0..500 {
//!     index.insert(Vec3::new((i % 25) as f64, (i / 25) as f64, 0.0));
//! }
//! let q = Vec3::new(3.2, 7.9, 0.1);
//! let dynamic = index.nn_query(q).unwrap();
//! let rebuilt = KdTree::build(index.all_points()).nn(q).unwrap();
//! assert_eq!((dynamic.index, dynamic.distance_squared),
//!            (rebuilt.index, rebuilt.distance_squared));
//! ```

use crate::batch::{parallel_queries, BatchConfig, BatchSearcher};
use crate::index::{IndexSize, SearchIndex, SharedIndex};
use crate::soa::PointSoA;
use crate::{simd, KdTree, Neighbor, SearchStats};
use tigris_geom::Vec3;

/// Default fresh-buffer capacity before a merge rebuild is triggered.
pub const DEFAULT_FRESH_CAPACITY: usize = 1024;

/// A static KD-tree plus a fresh-points buffer, merged by periodic rebuild.
///
/// Indices returned by queries refer to [`DynamicMapIndex::all_points`],
/// i.e. the points in insertion order — settled points keep their indices
/// across rebuilds, so result indices are stable for the life of the index.
///
/// See the [module docs](self) for the design rationale.
#[derive(Debug, Clone)]
pub struct DynamicMapIndex {
    /// All points in insertion order; `points[..settled]` are indexed by
    /// `tree`, `points[settled..]` are the fresh buffer.
    points: Vec<Vec3>,
    /// Static tree over the settled prefix.
    tree: KdTree,
    /// Number of settled (tree-indexed) points.
    settled: usize,
    /// SoA mirror of `points[settled..]`, scanned by the SIMD kernels.
    fresh: PointSoA,
    /// Global indices (`settled + j`) of the fresh points, for the kernels.
    fresh_ids: Vec<u32>,
    /// Fresh-buffer length that triggers a merge rebuild.
    fresh_capacity: usize,
    /// Merge rebuilds performed so far.
    rebuilds: usize,
}

impl Default for DynamicMapIndex {
    fn default() -> Self {
        DynamicMapIndex::new()
    }
}

impl DynamicMapIndex {
    /// An empty index with the default fresh-buffer capacity.
    pub fn new() -> Self {
        DynamicMapIndex::with_fresh_capacity(DEFAULT_FRESH_CAPACITY)
    }

    /// An empty index that merge-rebuilds once the fresh buffer holds
    /// `fresh_capacity` points (clamped to at least 1).
    pub fn with_fresh_capacity(fresh_capacity: usize) -> Self {
        DynamicMapIndex {
            points: Vec::new(),
            tree: KdTree::build(&[]),
            settled: 0,
            fresh: PointSoA::new(),
            fresh_ids: Vec::new(),
            fresh_capacity: fresh_capacity.max(1),
            rebuilds: 0,
        }
    }

    /// Builds an index over `points` with everything settled (no fresh
    /// buffer) — equivalent to inserting all points and forcing a rebuild.
    pub fn build(points: &[Vec3]) -> Self {
        let _span = tigris_obs::span!("core.index_build", points = points.len());
        DynamicMapIndex {
            points: points.to_vec(),
            tree: KdTree::build(points),
            settled: points.len(),
            fresh: PointSoA::new(),
            fresh_ids: Vec::new(),
            fresh_capacity: DEFAULT_FRESH_CAPACITY,
            rebuilds: 0,
        }
    }

    /// Inserts one point, merge-rebuilding when the fresh buffer is full.
    pub fn insert(&mut self, p: Vec3) {
        self.points.push(p);
        self.fresh.push(p);
        self.fresh_ids.push((self.points.len() - 1) as u32);
        if self.fresh_len() >= self.fresh_capacity {
            self.rebuild();
        }
    }

    /// Inserts a batch of points (at most one rebuild at the end — cheaper
    /// than point-at-a-time inserts across a capacity boundary).
    pub fn extend(&mut self, points: &[Vec3]) {
        for &p in points {
            self.points.push(p);
            self.fresh.push(p);
            self.fresh_ids.push((self.points.len() - 1) as u32);
        }
        if self.fresh_len() >= self.fresh_capacity {
            self.rebuild();
        }
    }

    /// Forces a merge rebuild: the static tree absorbs the fresh buffer.
    pub fn rebuild(&mut self) {
        if self.fresh_len() == 0 {
            return;
        }
        self.tree = KdTree::build(&self.points);
        self.settled = self.points.len();
        self.fresh.clear();
        self.fresh_ids.clear();
        self.rebuilds += 1;
    }

    /// All indexed points in insertion order (query result indices refer
    /// to this slice).
    pub fn all_points(&self) -> &[Vec3] {
        &self.points
    }

    /// Points currently served by the static tree.
    pub fn settled_len(&self) -> usize {
        self.settled
    }

    /// Points currently in the fresh buffer (scanned exhaustively).
    pub fn fresh_len(&self) -> usize {
        self.points.len() - self.settled
    }

    /// Merge rebuilds performed so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// The fresh-buffer capacity that triggers a merge rebuild.
    pub fn fresh_capacity(&self) -> usize {
        self.fresh_capacity
    }

    /// Heap bytes held by the index: the insertion-order point array, the
    /// settled tree and the fresh buffer (capacities, i.e. what the
    /// allocator charges). Feeds the serving layer's residency budget.
    pub fn memory_bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<Vec3>()
            + self.tree.memory_bytes()
            + self.fresh.memory_bytes()
            + self.fresh_ids.capacity() * std::mem::size_of::<u32>()
    }

    /// Meters one merged query: the tree half's traversal counters are
    /// folded in without double-counting the query itself, and the fresh
    /// scan bills one distance computation per buffered point.
    fn meter(&self, stats: &mut SearchStats, tree_stats: SearchStats) {
        let mut tree_stats = tree_stats;
        tree_stats.queries = 0;
        *stats += tree_stats;
        stats.queries += 1;
        stats.leaf_points_scanned += self.fresh_len() as u64;
    }

    /// Nearest neighbor, bit-identical to a full rebuild's answer.
    pub fn nn_query(&self, query: Vec3) -> Option<Neighbor> {
        let mut stats = SearchStats::new();
        self.nn_query_with_stats(query, &mut stats)
    }

    /// [`DynamicMapIndex::nn_query`] with visit accounting.
    pub fn nn_query_with_stats(&self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        if self.points.is_empty() {
            return None;
        }
        let mut tree_stats = SearchStats::new();
        let mut best = self.tree.nn_with_stats(query, &mut tree_stats);
        self.meter(stats, tree_stats);
        // One kernel pass over the fresh buffer. Settled indices are always
        // lower, so the tree's answer wins distance ties — exactly the full
        // rebuild's tie-break.
        if let Some((d2, id)) = simd::nn_reduce(query, self.fresh.view(), &self.fresh_ids) {
            let cand = Neighbor::new(id as usize, d2);
            match best {
                Some(b) if cand >= b => {}
                _ => best = Some(cand),
            }
        }
        best
    }

    /// The `k` nearest neighbors, ascending by `(distance, index)`,
    /// bit-identical to a full rebuild's answer.
    pub fn knn_query(&self, query: Vec3, k: usize) -> Vec<Neighbor> {
        let mut stats = SearchStats::new();
        self.knn_query_with_stats(query, k, &mut stats)
    }

    /// [`DynamicMapIndex::knn_query`] with visit accounting.
    pub fn knn_query_with_stats(
        &self,
        query: Vec3,
        k: usize,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        if self.points.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut tree_stats = SearchStats::new();
        let mut merged = self.tree.knn_with_stats(query, k, &mut tree_stats);
        self.meter(stats, tree_stats);
        // Any settled point in the global top-k is necessarily in the
        // tree's top-k, so tree-top-k ∪ fresh covers the answer.
        let mut d2s = vec![0.0_f64; self.fresh.len()];
        simd::squared_distances(query, self.fresh.view(), &mut d2s);
        merged.extend(
            d2s.iter().zip(&self.fresh_ids).map(|(&d2, &id)| Neighbor::new(id as usize, d2)),
        );
        merged.sort();
        merged.truncate(k);
        merged
    }

    /// All neighbors within `radius`, ascending by `(distance, index)`,
    /// bit-identical to a full rebuild's answer.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius_query(&self, query: Vec3, radius: f64) -> Vec<Neighbor> {
        let mut stats = SearchStats::new();
        self.radius_query_with_stats(query, radius, &mut stats)
    }

    /// [`DynamicMapIndex::radius_query`] with visit accounting.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius_query_with_stats(
        &self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        assert!(radius >= 0.0, "radius must be non-negative");
        if self.points.is_empty() {
            return Vec::new();
        }
        let mut tree_stats = SearchStats::new();
        let mut merged = self.tree.radius_with_stats(query, radius, &mut tree_stats);
        self.meter(stats, tree_stats);
        simd::radius_collect(
            query,
            self.fresh.view(),
            &self.fresh_ids,
            radius * radius,
            &mut merged,
        );
        merged.sort();
        merged
    }

    // ---- Shared read-only batch path ----------------------------------

    /// Batched [`DynamicMapIndex::nn_query`] through `&self` — the shared
    /// read-only entry point for `Arc`-shared frozen maps (the serving
    /// layer), where many sessions query one index concurrently and no
    /// `&mut` exists. Answers and merged `stats` are bit-identical to
    /// running the serial query per element in order.
    pub fn nn_batch_shared(
        &self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        parallel_queries(queries, cfg, stats, |q, s| self.nn_query_with_stats(q, s))
    }

    /// Batched [`DynamicMapIndex::knn_query`] through `&self`; see
    /// [`DynamicMapIndex::nn_batch_shared`].
    pub fn knn_batch_shared(
        &self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        parallel_queries(queries, cfg, stats, |q, s| self.knn_query_with_stats(q, k, s))
    }

    /// Batched [`DynamicMapIndex::radius_query`] through `&self`; see
    /// [`DynamicMapIndex::nn_batch_shared`].
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius_batch_shared(
        &self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let _span = tigris_obs::span!("core.radius_batch", queries = queries.len());
        parallel_queries(queries, cfg, stats, |q, s| self.radius_query_with_stats(q, radius, s))
    }
}

/// Queries borrow the index shared (the buffer only grows on insert), so
/// batches parallelize exactly like the static trees'.
impl BatchSearcher for DynamicMapIndex {
    fn nn_single(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nn_query_with_stats(query, stats)
    }

    fn knn_single(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.knn_query_with_stats(query, k, stats)
    }

    fn radius_single(
        &mut self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        self.radius_query_with_stats(query, radius, stats)
    }

    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        self.nn_batch_shared(queries, cfg, stats)
    }

    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        self.knn_batch_shared(queries, k, cfg, stats)
    }

    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        self.radius_batch_shared(queries, radius, cfg, stats)
    }
}

impl SearchIndex for DynamicMapIndex {
    fn from_points(points: &[Vec3]) -> Self {
        DynamicMapIndex::build(points)
    }

    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn points(&self) -> &[Vec3] {
        &self.points
    }

    fn size(&self) -> IndexSize {
        // The settled tree's structure, plus the fresh buffer reported as
        // one extra unordered set when non-empty.
        IndexSize {
            points: self.points.len(),
            interior_nodes: self.tree.interior_count(),
            leaf_sets: self.tree.leaf_count() + usize::from(self.fresh_len() > 0),
        }
    }

    fn nn(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nn_query_with_stats(query, stats)
    }

    fn knn(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.knn_query_with_stats(query, k, stats)
    }

    fn radius(&mut self, query: Vec3, radius: f64, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.radius_query_with_stats(query, radius, stats)
    }

    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        BatchSearcher::nn_batch(self, queries, cfg, stats)
    }

    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        BatchSearcher::knn_batch(self, queries, k, cfg, stats)
    }

    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        BatchSearcher::radius_batch(self, queries, radius, cfg, stats)
    }

    fn as_shared(&self) -> Option<&dyn SharedIndex> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::{knn_brute_force, nn_brute_force, radius_brute_force};

    fn lcg_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 20.0 - 10.0
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn empty_index_answers_empty() {
        let idx = DynamicMapIndex::new();
        assert!(idx.nn_query(Vec3::ZERO).is_none());
        assert!(idx.knn_query(Vec3::ZERO, 3).is_empty());
        assert!(idx.radius_query(Vec3::ZERO, 1.0).is_empty());
        assert_eq!(idx.fresh_len(), 0);
        assert_eq!(idx.settled_len(), 0);
    }

    #[test]
    fn inserts_answer_before_any_rebuild() {
        let pts = lcg_points(100, 1);
        let mut idx = DynamicMapIndex::with_fresh_capacity(1000);
        for &p in &pts {
            idx.insert(p);
        }
        assert_eq!(idx.rebuilds(), 0);
        assert_eq!(idx.fresh_len(), 100);
        for &q in &lcg_points(30, 2) {
            assert_eq!(idx.nn_query(q), nn_brute_force(&pts, q));
            assert_eq!(idx.knn_query(q, 5), knn_brute_force(&pts, q, 5));
            assert_eq!(idx.radius_query(q, 4.0), radius_brute_force(&pts, q, 4.0));
        }
    }

    #[test]
    fn rebuild_triggers_at_capacity_and_preserves_answers() {
        let pts = lcg_points(700, 3);
        let mut idx = DynamicMapIndex::with_fresh_capacity(64);
        for &p in &pts {
            idx.insert(p);
        }
        assert!(idx.rebuilds() >= 10, "{} rebuilds", idx.rebuilds());
        assert!(idx.fresh_len() < 64);
        for &q in &lcg_points(50, 4) {
            assert_eq!(idx.nn_query(q), nn_brute_force(&pts, q));
            assert_eq!(idx.knn_query(q, 9), knn_brute_force(&pts, q, 9));
            assert_eq!(idx.radius_query(q, 3.0), radius_brute_force(&pts, q, 3.0));
        }
    }

    #[test]
    fn batch_extend_rebuilds_once() {
        let pts = lcg_points(500, 5);
        let mut idx = DynamicMapIndex::with_fresh_capacity(64);
        idx.extend(&pts);
        assert_eq!(idx.rebuilds(), 1);
        assert_eq!(idx.fresh_len(), 0);
        assert_eq!(idx.settled_len(), 500);
    }

    #[test]
    fn indices_are_stable_across_rebuilds() {
        let pts = lcg_points(300, 6);
        let mut idx = DynamicMapIndex::with_fresh_capacity(32);
        for (i, &p) in pts.iter().enumerate() {
            idx.insert(p);
            let n = idx.nn_query(p).unwrap();
            assert_eq!(n.index, i, "a just-inserted point is its own NN");
            assert_eq!(n.distance_squared, 0.0);
        }
        assert_eq!(idx.all_points(), &pts[..]);
    }

    #[test]
    fn metering_counts_one_query_per_query() {
        let mut idx = DynamicMapIndex::with_fresh_capacity(16);
        idx.extend(&lcg_points(100, 7));
        idx.insert(Vec3::ZERO); // one fresh point
        let mut stats = SearchStats::new();
        idx.nn_query_with_stats(Vec3::new(1.0, 2.0, 3.0), &mut stats);
        idx.knn_query_with_stats(Vec3::new(1.0, 2.0, 3.0), 4, &mut stats);
        idx.radius_query_with_stats(Vec3::new(1.0, 2.0, 3.0), 2.0, &mut stats);
        assert_eq!(stats.queries, 3);
        // Each query bills its one fresh point on top of whatever leaf
        // buckets the settled tree scanned.
        assert!(stats.leaf_points_scanned >= 3, "scanned {}", stats.leaf_points_scanned);
        assert!(stats.leaves_scanned > 0, "settled tree scans SoA leaf buckets");
        assert!(stats.tree_nodes_visited > 0);
    }

    #[test]
    fn shared_batches_match_serial_queries_bitwise() {
        // The &self batch path (what Arc-shared snapshots use) must answer
        // and meter exactly like serial queries, at any thread count.
        let mut idx = DynamicMapIndex::with_fresh_capacity(32);
        idx.extend(&lcg_points(300, 11));
        idx.insert(Vec3::new(0.1, 0.2, 0.3)); // leave a fresh point in play
        let queries = lcg_points(64, 12);
        for cfg in [BatchConfig::serial(), BatchConfig::with_threads(4)] {
            let mut serial_stats = SearchStats::new();
            let nn_serial: Vec<_> =
                queries.iter().map(|&q| idx.nn_query_with_stats(q, &mut serial_stats)).collect();
            let knn_serial: Vec<_> = queries
                .iter()
                .map(|&q| idx.knn_query_with_stats(q, 5, &mut serial_stats))
                .collect();
            let radius_serial: Vec<_> = queries
                .iter()
                .map(|&q| idx.radius_query_with_stats(q, 3.0, &mut serial_stats))
                .collect();

            let mut batch_stats = SearchStats::new();
            assert_eq!(idx.nn_batch_shared(&queries, &cfg, &mut batch_stats), nn_serial);
            assert_eq!(idx.knn_batch_shared(&queries, 5, &cfg, &mut batch_stats), knn_serial);
            assert_eq!(
                idx.radius_batch_shared(&queries, 3.0, &cfg, &mut batch_stats),
                radius_serial
            );
            assert_eq!(batch_stats, serial_stats, "stats must merge losslessly");
        }
    }

    #[test]
    fn memory_bytes_tracks_insertions_across_rebuilds() {
        let mut idx = DynamicMapIndex::with_fresh_capacity(64);
        assert_eq!(idx.memory_bytes(), 0);
        let mut at_prev_milestone = 0;
        for (i, p) in lcg_points(1000, 9).into_iter().enumerate() {
            idx.insert(p);
            // Live data is always charged, whether a point currently sits
            // in the fresh buffer or the settled tree.
            assert!(idx.memory_bytes() >= (i + 1) * std::mem::size_of::<Vec3>());
            if (i + 1) % 250 == 0 {
                let now = idx.memory_bytes();
                assert!(now > at_prev_milestone, "{now} at {} points", i + 1);
                at_prev_milestone = now;
            }
        }
        // A rebuild folds the fresh buffer into the tree; the settled tree
        // (two point copies + ids) still dominates the accounting.
        idx.rebuild();
        assert!(idx.memory_bytes() >= idx.tree.memory_bytes());
    }

    #[test]
    fn trait_construction_is_fully_settled() {
        let pts = lcg_points(200, 8);
        let idx = <DynamicMapIndex as SearchIndex>::from_points(&pts);
        assert_eq!(idx.settled_len(), 200);
        assert_eq!(idx.fresh_len(), 0);
        assert_eq!(SearchIndex::name(&idx), "dynamic");
        assert_eq!(SearchIndex::points(&idx), &pts[..]);
        let size = SearchIndex::size(&idx);
        assert_eq!(size.points, 200);
        // Fully settled: the reported leaf sets are exactly the tree's
        // buckets, with no extra set for an (empty) fresh buffer.
        assert_eq!(size.leaf_sets, KdTree::build(&pts).leaf_count());
        assert!(size.interior_nodes > 0);
    }
}

//! Approximate KD-tree search — Algorithm 1 of the paper (Sec. 4.3).
//!
//! Queries delivered to the same top-tree leaf are spatially close, so
//! their results are similar. Each leaf keeps a *leader* book: the first
//! queries to arrive (up to the Leader Buffer capacity, farther than `thd`
//! from every existing leader) run the full, exact search and record their
//! results; a later query landing within `thd` of a leader becomes a
//! *follower* — its entire search is served by brute-forcing the leader's
//! recorded result set, skipping both the exhaustive leaf scan *and* all
//! backtracking.
//!
//! The paper's cost model: a follower compares against `L + R` points
//! (leaders plus the chosen leader's results) instead of the leaf's `N`
//! children, with `L + R ≪ N`.
//!
//! Once a leaf's leader book is full, later non-follower queries take the
//! precise path without being recorded — which, as the paper notes, only
//! *improves* accuracy.
//!
//! The precise path is the exact two-stage search, so it inherits the
//! [`crate::soa`] leaf banking and [`crate::simd`] kernels for free: a
//! leader's recorded result set is produced by the same SoA scans as any
//! other exact query. Follower replays stay scalar — they touch only the
//! handful of leader-result points (`L + R ≪ N`), far below the width
//! where banked kernels pay off.

use crate::{Neighbor, SearchStats, TwoStageKdTree};
use tigris_geom::Vec3;

/// Configuration of the approximate search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxConfig {
    /// Distance threshold `thd` for NN queries (meters). The paper uses
    /// 1.2 m on KITTI.
    pub nn_threshold: f64,
    /// Threshold for radius queries, as a fraction of the search radius.
    /// The paper uses 40% of the original radius.
    pub radius_threshold_frac: f64,
    /// Leader Buffer capacity per leaf (paper: 16).
    pub leader_cap: usize,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig { nn_threshold: 1.2, radius_threshold_frac: 0.4, leader_cap: 16 }
    }
}

/// A recorded leader: its query point and its complete search results.
#[derive(Debug, Clone)]
pub(crate) struct Leader {
    query: Vec3,
    /// Point indices of the leader's full (multi-leaf) search result.
    results: Vec<u32>,
}

/// Finds the closest leader to `q` in `leaders`, counting the distance
/// checks; returns `(index, distance)`.
fn closest_leader(leaders: &[Leader], q: Vec3, stats: &mut SearchStats) -> Option<(usize, f64)> {
    stats.leader_checks += leaders.len() as u64;
    leaders
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            q.distance_squared(a.query).partial_cmp(&q.distance_squared(b.query)).unwrap()
        })
        .map(|(i, l)| (i, q.distance(l.query)))
}

/// The NN kernel of Algorithm 1 against a *single leaf's* leader book.
///
/// All approximate-search state is per-leaf, so this kernel — shared by
/// the serial [`ApproxSearcher`] entry points and the leaf-grouped batched
/// execution in [`crate::batch`] — is the unit whose sequencing must be
/// preserved for batched results to be bit-identical to serial ones.
pub(crate) fn nn_in_book(
    tree: &TwoStageKdTree,
    cfg: &ApproxConfig,
    book: &mut Vec<Leader>,
    query: Vec3,
    stats: &mut SearchStats,
) -> Option<Neighbor> {
    // Follower path: inherit the closest leader's result.
    stats.queries += 1;
    if let Some((li, dist)) = closest_leader(book, query, stats) {
        if dist < cfg.nn_threshold {
            let leader = &book[li];
            stats.follower_hits += 1;
            stats.leader_result_points_scanned += leader.results.len() as u64;
            let mut best = Neighbor::new(usize::MAX, f64::INFINITY);
            for &i in &leader.results {
                let d2 = query.distance_squared(tree.points()[i as usize]);
                if d2 < best.distance_squared {
                    best = Neighbor::new(i as usize, d2);
                }
            }
            return (best.index != usize::MAX).then_some(best);
        }
    }
    // Precise path: the stats from the full search below also bump
    // `queries`; compensate so each logical query counts once.
    stats.queries -= 1;

    let result = tree.nn_with_stats(query, stats);
    if let Some(best) = result {
        if book.len() < cfg.leader_cap {
            stats.leader_promotions += 1;
            book.push(Leader { query, results: vec![best.index as u32] });
        }
    }
    result
}

/// The radius kernel of Algorithm 1 against a single leaf's leader book;
/// see [`nn_in_book`].
pub(crate) fn radius_in_book(
    tree: &TwoStageKdTree,
    cfg: &ApproxConfig,
    book: &mut Vec<Leader>,
    query: Vec3,
    radius: f64,
    stats: &mut SearchStats,
) -> Vec<Neighbor> {
    stats.queries += 1;
    if let Some((li, dist)) = closest_leader(book, query, stats) {
        if dist < cfg.radius_threshold_frac * radius {
            let leader = &book[li];
            stats.follower_hits += 1;
            stats.leader_result_points_scanned += leader.results.len() as u64;
            let r2 = radius * radius;
            let mut out: Vec<Neighbor> = leader
                .results
                .iter()
                .filter_map(|&i| {
                    let d2 = query.distance_squared(tree.points()[i as usize]);
                    (d2 <= r2).then(|| Neighbor::new(i as usize, d2))
                })
                .collect();
            out.sort();
            return out;
        }
    }
    stats.queries -= 1;

    let result = tree.radius_with_stats(query, radius, stats);
    if book.len() < cfg.leader_cap {
        stats.leader_promotions += 1;
        book.push(Leader { query, results: result.iter().map(|n| n.index as u32).collect() });
    }
    result
}

/// The per-leaf leader books of Algorithm 1, decoupled from tree
/// ownership so both the borrowing [`ApproxSearcher`] and the owning
/// [`ApproxIndex`] share one implementation (and the leaf-grouped batched
/// execution in [`crate::batch`] can split the books across workers).
#[derive(Debug, Clone)]
pub(crate) struct LeaderBooks {
    pub(crate) cfg: ApproxConfig,
    pub(crate) nn: Vec<Vec<Leader>>,
    pub(crate) radius: Vec<Vec<Leader>>,
}

impl LeaderBooks {
    pub(crate) fn new(cfg: ApproxConfig, n_leaves: usize) -> Self {
        LeaderBooks { cfg, nn: vec![Vec::new(); n_leaves], radius: vec![Vec::new(); n_leaves] }
    }

    fn reset(&mut self) {
        for l in &mut self.nn {
            l.clear();
        }
        for l in &mut self.radius {
            l.clear();
        }
    }

    fn leader_count(&self) -> usize {
        self.nn.iter().map(Vec::len).sum::<usize>()
            + self.radius.iter().map(Vec::len).sum::<usize>()
    }

    fn nn_with_stats(
        &mut self,
        tree: &TwoStageKdTree,
        query: Vec3,
        stats: &mut SearchStats,
    ) -> Option<Neighbor> {
        if tree.is_empty() {
            return None;
        }
        match tree.primary_leaf(query) {
            Some(leaf) => nn_in_book(tree, &self.cfg, &mut self.nn[leaf], query, stats),
            // Dead-end descent: no book to consult or extend; exact search.
            None => tree.nn_with_stats(query, stats),
        }
    }

    fn radius_with_stats(
        &mut self,
        tree: &TwoStageKdTree,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        assert!(radius >= 0.0, "radius must be non-negative");
        if tree.is_empty() {
            return Vec::new();
        }
        match tree.primary_leaf(query) {
            Some(leaf) => {
                radius_in_book(tree, &self.cfg, &mut self.radius[leaf], query, radius, stats)
            }
            None => tree.radius_with_stats(query, radius, stats),
        }
    }
}

/// Stateful approximate searcher over a *borrowed* [`TwoStageKdTree`].
///
/// Leaders accumulate per leaf as queries stream through, mirroring the
/// accelerator's per-leaf Leader Buffers; they persist across calls (e.g.
/// across ICP iterations) until [`ApproxSearcher::reset`] clears them
/// (between frames).
///
/// NN and radius queries maintain *separate* leader books: their result
/// sets are not interchangeable.
///
/// When the tree and the books should live together as one unit — e.g.
/// behind the [`crate::index::SearchIndex`] trait object the pipeline's
/// searcher holds — use the owning [`ApproxIndex`] instead.
///
/// # Example
///
/// ```
/// use tigris_core::{ApproxConfig, ApproxSearcher, TwoStageKdTree};
/// use tigris_geom::Vec3;
///
/// let pts: Vec<Vec3> = (0..256)
///     .map(|i| Vec3::new((i % 16) as f64, (i / 16) as f64, 0.0))
///     .collect();
/// let tree = TwoStageKdTree::build(&pts, 4);
/// let mut searcher = ApproxSearcher::new(&tree, ApproxConfig::default());
/// let exact = tree.nn(Vec3::new(3.2, 8.1, 0.0)).unwrap();
/// let approx = searcher.nn(Vec3::new(3.2, 8.1, 0.0)).unwrap();
/// // The first query to a leaf is always a leader, hence exact.
/// assert_eq!(exact.index, approx.index);
/// ```
#[derive(Debug)]
pub struct ApproxSearcher<'t> {
    tree: &'t TwoStageKdTree,
    books: LeaderBooks,
}

impl<'t> ApproxSearcher<'t> {
    /// Creates a searcher with empty leader books.
    pub fn new(tree: &'t TwoStageKdTree, cfg: ApproxConfig) -> Self {
        ApproxSearcher { tree, books: LeaderBooks::new(cfg, tree.leaves().len()) }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ApproxConfig {
        &self.books.cfg
    }

    /// Clears all leader books (call between frames).
    pub fn reset(&mut self) {
        self.books.reset();
    }

    /// Total leaders currently recorded across all leaves (both books).
    pub fn leader_count(&self) -> usize {
        self.books.leader_count()
    }

    /// The indexed two-stage tree.
    pub fn tree(&self) -> &'t TwoStageKdTree {
        self.tree
    }

    /// Splits the searcher into the shared tree and the mutable leader
    /// books, for the leaf-grouped batched execution in [`crate::batch`].
    pub(crate) fn leaf_parts(&mut self) -> (&'t TwoStageKdTree, &mut LeaderBooks) {
        (self.tree, &mut self.books)
    }

    /// Approximate nearest-neighbor search.
    pub fn nn(&mut self, query: Vec3) -> Option<Neighbor> {
        let mut stats = SearchStats::new();
        self.nn_with_stats(query, &mut stats)
    }

    /// Approximate NN with visit accounting.
    pub fn nn_with_stats(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.books.nn_with_stats(self.tree, query, stats)
    }

    /// Approximate radius search. Results are sorted ascending by distance.
    ///
    /// Followers filter their leader's results by their own radius, so
    /// returned points are always genuinely within `radius`; the
    /// approximation can only *miss* points (the crescent outside the
    /// leader's ball).
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius(&mut self, query: Vec3, radius: f64) -> Vec<Neighbor> {
        let mut stats = SearchStats::new();
        self.radius_with_stats(query, radius, &mut stats)
    }

    /// Approximate radius search with visit accounting.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius_with_stats(
        &mut self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        self.books.radius_with_stats(self.tree, query, radius, stats)
    }
}

/// Owning approximate-search backend: a [`TwoStageKdTree`] and its leader
/// books absorbed into one self-contained unit.
///
/// [`ApproxSearcher`] borrows its tree, which forces any holder that owns
/// both to become self-referential (the pipeline's searcher once pinned
/// the tree behind a `Box` and transmuted the borrow to `'static`).
/// `ApproxIndex` removes that problem: it owns the tree, and the
/// Algorithm-1 kernels take the tree and the books as disjoint fields —
/// no unsafe, no lifetime laundering. This is the type behind the
/// `"two-stage-approx"` entry of the backend registry.
///
/// # Example
///
/// ```
/// use tigris_core::index::SearchIndex;
/// use tigris_core::{ApproxConfig, ApproxIndex, SearchStats};
/// use tigris_geom::Vec3;
///
/// let pts: Vec<Vec3> = (0..256)
///     .map(|i| Vec3::new((i % 16) as f64, (i / 16) as f64, 0.0))
///     .collect();
/// let mut index = ApproxIndex::build(&pts, 4, ApproxConfig::default());
/// let mut stats = SearchStats::new();
/// // First query to a leaf is a leader — exact by construction.
/// let n = index.nn(Vec3::new(3.2, 8.1, 0.0), &mut stats).unwrap();
/// assert_eq!(pts[n.index], Vec3::new(3.0, 8.0, 0.0));
/// index.reset(); // clear leader books between frames
/// ```
#[derive(Debug)]
pub struct ApproxIndex {
    tree: TwoStageKdTree,
    books: LeaderBooks,
}

impl ApproxIndex {
    /// Builds a two-stage tree of the given top height over `points` and
    /// wraps it with empty leader books.
    pub fn build(points: &[Vec3], top_height: usize, cfg: ApproxConfig) -> Self {
        ApproxIndex::from_tree(TwoStageKdTree::build(points, top_height), cfg)
    }

    /// Wraps an already-built tree, taking ownership.
    pub fn from_tree(tree: TwoStageKdTree, cfg: ApproxConfig) -> Self {
        let books = LeaderBooks::new(cfg, tree.leaves().len());
        ApproxIndex { tree, books }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ApproxConfig {
        &self.books.cfg
    }

    /// The owned two-stage tree.
    pub fn tree(&self) -> &TwoStageKdTree {
        &self.tree
    }

    /// Clears all leader books (call between frames).
    pub fn reset(&mut self) {
        self.books.reset();
    }

    /// Total leaders currently recorded across all leaves (both books).
    pub fn leader_count(&self) -> usize {
        self.books.leader_count()
    }

    /// Splits the index into the shared tree and the mutable leader
    /// books, for the leaf-grouped batched execution in [`crate::batch`].
    pub(crate) fn leaf_parts(&mut self) -> (&TwoStageKdTree, &mut LeaderBooks) {
        (&self.tree, &mut self.books)
    }

    /// Approximate NN with visit accounting; see [`ApproxSearcher::nn`].
    pub fn nn_with_stats(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.books.nn_with_stats(&self.tree, query, stats)
    }

    /// Approximate radius search with visit accounting; see
    /// [`ApproxSearcher::radius`]. Results are sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius_with_stats(
        &mut self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        self.books.radius_with_stats(&self.tree, query, radius, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 20.0 - 10.0
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn first_query_per_leaf_is_exact() {
        let pts = lcg_cloud(1000, 1);
        let tree = TwoStageKdTree::build(&pts, 4);
        let mut s = ApproxSearcher::new(&tree, ApproxConfig::default());
        let q = Vec3::new(0.0, 0.0, 0.0);
        let exact = tree.nn(q).unwrap();
        let approx = s.nn(q).unwrap();
        assert_eq!(exact.index, approx.index);
    }

    #[test]
    fn followers_reduce_work() {
        let pts = lcg_cloud(8000, 2);
        let tree = TwoStageKdTree::build(&pts, 4);
        let mut s =
            ApproxSearcher::new(&tree, ApproxConfig { nn_threshold: 5.0, ..Default::default() });
        // A tight cluster of queries: after the first, the rest follow.
        let queries: Vec<Vec3> =
            (0..50).map(|i| Vec3::new(1.0 + 0.01 * i as f64, 2.0, 3.0)).collect();

        let mut approx_stats = SearchStats::new();
        for &q in &queries {
            s.nn_with_stats(q, &mut approx_stats);
        }
        let mut exact_stats = SearchStats::new();
        for &q in &queries {
            tree.nn_with_stats(q, &mut exact_stats);
        }
        assert!(approx_stats.follower_hits > 0, "no followers at all");
        assert!(
            approx_stats.total_nodes_visited() < exact_stats.total_nodes_visited() / 4,
            "approx {} should be far below exact {}",
            approx_stats.total_nodes_visited(),
            exact_stats.total_nodes_visited()
        );
        assert_eq!(approx_stats.queries, 50);
    }

    #[test]
    fn follower_error_is_bounded_by_threshold_geometry() {
        // Triangle inequality: the follower inherits its leader's NN, which
        // is at most d(f, leader) + d(leader, leader's NN) away, so the
        // reported distance exceeds the true NN distance by at most 2·thd.
        let pts = lcg_cloud(5000, 3);
        let tree = TwoStageKdTree::build(&pts, 5);
        let thd = 1.2;
        let mut s =
            ApproxSearcher::new(&tree, ApproxConfig { nn_threshold: thd, ..Default::default() });
        for q in lcg_cloud(300, 4) {
            let approx = s.nn(q).unwrap();
            let exact = tree.nn(q).unwrap();
            assert!(
                approx.distance() <= exact.distance() + 2.0 * thd + 1e-9,
                "approx {} exact {}",
                approx.distance(),
                exact.distance()
            );
        }
    }

    #[test]
    fn radius_followers_return_sound_sorted_results() {
        let pts = lcg_cloud(4000, 7);
        let tree = TwoStageKdTree::build(&pts, 4);
        let r = 2.0;
        let mut s = ApproxSearcher::new(&tree, ApproxConfig::default());
        for q in lcg_cloud(100, 8) {
            let res = s.radius(q, r);
            for n in &res {
                assert!(n.distance_squared <= r * r + 1e-12);
            }
            for w in res.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn radius_followers_keep_high_recall() {
        // A follower at distance ≤ thd = 0.4 r from its leader inherits the
        // leader's r-ball, which covers most of its own.
        let pts = lcg_cloud(4000, 9);
        let tree = TwoStageKdTree::build(&pts, 4);
        let r = 2.0;
        let mut s = ApproxSearcher::new(&tree, ApproxConfig::default());
        let mut total_exact = 0usize;
        let mut total_approx = 0usize;
        for q in lcg_cloud(200, 10) {
            total_exact += tree.radius(q, r).len();
            total_approx += s.radius(q, r).len();
        }
        let recall = total_approx as f64 / total_exact.max(1) as f64;
        assert!(recall > 0.6, "recall = {recall}");
        assert!(recall <= 1.0 + 1e-12);
    }

    #[test]
    fn leader_cap_is_respected() {
        let pts = lcg_cloud(2000, 11);
        let tree = TwoStageKdTree::build(&pts, 1); // 2 leaves → heavy reuse
        let cap = 4;
        let mut s = ApproxSearcher::new(
            &tree,
            ApproxConfig { leader_cap: cap, nn_threshold: 1e-9, ..Default::default() },
        );
        // Tiny threshold: every query wants to become a leader.
        for q in lcg_cloud(100, 12) {
            s.nn(q);
        }
        assert!(s.leader_count() <= cap * tree.leaves().len());
    }

    #[test]
    fn reset_clears_leaders() {
        let pts = lcg_cloud(500, 13);
        let tree = TwoStageKdTree::build(&pts, 2);
        let mut s = ApproxSearcher::new(&tree, ApproxConfig::default());
        for q in lcg_cloud(20, 14) {
            s.nn(q);
        }
        assert!(s.leader_count() > 0);
        s.reset();
        assert_eq!(s.leader_count(), 0);
    }

    #[test]
    fn zero_threshold_never_follows() {
        let pts = lcg_cloud(1000, 15);
        let tree = TwoStageKdTree::build(&pts, 3);
        let mut s = ApproxSearcher::new(
            &tree,
            ApproxConfig { nn_threshold: 0.0, radius_threshold_frac: 0.0, ..Default::default() },
        );
        let mut stats = SearchStats::new();
        for q in lcg_cloud(50, 16) {
            let approx = s.nn_with_stats(q, &mut stats).unwrap();
            let exact = tree.nn(q).unwrap();
            assert_eq!(approx.index, exact.index, "thd=0 must stay exact");
        }
        assert_eq!(stats.follower_hits, 0);
    }

    #[test]
    fn empty_tree() {
        let tree = TwoStageKdTree::build(&[], 3);
        let mut s = ApproxSearcher::new(&tree, ApproxConfig::default());
        assert!(s.nn(Vec3::ZERO).is_none());
        assert!(s.radius(Vec3::ZERO, 1.0).is_empty());
    }

    #[test]
    fn nn_and_radius_books_are_independent() {
        let pts = lcg_cloud(1000, 17);
        let tree = TwoStageKdTree::build(&pts, 2);
        let mut s = ApproxSearcher::new(&tree, ApproxConfig::default());
        let before = s.leader_count();
        s.nn(Vec3::ZERO);
        let after_nn = s.leader_count();
        s.radius(Vec3::ZERO, 1.0);
        let after_radius = s.leader_count();
        assert!(after_nn > before);
        assert!(after_radius > after_nn, "radius query must add its own leaders");
    }

    #[test]
    fn repeated_iterations_go_full_follower() {
        // The RPCE pattern: the same query set re-issued across ICP
        // iterations. Iteration 1 builds leaders; iterations 2+ follow.
        let pts = lcg_cloud(4000, 19);
        let tree = TwoStageKdTree::build(&pts, 4);
        let mut s = ApproxSearcher::new(&tree, ApproxConfig::default());
        let queries = lcg_cloud(64, 20);
        let mut stats = SearchStats::new();
        for &q in &queries {
            s.nn_with_stats(q, &mut stats);
        }
        let first_pass_followers = stats.follower_hits;
        for &q in &queries {
            // Slightly moved, well within thd.
            s.nn_with_stats(q + Vec3::new(0.01, 0.0, 0.0), &mut stats);
        }
        let second_pass_followers = stats.follower_hits - first_pass_followers;
        assert!(
            second_pass_followers as usize > queries.len() * 8 / 10,
            "second pass should be ≥80% followers, got {second_pass_followers}/{}",
            queries.len()
        );
    }
}

//! Brute-force reference searches.
//!
//! These are both the correctness oracle for every tree search in the test
//! suite and the primitive the two-stage KD-tree applies inside a leaf's
//! unordered set (paper Sec. 4.1: "the two-stage KD-tree enables exhaustive
//! searches in certain sub-trees").

use crate::soa::PointSoA;
use crate::{simd, Neighbor, SearchStats};
use tigris_geom::Vec3;

/// Exhaustive nearest-neighbor search over `points`, or `None` when empty.
///
/// Ties are broken toward the smaller index, matching the tree searches.
///
/// # Example
///
/// ```
/// use tigris_core::nn_brute_force;
/// use tigris_geom::Vec3;
/// let pts = [Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0)];
/// let n = nn_brute_force(&pts, Vec3::new(0.4, 0.0, 0.0)).unwrap();
/// assert_eq!(n.index, 0);
/// ```
pub fn nn_brute_force(points: &[Vec3], query: Vec3) -> Option<Neighbor> {
    let mut best: Option<Neighbor> = None;
    for (i, &p) in points.iter().enumerate() {
        let d2 = query.distance_squared(p);
        match best {
            Some(b) if d2 >= b.distance_squared => {}
            _ => best = Some(Neighbor::new(i, d2)),
        }
    }
    best
}

/// Exhaustive radius search: all points with distance ≤ `radius` from
/// `query`, sorted ascending by distance (ties by index).
///
/// # Panics
///
/// Panics when `radius` is negative.
pub fn radius_brute_force(points: &[Vec3], query: Vec3, radius: f64) -> Vec<Neighbor> {
    assert!(radius >= 0.0, "radius must be non-negative");
    let r2 = radius * radius;
    let mut out: Vec<Neighbor> = points
        .iter()
        .enumerate()
        .filter_map(|(i, &p)| {
            let d2 = query.distance_squared(p);
            (d2 <= r2).then(|| Neighbor::new(i, d2))
        })
        .collect();
    out.sort();
    out
}

/// [`nn_brute_force`] with visit accounting: the whole point set is an
/// exhaustive scan, so every point counts toward
/// [`SearchStats::leaf_points_scanned`].
pub fn nn_brute_force_with_stats(
    points: &[Vec3],
    query: Vec3,
    stats: &mut SearchStats,
) -> Option<Neighbor> {
    stats.queries += 1;
    stats.leaf_points_scanned += points.len() as u64;
    nn_brute_force(points, query)
}

/// [`radius_brute_force`] with visit accounting; see
/// [`nn_brute_force_with_stats`].
///
/// # Panics
///
/// Panics when `radius` is negative.
pub fn radius_brute_force_with_stats(
    points: &[Vec3],
    query: Vec3,
    radius: f64,
    stats: &mut SearchStats,
) -> Vec<Neighbor> {
    stats.queries += 1;
    stats.leaf_points_scanned += points.len() as u64;
    radius_brute_force(points, query, radius)
}

/// [`knn_brute_force`] with visit accounting; see
/// [`nn_brute_force_with_stats`].
pub fn knn_brute_force_with_stats(
    points: &[Vec3],
    query: Vec3,
    k: usize,
    stats: &mut SearchStats,
) -> Vec<Neighbor> {
    stats.queries += 1;
    stats.leaf_points_scanned += points.len() as u64;
    knn_brute_force(points, query, k)
}

/// An owning brute-force backend: the exhaustive-scan oracle as a
/// selectable index structure.
///
/// Brute force is the ground truth every tree search is validated
/// against; wrapping the point set in an owned type lets it plug into the
/// [`crate::index::SearchIndex`] seam (and hence the full registration
/// pipeline) like any other backend — the `"brute-force"` entry of the
/// backend registry.
///
/// Unlike the free functions above (which stay the plain scalar
/// reference), the owned index mirrors its points into a [`PointSoA`] and
/// serves queries through the [`crate::simd`] kernels — bit-identical
/// results, one full-width exhaustive scan per query.
///
/// # Example
///
/// ```
/// use tigris_core::index::SearchIndex;
/// use tigris_core::{BruteForceIndex, SearchStats};
/// use tigris_geom::Vec3;
///
/// let pts: Vec<Vec3> = (0..10).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
/// let mut index = BruteForceIndex::new(pts);
/// let mut stats = SearchStats::new();
/// let n = index.nn(Vec3::new(3.4, 0.0, 0.0), &mut stats).unwrap();
/// assert_eq!(n.index, 3);
/// assert_eq!(stats.leaf_points_scanned, 10); // every point scanned
/// ```
#[derive(Debug, Clone, Default)]
pub struct BruteForceIndex {
    points: Vec<Vec3>,
    soa: PointSoA,
    ids: Vec<u32>,
}

impl BruteForceIndex {
    /// Wraps a point set, taking ownership and building the SoA mirror.
    pub fn new(points: Vec<Vec3>) -> Self {
        let soa = PointSoA::from_points(&points);
        let ids = (0..points.len() as u32).collect();
        BruteForceIndex { points, soa, ids }
    }

    /// The indexed points.
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Nearest neighbor by one full-width kernel scan, with visit
    /// accounting. Bit-identical to [`nn_brute_force`].
    pub fn nn_with_stats(&self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        stats.queries += 1;
        stats.leaf_points_scanned += self.points.len() as u64;
        simd::nn_reduce(query, self.soa.view(), &self.ids)
            .map(|(d2, id)| Neighbor::new(id as usize, d2))
    }

    /// Exhaustive k-NN via the distance kernel, with visit accounting.
    /// Bit-identical to [`knn_brute_force`].
    pub fn knn_with_stats(&self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        stats.queries += 1;
        stats.leaf_points_scanned += self.points.len() as u64;
        let mut d2s = vec![0.0_f64; self.points.len()];
        simd::squared_distances(query, self.soa.view(), &mut d2s);
        let mut all: Vec<Neighbor> =
            d2s.iter().enumerate().map(|(i, &d2)| Neighbor::new(i, d2)).collect();
        all.sort();
        all.truncate(k);
        all
    }

    /// Exhaustive radius search via the masked-compare kernel, with visit
    /// accounting. Bit-identical to [`radius_brute_force`].
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius_with_stats(
        &self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        assert!(radius >= 0.0, "radius must be non-negative");
        stats.queries += 1;
        stats.leaf_points_scanned += self.points.len() as u64;
        let mut out = Vec::new();
        simd::radius_collect(query, self.soa.view(), &self.ids, radius * radius, &mut out);
        out.sort();
        out
    }
}

/// Exhaustive k-nearest-neighbors, sorted ascending by distance.
///
/// Returns fewer than `k` results when `points` has fewer than `k` entries.
pub fn knn_brute_force(points: &[Vec3], query: Vec3, k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| Neighbor::new(i, query.distance_squared(p)))
        .collect();
    all.sort();
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Vec3> {
        (0..27).map(|i| Vec3::new((i % 3) as f64, ((i / 3) % 3) as f64, (i / 9) as f64)).collect()
    }

    #[test]
    fn nn_finds_closest() {
        let pts = grid();
        let n = nn_brute_force(&pts, Vec3::new(1.1, 0.9, 0.1)).unwrap();
        assert_eq!(pts[n.index], Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn nn_empty_is_none() {
        assert!(nn_brute_force(&[], Vec3::ZERO).is_none());
    }

    #[test]
    fn nn_tie_breaks_to_lower_index() {
        let pts = [Vec3::X, Vec3::X];
        assert_eq!(nn_brute_force(&pts, Vec3::ZERO).unwrap().index, 0);
    }

    #[test]
    fn radius_is_sound_and_complete() {
        let pts = grid();
        let r = 1.25;
        let res = radius_brute_force(&pts, Vec3::ZERO, r);
        // Sound: all results within radius.
        for n in &res {
            assert!(n.distance_squared <= r * r);
        }
        // Complete: 4 points within 1.25 of origin: (0,0,0),(1,0,0),(0,1,0),(0,0,1).
        assert_eq!(res.len(), 4);
        // Sorted ascending.
        for w in res.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn radius_zero_matches_exact_points() {
        let pts = grid();
        let res = radius_brute_force(&pts, Vec3::new(1.0, 1.0, 1.0), 0.0);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].distance_squared, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn radius_negative_panics() {
        radius_brute_force(&[], Vec3::ZERO, -1.0);
    }

    #[test]
    fn knn_returns_k_sorted() {
        let pts = grid();
        let res = knn_brute_force(&pts, Vec3::ZERO, 5);
        assert_eq!(res.len(), 5);
        for w in res.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(res[0].distance_squared, 0.0);
    }

    #[test]
    fn knn_with_small_set() {
        let pts = [Vec3::X];
        assert_eq!(knn_brute_force(&pts, Vec3::ZERO, 10).len(), 1);
        assert!(knn_brute_force(&[], Vec3::ZERO, 3).is_empty());
    }

    #[test]
    fn index_kernels_match_scalar_oracle_bitwise() {
        // The owned index serves through the SIMD kernels; the free
        // functions are the scalar reference. They must agree bit for bit.
        let pts = grid();
        let index = BruteForceIndex::new(pts.clone());
        let queries = [
            Vec3::ZERO,
            Vec3::new(1.1, 0.9, 0.1),
            Vec3::new(2.0, 2.0, 2.0),
            Vec3::new(-3.0, 0.5, 7.0),
        ];
        let mut stats = SearchStats::new();
        for q in queries {
            assert_eq!(index.nn_with_stats(q, &mut stats), nn_brute_force(&pts, q));
            for k in [1, 5, 30] {
                assert_eq!(index.knn_with_stats(q, k, &mut stats), knn_brute_force(&pts, q, k));
            }
            for r in [0.0, 1.25, 10.0] {
                assert_eq!(
                    index.radius_with_stats(q, r, &mut stats),
                    radius_brute_force(&pts, q, r)
                );
            }
        }
        assert_eq!(stats.leaf_points_scanned, 27 * stats.queries);
    }
}

//! A k-dimensional KD-tree for feature-space search.
//!
//! The Key-Point Correspondence Estimation stage (paper Sec. 3.1, stage 4)
//! matches key-points by nearest neighbor *in descriptor space* — ℝ³³ for
//! FPFH, ℝ³⁵² for SHOT — so the 3D tree does not apply. This tree stores
//! points of arbitrary fixed dimension in a flat array and supports NN and
//! k-NN queries with the same median-split, prune-on-hyperplane algorithm.

use crate::{Neighbor, SearchStats};

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    point: u32,
    axis: u16,
    left: u32,
    right: u32,
}

/// A KD-tree over points in ℝᵈ, stored row-major in a flat buffer.
///
/// # Example
///
/// ```
/// use tigris_core::KdTreeN;
///
/// // Four 4-dimensional descriptors.
/// let data = vec![
///     0.0, 0.0, 0.0, 0.0,
///     1.0, 0.0, 0.0, 0.0,
///     0.0, 1.0, 0.0, 1.0,
///     5.0, 5.0, 5.0, 5.0,
/// ];
/// let tree = KdTreeN::build(&data, 4);
/// let n = tree.nn(&[0.9, 0.1, 0.0, 0.0]).unwrap();
/// assert_eq!(n.index, 1);
/// ```
#[derive(Debug, Clone)]
pub struct KdTreeN {
    data: Vec<f64>,
    dim: usize,
    nodes: Vec<Node>,
    root: u32,
}

impl KdTreeN {
    /// Builds a tree over `data.len() / dim` points of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn build(data: &[f64], dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
        let n = data.len() / dim;
        let mut indices: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(n);
        let root = build_recursive(data, dim, &mut indices[..], &mut nodes);
        KdTreeN { data: data.to_vec(), dim, nodes, root }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The dimension of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns point `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Nearest neighbor of `query`, or `None` for an empty tree.
    ///
    /// # Panics
    ///
    /// Panics when `query.len() != dim`.
    pub fn nn(&self, query: &[f64]) -> Option<Neighbor> {
        let mut stats = SearchStats::new();
        self.nn_with_stats(query, &mut stats)
    }

    /// NN with visit accounting.
    ///
    /// # Panics
    ///
    /// Panics when `query.len() != dim`.
    pub fn nn_with_stats(&self, query: &[f64], stats: &mut SearchStats) -> Option<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if self.nodes.is_empty() {
            return None;
        }
        stats.queries += 1;
        let mut best = Neighbor::new(usize::MAX, f64::INFINITY);
        self.nn_recurse(self.root, query, &mut best, stats);
        (best.index != usize::MAX).then_some(best)
    }

    /// The two nearest neighbors, for Lowe-style ratio tests in
    /// correspondence rejection. Returns 0, 1 or 2 results.
    ///
    /// # Panics
    ///
    /// Panics when `query.len() != dim`.
    pub fn nn2(&self, query: &[f64]) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if self.nodes.is_empty() {
            return Vec::new();
        }
        let mut best = [Neighbor::new(usize::MAX, f64::INFINITY); 2];
        let mut stats = SearchStats::new();
        self.nn2_recurse(self.root, query, &mut best, &mut stats);
        best.iter().filter(|n| n.index != usize::MAX).copied().collect()
    }

    fn dist2(&self, i: usize, query: &[f64]) -> f64 {
        let p = self.point(i);
        p.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum()
    }

    fn nn_recurse(
        &self,
        node_idx: u32,
        query: &[f64],
        best: &mut Neighbor,
        stats: &mut SearchStats,
    ) {
        let node = self.nodes[node_idx as usize];
        stats.tree_nodes_visited += 1;
        let d2 = self.dist2(node.point as usize, query);
        if d2 < best.distance_squared
            || (d2 == best.distance_squared && (node.point as usize) < best.index)
        {
            *best = Neighbor::new(node.point as usize, d2);
        }
        let axis = node.axis as usize;
        let delta = query[axis] - self.point(node.point as usize)[axis];
        let (near, far) =
            if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        if near != NONE {
            self.nn_recurse(near, query, best, stats);
        }
        if far != NONE {
            if delta * delta <= best.distance_squared {
                self.nn_recurse(far, query, best, stats);
            } else {
                stats.subtrees_pruned += 1;
            }
        }
    }

    fn nn2_recurse(
        &self,
        node_idx: u32,
        query: &[f64],
        best: &mut [Neighbor; 2],
        stats: &mut SearchStats,
    ) {
        let node = self.nodes[node_idx as usize];
        stats.tree_nodes_visited += 1;
        let d2 = self.dist2(node.point as usize, query);
        let cand = Neighbor::new(node.point as usize, d2);
        if cand < best[0] {
            best[1] = best[0];
            best[0] = cand;
        } else if cand < best[1] {
            best[1] = cand;
        }
        let axis = node.axis as usize;
        let delta = query[axis] - self.point(node.point as usize)[axis];
        let (near, far) =
            if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        if near != NONE {
            self.nn2_recurse(near, query, best, stats);
        }
        if far != NONE {
            if delta * delta <= best[1].distance_squared {
                self.nn2_recurse(far, query, best, stats);
            } else {
                stats.subtrees_pruned += 1;
            }
        }
    }
}

fn build_recursive(data: &[f64], dim: usize, indices: &mut [u32], nodes: &mut Vec<Node>) -> u32 {
    if indices.is_empty() {
        return NONE;
    }
    // Split axis: dimension with the widest spread over this subset.
    let mut axis = 0usize;
    let mut widest = f64::NEG_INFINITY;
    for d in 0..dim {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &i in indices.iter() {
            let v = data[i as usize * dim + d];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi - lo > widest {
            widest = hi - lo;
            axis = d;
        }
    }

    let mid = indices.len() / 2;
    indices.select_nth_unstable_by(mid, |&a, &b| {
        let va = data[a as usize * dim + axis];
        let vb = data[b as usize * dim + axis];
        va.partial_cmp(&vb).unwrap().then(a.cmp(&b))
    });
    let point = indices[mid];
    let node_idx = nodes.len() as u32;
    nodes.push(Node { point, axis: axis as u16, left: NONE, right: NONE });

    let (left_slice, rest) = indices.split_at_mut(mid);
    let right_slice = &mut rest[1..];
    let left = build_recursive(data, dim, left_slice, nodes);
    let right = build_recursive(data, dim, right_slice, nodes);
    nodes[node_idx as usize].left = left;
    nodes[node_idx as usize].right = right;
    node_idx
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random descriptors.
    fn lcg_features(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..n * dim).map(|_| next()).collect()
    }

    fn brute_nn(data: &[f64], dim: usize, q: &[f64]) -> usize {
        (0..data.len() / dim)
            .min_by(|&a, &b| {
                let da: f64 = (0..dim).map(|d| (data[a * dim + d] - q[d]).powi(2)).sum();
                let db: f64 = (0..dim).map(|d| (data[b * dim + d] - q[d]).powi(2)).sum();
                da.partial_cmp(&db).unwrap()
            })
            .unwrap()
    }

    #[test]
    fn nn_matches_brute_force_in_33_dims() {
        // FPFH dimensionality.
        let dim = 33;
        let data = lcg_features(200, dim, 5);
        let tree = KdTreeN::build(&data, dim);
        let queries = lcg_features(25, dim, 99);
        for qi in 0..25 {
            let q = &queries[qi * dim..(qi + 1) * dim];
            let a = tree.nn(q).unwrap();
            let b = brute_nn(&data, dim, q);
            assert_eq!(a.index, b, "query {qi}");
        }
    }

    #[test]
    fn nn_in_low_dims() {
        let data = vec![0.0, 0.0, 3.0, 0.0, 0.0, 3.0, 3.0, 3.0];
        let tree = KdTreeN::build(&data, 2);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.nn(&[2.8, 0.1]).unwrap().index, 1);
        assert_eq!(tree.nn(&[0.1, 2.9]).unwrap().index, 2);
    }

    #[test]
    fn nn2_returns_two_closest() {
        let data = vec![0.0, 1.0, 2.0, 10.0];
        let tree = KdTreeN::build(&data, 1);
        let two = tree.nn2(&[0.4]);
        assert_eq!(two.len(), 2);
        assert_eq!(two[0].index, 0);
        assert_eq!(two[1].index, 1);
        assert!(two[0].distance_squared <= two[1].distance_squared);
    }

    #[test]
    fn nn2_on_singleton() {
        let tree = KdTreeN::build(&[1.0, 2.0], 2);
        assert_eq!(tree.nn2(&[0.0, 0.0]).len(), 1);
    }

    #[test]
    fn empty_tree() {
        let tree = KdTreeN::build(&[], 3);
        assert!(tree.is_empty());
        assert!(tree.nn(&[0.0, 0.0, 0.0]).is_none());
        assert!(tree.nn2(&[0.0, 0.0, 0.0]).is_empty());
    }

    #[test]
    fn exact_point_queries() {
        let dim = 8;
        let data = lcg_features(64, dim, 21);
        let tree = KdTreeN::build(&data, dim);
        for i in 0..64 {
            let q: Vec<f64> = tree.point(i).to_vec();
            let n = tree.nn(&q).unwrap();
            assert!(n.distance_squared < 1e-24);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn query_dim_mismatch_panics() {
        KdTreeN::build(&[0.0, 0.0], 2).nn(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn build_bad_length_panics() {
        KdTreeN::build(&[0.0, 0.0, 0.0], 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn build_zero_dim_panics() {
        KdTreeN::build(&[], 0);
    }

    #[test]
    fn pruning_happens_in_moderate_dims() {
        // In very high dimensions uniform data defeats hyperplane pruning
        // (the curse of dimensionality); at d = 4 with a dense set pruning
        // must occur.
        let dim = 4;
        let data = lcg_features(4000, dim, 77);
        let tree = KdTreeN::build(&data, dim);
        let q = vec![0.5; dim];
        let mut stats = SearchStats::new();
        tree.nn_with_stats(&q, &mut stats);
        assert!(stats.subtrees_pruned > 0);
        assert!(stats.tree_nodes_visited < 4000);
    }
}

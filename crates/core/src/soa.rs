//! Structure-of-arrays point storage — the memory layout of the query hot
//! path.
//!
//! Every search backend ultimately reduces to "compute the squared
//! distance from one query to many candidate points". With points stored
//! as an array of `Vec3` (AoS), each candidate load fetches x, y and z
//! interleaved, so a vector unit can process one point per iteration at
//! best. [`PointSoA`] stores the three coordinates in separate, contiguous
//! lanes (`xs`, `ys`, `zs`), so the kernels in [`crate::simd`] can load 4
//! or 8 candidates per lane per step and keep every cache line fully
//! utilized — the same `<x…><y…><z…>` banking the paper's accelerator
//! gives its distance datapath on-chip.
//!
//! The layout is purely an execution detail: all public results still
//! refer to indices in the original build-order point slice, and every
//! kernel is bit-identical to the scalar reference (enforced by
//! `core/tests/kernel_equivalence.rs`).

use tigris_geom::Vec3;

/// A point set stored as three coordinate lanes (structure of arrays).
///
/// # Example
///
/// ```
/// use tigris_core::soa::PointSoA;
/// use tigris_geom::Vec3;
///
/// let soa = PointSoA::from_points(&[Vec3::X, Vec3::Y]);
/// assert_eq!(soa.len(), 2);
/// assert_eq!(soa.get(1), Vec3::Y);
/// assert_eq!(soa.view().xs, &[1.0, 0.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PointSoA {
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
}

/// A borrowed view of (a contiguous range of) a [`PointSoA`]: three
/// equal-length coordinate slices, the unit the [`crate::simd`] kernels
/// consume.
#[derive(Debug, Clone, Copy)]
pub struct SoaView<'a> {
    /// X coordinates.
    pub xs: &'a [f64],
    /// Y coordinates.
    pub ys: &'a [f64],
    /// Z coordinates.
    pub zs: &'a [f64],
}

impl<'a> SoaView<'a> {
    /// Number of points in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when the view holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The point at `i`, re-assembled from its lanes.
    #[inline]
    pub fn get(&self, i: usize) -> Vec3 {
        Vec3::new(self.xs[i], self.ys[i], self.zs[i])
    }

    /// The sub-view covering `start..start + len`.
    #[inline]
    pub fn range(&self, start: usize, len: usize) -> SoaView<'a> {
        SoaView {
            xs: &self.xs[start..start + len],
            ys: &self.ys[start..start + len],
            zs: &self.zs[start..start + len],
        }
    }
}

impl PointSoA {
    /// An empty point set.
    pub fn new() -> Self {
        PointSoA::default()
    }

    /// An empty point set with room for `n` points per lane.
    pub fn with_capacity(n: usize) -> Self {
        PointSoA { xs: Vec::with_capacity(n), ys: Vec::with_capacity(n), zs: Vec::with_capacity(n) }
    }

    /// Splits a point slice into coordinate lanes.
    pub fn from_points(points: &[Vec3]) -> Self {
        let mut soa = PointSoA::with_capacity(points.len());
        for &p in points {
            soa.push(p);
        }
        soa
    }

    /// Appends one point to the lanes.
    #[inline]
    pub fn push(&mut self, p: Vec3) {
        self.xs.push(p.x);
        self.ys.push(p.y);
        self.zs.push(p.z);
    }

    /// Removes all points, keeping the lane allocations.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.zs.clear();
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The point at `i`, re-assembled from its lanes.
    #[inline]
    pub fn get(&self, i: usize) -> Vec3 {
        Vec3::new(self.xs[i], self.ys[i], self.zs[i])
    }

    /// A view of all points.
    #[inline]
    pub fn view(&self) -> SoaView<'_> {
        SoaView { xs: &self.xs, ys: &self.ys, zs: &self.zs }
    }

    /// A view of the contiguous range `start..start + len`.
    #[inline]
    pub fn range(&self, start: usize, len: usize) -> SoaView<'_> {
        self.view().range(start, len)
    }

    /// Heap bytes held by the three coordinate lanes (capacity, not
    /// length — what the allocator actually charges us for). The basis
    /// of the serving layer's residency accounting.
    pub fn memory_bytes(&self) -> usize {
        (self.xs.capacity() + self.ys.capacity() + self.zs.capacity()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_views_round_trip() {
        let pts = vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0), Vec3::X];
        let soa = PointSoA::from_points(&pts);
        assert_eq!(soa.len(), 3);
        assert!(!soa.is_empty());
        for (i, &p) in pts.iter().enumerate() {
            assert_eq!(soa.get(i), p);
            assert_eq!(soa.view().get(i), p);
        }
        let mid = soa.range(1, 2);
        assert_eq!(mid.len(), 2);
        assert_eq!(mid.get(0), pts[1]);
        assert_eq!(mid.range(1, 1).get(0), pts[2]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut soa = PointSoA::from_points(&[Vec3::X; 10]);
        soa.clear();
        assert!(soa.is_empty());
        assert_eq!(soa.len(), 0);
        soa.push(Vec3::Z);
        assert_eq!(soa.get(0), Vec3::Z);
    }

    #[test]
    fn empty_views() {
        let soa = PointSoA::new();
        assert!(soa.view().is_empty());
        assert_eq!(soa.range(0, 0).len(), 0);
    }

    #[test]
    fn memory_bytes_tracks_insertions() {
        let mut soa = PointSoA::new();
        assert_eq!(soa.memory_bytes(), 0);
        let mut last = 0;
        for i in 0..2000 {
            soa.push(Vec3::splat(i as f64));
            let now = soa.memory_bytes();
            assert!(now >= last, "accounting must be monotone under push");
            // At least the live data must be charged.
            assert!(now >= soa.len() * 3 * std::mem::size_of::<f64>());
            last = now;
        }
        // with_capacity charges up front, before any push.
        assert!(
            PointSoA::with_capacity(512).memory_bytes() >= 512 * 3 * std::mem::size_of::<f64>()
        );
    }
}

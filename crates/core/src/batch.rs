//! Parallel batched neighbor search — the software realization of the
//! query-level parallelism the paper's two-stage KD-tree exists to expose
//! (Sec. 4.1: "the two-stage tree trades redundant work for parallelism").
//!
//! The registration pipeline issues neighbor queries in large, independent
//! fan-outs: one radius query per point during normal estimation, one per
//! key-point during descriptor calculation, one NN query per source point
//! per ICP iteration. This module executes such batches across OS threads
//! while keeping every observable output — results *and* [`SearchStats`]
//! counters — bit-identical to the serial execution:
//!
//! * Stateless backends ([`KdTree`], [`TwoStageKdTree`], brute force) are
//!   `Sync`; the batch is split into contiguous spans, one per worker, and
//!   results are concatenated in span order.
//! * The stateful [`ApproxSearcher`] (Algorithm 1) keeps *per-leaf* leader
//!   books, so queries are grouped by their primary leaf and each worker
//!   owns a contiguous range of leaves. Within a leaf, queries run in
//!   arrival order — exactly the per-leaf history the serial searcher
//!   produces, and the same scheme the hardware's per-SU leader buffers
//!   implement (Sec. 5.4).
//!
//! Every worker accumulates into its own [`SearchStats`] and the
//! per-thread counters are merged losslessly afterwards, so batched
//! node-visit accounting equals the serial totals exactly.
//!
//! # Example
//!
//! ```
//! use tigris_core::batch::{BatchConfig, BatchSearcher};
//! use tigris_core::{KdTree, SearchStats};
//! use tigris_geom::Vec3;
//!
//! let pts: Vec<Vec3> = (0..2000)
//!     .map(|i| Vec3::new((i % 50) as f64, (i / 50) as f64, 0.0))
//!     .collect();
//! let queries: Vec<Vec3> = (0..500).map(|i| Vec3::new(i as f64 * 0.1, 3.3, 0.2)).collect();
//!
//! let mut tree = KdTree::build(&pts);
//! let cfg = BatchConfig { threads: 4, min_chunk: 16 };
//! let mut stats = SearchStats::new();
//! let batched = tree.nn_batch(&queries, &cfg, &mut stats);
//!
//! // Identical to the serial answers, with all queries accounted.
//! assert_eq!(batched.len(), queries.len());
//! assert_eq!(stats.queries, queries.len() as u64);
//! assert_eq!(batched[7].unwrap().index, tree.nn(queries[7]).unwrap().index);
//! ```

use crate::approx::{nn_in_book, radius_in_book, Leader, LeaderBooks};
use crate::{
    ApproxConfig, ApproxIndex, ApproxSearcher, KdTree, Neighbor, SearchStats, TwoStageKdTree,
};
use tigris_geom::Vec3;

/// Parallelism knobs for batched query execution.
///
/// The defaults are deliberately serial (`threads == 1`): callers opt in
/// to parallelism explicitly, and every higher layer
/// (`tigris-pipeline`'s `RegistrationConfig`) threads this through as a
/// sweepable design knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Worker threads for batched queries. `0` means one per available
    /// hardware thread; `1` runs inline on the calling thread.
    pub threads: usize,
    /// Minimum queries per worker. Batches smaller than
    /// `threads × min_chunk` use fewer workers, so tiny batches never pay
    /// thread-spawn overhead for nothing.
    pub min_chunk: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::serial()
    }
}

impl BatchConfig {
    /// Inline execution on the calling thread (the default).
    pub fn serial() -> Self {
        BatchConfig { threads: 1, min_chunk: 256 }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        BatchConfig { threads: 0, min_chunk: 256 }
    }

    /// Exactly `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        BatchConfig { threads, min_chunk: 256 }
    }

    /// The worker count this config resolves to for a batch of `items`.
    pub fn resolve_threads(&self, items: usize) -> usize {
        if items == 0 {
            return 1;
        }
        let hw = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        };
        hw.min(items.div_ceil(self.min_chunk.max(1))).max(1)
    }
}

/// Balanced contiguous spans `[lo, hi)` covering `0..n` across `t` workers.
fn spans(n: usize, t: usize) -> Vec<(usize, usize)> {
    let base = n / t;
    let extra = n % t;
    let mut out = Vec::with_capacity(t);
    let mut lo = 0;
    for i in 0..t {
        let len = base + usize::from(i < extra);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// Runs `f` over every query, fanning contiguous spans out across the
/// configured worker threads. Results come back in query order and every
/// worker's [`SearchStats`] is merged into `stats`, so the outcome is
/// indistinguishable from the serial loop.
///
/// This is the engine behind the stateless [`BatchSearcher`]
/// implementations; it is public so other crates can parallelize their own
/// `Sync` search closures (e.g. feature-space KPCE over a `KdTreeN`).
pub fn parallel_queries<R, F>(
    queries: &[Vec3],
    cfg: &BatchConfig,
    stats: &mut SearchStats,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(Vec3, &mut SearchStats) -> R + Sync,
{
    let t = cfg.resolve_threads(queries.len());
    if t <= 1 {
        return queries.iter().map(|&q| f(q, stats)).collect();
    }
    let parts: Vec<(Vec<R>, SearchStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = spans(queries.len(), t)
            .into_iter()
            .map(|(lo, hi)| {
                let f = &f;
                scope.spawn(move || {
                    let mut local = SearchStats::new();
                    let out: Vec<R> = queries[lo..hi].iter().map(|&q| f(q, &mut local)).collect();
                    (out, local)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("batch worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(queries.len());
    for (chunk, local) in parts {
        out.extend(chunk);
        *stats += local;
    }
    out
}

/// Order-preserving parallel map over arbitrary `Sync` items — the
/// stats-free sibling of [`parallel_queries`], for the pure computation
/// that surrounds searches (normal fitting, descriptor histograms, point
/// transforms).
pub fn parallel_map<T, R, F>(items: &[T], cfg: &BatchConfig, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let t = cfg.resolve_threads(items.len());
    if t <= 1 {
        return items.iter().map(&f).collect();
    }
    let parts: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = spans(items.len(), t)
            .into_iter()
            .map(|(lo, hi)| {
                let f = &f;
                scope.spawn(move || items[lo..hi].iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("map worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in parts {
        out.extend(chunk);
    }
    out
}

/// Order-preserving parallel map over the index range `0..n` — for the
/// common case of combining several parallel arrays by position, where
/// materializing an index `Vec` just to feed [`parallel_map`] would be a
/// wasted allocation.
pub fn parallel_map_indexed<R, F>(n: usize, cfg: &BatchConfig, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let t = cfg.resolve_threads(n);
    if t <= 1 {
        return (0..n).map(&f).collect();
    }
    let parts: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = spans(n, t)
            .into_iter()
            .map(|(lo, hi)| {
                let f = &f;
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("map worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(n);
    for chunk in parts {
        out.extend(chunk);
    }
    out
}

/// Batched neighbor search over an index structure.
///
/// The `*_single` methods are the serial kernels; the `*_batch` methods
/// execute a whole query set, parallelized per the [`BatchConfig`], with
/// results in query order and per-thread stats merged losslessly into
/// `stats`. Implementations guarantee batched output (results and stats)
/// identical to running the `*_single` kernel over the queries in order.
///
/// Methods take `&mut self` so stateful searchers (the approximate
/// leader/follower search, whose leader books grow as queries stream
/// through) can implement the trait; stateless trees simply reborrow
/// shared.
pub trait BatchSearcher {
    /// Nearest neighbor of one query.
    fn nn_single(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor>;

    /// The `k` nearest neighbors of one query, ascending by distance.
    fn knn_single(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor>;

    /// All neighbors of one query within `radius`, ascending by distance.
    fn radius_single(&mut self, query: Vec3, radius: f64, stats: &mut SearchStats)
        -> Vec<Neighbor>;

    /// Nearest neighbor of every query.
    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        let _ = cfg;
        queries.iter().map(|&q| self.nn_single(q, stats)).collect()
    }

    /// The `k` nearest neighbors of every query.
    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let _ = cfg;
        queries.iter().map(|&q| self.knn_single(q, k, stats)).collect()
    }

    /// All neighbors within `radius` of every query.
    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let _ = cfg;
        queries.iter().map(|&q| self.radius_single(q, radius, stats)).collect()
    }
}

impl BatchSearcher for KdTree {
    fn nn_single(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nn_with_stats(query, stats)
    }

    fn knn_single(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.knn_with_stats(query, k, stats)
    }

    fn radius_single(
        &mut self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        self.radius_with_stats(query, radius, stats)
    }

    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        let tree = &*self;
        parallel_queries(queries, cfg, stats, |q, s| tree.nn_with_stats(q, s))
    }

    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let tree = &*self;
        parallel_queries(queries, cfg, stats, |q, s| tree.knn_with_stats(q, k, s))
    }

    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let tree = &*self;
        parallel_queries(queries, cfg, stats, |q, s| tree.radius_with_stats(q, radius, s))
    }
}

impl BatchSearcher for TwoStageKdTree {
    fn nn_single(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nn_with_stats(query, stats)
    }

    fn knn_single(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.knn_with_stats(query, k, stats)
    }

    fn radius_single(
        &mut self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        self.radius_with_stats(query, radius, stats)
    }

    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        let tree = &*self;
        parallel_queries(queries, cfg, stats, |q, s| tree.nn_with_stats(q, s))
    }

    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let tree = &*self;
        parallel_queries(queries, cfg, stats, |q, s| tree.knn_with_stats(q, k, s))
    }

    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let tree = &*self;
        parallel_queries(queries, cfg, stats, |q, s| tree.radius_with_stats(q, radius, s))
    }
}

/// Brute force implements the trait directly on the point slice — the
/// fourth backend, and the oracle the equivalence tests compare against.
impl BatchSearcher for [Vec3] {
    fn nn_single(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        crate::bruteforce::nn_brute_force_with_stats(self, query, stats)
    }

    fn knn_single(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        crate::bruteforce::knn_brute_force_with_stats(self, query, k, stats)
    }

    fn radius_single(
        &mut self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        crate::bruteforce::radius_brute_force_with_stats(self, query, radius, stats)
    }

    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        let pts = &*self;
        parallel_queries(queries, cfg, stats, |q, s| {
            crate::bruteforce::nn_brute_force_with_stats(pts, q, s)
        })
    }

    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let pts = &*self;
        parallel_queries(queries, cfg, stats, |q, s| {
            crate::bruteforce::knn_brute_force_with_stats(pts, q, k, s)
        })
    }

    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let pts = &*self;
        parallel_queries(queries, cfg, stats, |q, s| {
            crate::bruteforce::radius_brute_force_with_stats(pts, q, radius, s)
        })
    }
}

/// The owning oracle serves batches through its SoA kernel scans,
/// fanned out over shared borrows like the trees.
impl BatchSearcher for crate::bruteforce::BruteForceIndex {
    fn nn_single(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nn_with_stats(query, stats)
    }

    fn knn_single(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.knn_with_stats(query, k, stats)
    }

    fn radius_single(
        &mut self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        self.radius_with_stats(query, radius, stats)
    }

    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        let index = &*self;
        parallel_queries(queries, cfg, stats, |q, s| index.nn_with_stats(q, s))
    }

    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let index = &*self;
        parallel_queries(queries, cfg, stats, |q, s| index.knn_with_stats(q, k, s))
    }

    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let index = &*self;
        parallel_queries(queries, cfg, stats, |q, s| index.radius_with_stats(q, radius, s))
    }
}

/// Which of the approximate searcher's two leader books a batch touches.
enum Book {
    Nn,
    Radius,
}

/// Leaf-grouped batched execution for the approximate searchers (both the
/// borrowing [`ApproxSearcher`] and the owning [`ApproxIndex`]).
///
/// Queries are bucketed by primary leaf; workers own contiguous,
/// disjoint leaf ranges (hence disjoint slices of the leader books), and
/// within a leaf queries run in arrival order. Per-leaf state is all the
/// state Algorithm 1 has, so this reproduces the serial searcher's
/// results and stats exactly while scaling across cores.
#[allow(clippy::too_many_arguments)]
fn approx_batch<R: Send>(
    tree: &TwoStageKdTree,
    leader_books: &mut LeaderBooks,
    queries: &[Vec3],
    cfg: &BatchConfig,
    stats: &mut SearchStats,
    book: Book,
    kernel: impl Fn(&TwoStageKdTree, &ApproxConfig, &mut Vec<Leader>, Vec3, &mut SearchStats) -> R
        + Sync,
    fallback: impl Fn(&TwoStageKdTree, Vec3, &mut SearchStats) -> R + Sync,
    empty: impl Fn() -> R,
) -> Vec<R> {
    if tree.is_empty() {
        return queries.iter().map(|_| empty()).collect();
    }
    let acfg = leader_books.cfg;
    let books: &mut [Vec<Leader>] = match book {
        Book::Nn => &mut leader_books.nn,
        Book::Radius => &mut leader_books.radius,
    };

    let t = cfg.resolve_threads(queries.len());
    if t <= 1 {
        return queries
            .iter()
            .map(|&q| match tree.primary_leaf(q) {
                Some(leaf) => kernel(tree, &acfg, &mut books[leaf], q, stats),
                None => fallback(tree, q, stats),
            })
            .collect();
    }

    // Bucket query indices by primary leaf, preserving arrival order.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); books.len()];
    let mut unrouted: Vec<u32> = Vec::new();
    for (i, &q) in queries.iter().enumerate() {
        match tree.primary_leaf(q) {
            Some(leaf) => buckets[leaf].push(i as u32),
            None => unrouted.push(i as u32),
        }
    }

    // Partition the leaf space into `t` contiguous ranges with roughly
    // equal query counts, so the book slices handed to workers are
    // disjoint `split_at_mut` products.
    let total_routed: usize = queries.len() - unrouted.len();
    let target = total_routed.div_ceil(t).max(1);
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(t);
    let mut lo = 0;
    let mut acc = 0;
    for (leaf, bucket) in buckets.iter().enumerate() {
        acc += bucket.len();
        if acc >= target && ranges.len() + 1 < t {
            ranges.push((lo, leaf + 1));
            lo = leaf + 1;
            acc = 0;
        }
    }
    ranges.push((lo, buckets.len()));

    let mut slots: Vec<Option<R>> = queries.iter().map(|_| None).collect();
    let mut merged = SearchStats::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        let mut rest: &mut [Vec<Leader>] = books;
        let mut offset = 0;
        for &(rlo, rhi) in &ranges {
            let (_skip, tail) = rest.split_at_mut(rlo - offset);
            let (slice, tail) = tail.split_at_mut(rhi - rlo);
            rest = tail;
            offset = rhi;
            let buckets = &buckets;
            let kernel = &kernel;
            let acfg = &acfg;
            handles.push(scope.spawn(move || {
                let mut local = SearchStats::new();
                let mut out: Vec<(u32, R)> = Vec::new();
                for (book, bucket) in slice.iter_mut().zip(&buckets[rlo..rhi]) {
                    for &qi in bucket {
                        let r = kernel(tree, acfg, book, queries[qi as usize], &mut local);
                        out.push((qi, r));
                    }
                }
                (out, local)
            }));
        }

        // Queries whose descent dead-ends touch no book; serve them here
        // while the workers run.
        let mut unrouted_stats = SearchStats::new();
        let unrouted_results: Vec<(u32, R)> = unrouted
            .iter()
            .map(|&qi| (qi, fallback(tree, queries[qi as usize], &mut unrouted_stats)))
            .collect();

        for h in handles {
            let (pairs, local) = h.join().expect("approx batch worker panicked");
            merged += local;
            for (qi, r) in pairs {
                slots[qi as usize] = Some(r);
            }
        }
        merged += unrouted_stats;
        for (qi, r) in unrouted_results {
            slots[qi as usize] = Some(r);
        }
    });

    *stats += merged;
    slots.into_iter().map(|s| s.expect("every query routed to exactly one worker")).collect()
}

impl BatchSearcher for ApproxSearcher<'_> {
    fn nn_single(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nn_with_stats(query, stats)
    }

    /// k-NN has no approximate path (Algorithm 1 covers NN and radius);
    /// served exactly by the underlying two-stage tree, like
    /// `Searcher3::knn`.
    fn knn_single(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.tree().knn_with_stats(query, k, stats)
    }

    fn radius_single(
        &mut self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        self.radius_with_stats(query, radius, stats)
    }

    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        let (tree, books) = self.leaf_parts();
        approx_batch(
            tree,
            books,
            queries,
            cfg,
            stats,
            Book::Nn,
            nn_in_book,
            |tree, q, s| tree.nn_with_stats(q, s),
            || None,
        )
    }

    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let tree = self.tree();
        parallel_queries(queries, cfg, stats, |q, s| tree.knn_with_stats(q, k, s))
    }

    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let (tree, books) = self.leaf_parts();
        approx_batch(
            tree,
            books,
            queries,
            cfg,
            stats,
            Book::Radius,
            move |tree, acfg, book, q, s| radius_in_book(tree, acfg, book, q, radius, s),
            move |tree, q, s| tree.radius_with_stats(q, radius, s),
            Vec::new,
        )
    }
}

impl BatchSearcher for ApproxIndex {
    fn nn_single(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nn_with_stats(query, stats)
    }

    /// k-NN has no approximate path; served exactly by the owned
    /// two-stage tree (see [`ApproxSearcher`]'s impl).
    fn knn_single(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.tree().knn_with_stats(query, k, stats)
    }

    fn radius_single(
        &mut self,
        query: Vec3,
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        self.radius_with_stats(query, radius, stats)
    }

    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        let (tree, books) = self.leaf_parts();
        approx_batch(
            tree,
            books,
            queries,
            cfg,
            stats,
            Book::Nn,
            nn_in_book,
            |tree, q, s| tree.nn_with_stats(q, s),
            || None,
        )
    }

    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let tree = self.tree();
        parallel_queries(queries, cfg, stats, |q, s| tree.knn_with_stats(q, k, s))
    }

    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let (tree, books) = self.leaf_parts();
        approx_batch(
            tree,
            books,
            queries,
            cfg,
            stats,
            Book::Radius,
            move |tree, acfg, book, q, s| radius_in_book(tree, acfg, book, q, radius, s),
            move |tree, q, s| tree.radius_with_stats(q, radius, s),
            Vec::new,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproxConfig;

    fn lcg_cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 20.0 - 10.0
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn spans_cover_everything_once() {
        for n in [0usize, 1, 7, 64, 65] {
            for t in [1usize, 2, 3, 8] {
                let s = spans(n, t);
                assert_eq!(s.len(), t);
                assert_eq!(s[0].0, 0);
                assert_eq!(s[t - 1].1, n);
                for w in s.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }

    #[test]
    fn resolve_threads_honors_min_chunk() {
        let cfg = BatchConfig { threads: 8, min_chunk: 100 };
        assert_eq!(cfg.resolve_threads(0), 1);
        assert_eq!(cfg.resolve_threads(99), 1);
        assert_eq!(cfg.resolve_threads(250), 3);
        assert_eq!(cfg.resolve_threads(10_000), 8);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let cfg = BatchConfig { threads: 4, min_chunk: 1 };
        let doubled = parallel_map(&items, &cfg, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn batched_kdtree_matches_serial_results_and_stats() {
        let pts = lcg_cloud(3000, 1);
        let queries = lcg_cloud(777, 2);
        let mut tree = KdTree::build(&pts);
        let cfg = BatchConfig { threads: 4, min_chunk: 8 };

        let mut serial_stats = SearchStats::new();
        let serial: Vec<_> =
            queries.iter().map(|&q| tree.nn_with_stats(q, &mut serial_stats)).collect();

        let mut batch_stats = SearchStats::new();
        let batched = tree.nn_batch(&queries, &cfg, &mut batch_stats);

        assert_eq!(serial, batched);
        assert_eq!(serial_stats, batch_stats);
    }

    #[test]
    fn batched_approx_matches_serial_results_and_stats() {
        let pts = lcg_cloud(4000, 3);
        let tree = TwoStageKdTree::build(&pts, 4);
        let queries = lcg_cloud(500, 4);
        let cfg = BatchConfig { threads: 4, min_chunk: 8 };

        let mut serial = ApproxSearcher::new(&tree, ApproxConfig::default());
        let mut serial_stats = SearchStats::new();
        let serial_out: Vec<_> =
            queries.iter().map(|&q| serial.nn_with_stats(q, &mut serial_stats)).collect();

        let mut batched = ApproxSearcher::new(&tree, ApproxConfig::default());
        let mut batch_stats = SearchStats::new();
        let batch_out = batched.nn_batch(&queries, &cfg, &mut batch_stats);

        assert_eq!(serial_out, batch_out);
        assert_eq!(serial_stats, batch_stats);
        assert_eq!(serial.leader_count(), batched.leader_count());
        assert!(batch_stats.follower_hits > 0, "workload should produce followers");
    }

    #[test]
    fn batched_approx_radius_matches_serial() {
        let pts = lcg_cloud(2000, 5);
        let tree = TwoStageKdTree::build(&pts, 3);
        let queries = lcg_cloud(300, 6);
        let cfg = BatchConfig { threads: 3, min_chunk: 4 };

        let mut serial = ApproxSearcher::new(&tree, ApproxConfig::default());
        let mut s_stats = SearchStats::new();
        let s_out: Vec<_> =
            queries.iter().map(|&q| serial.radius_with_stats(q, 2.0, &mut s_stats)).collect();

        let mut batched = ApproxSearcher::new(&tree, ApproxConfig::default());
        let mut b_stats = SearchStats::new();
        let b_out = batched.radius_batch(&queries, 2.0, &cfg, &mut b_stats);

        assert_eq!(s_out, b_out);
        assert_eq!(s_stats, b_stats);
    }

    #[test]
    fn brute_force_backend_counts_scans() {
        let mut pts = lcg_cloud(100, 7);
        let queries = lcg_cloud(10, 8);
        let cfg = BatchConfig { threads: 2, min_chunk: 1 };
        let mut stats = SearchStats::new();
        let out = pts.as_mut_slice().nn_batch(&queries, &cfg, &mut stats);
        assert_eq!(out.len(), 10);
        assert_eq!(stats.queries, 10);
        assert_eq!(stats.leaf_points_scanned, 1000);
    }

    #[test]
    fn empty_queries_and_empty_trees() {
        let mut tree = KdTree::build(&[]);
        let cfg = BatchConfig::auto();
        let mut stats = SearchStats::new();
        assert!(tree.nn_batch(&[], &cfg, &mut stats).is_empty());
        let qs = lcg_cloud(5, 9);
        let out = tree.nn_batch(&qs, &cfg, &mut stats);
        assert!(out.iter().all(Option::is_none));

        let empty_tree = TwoStageKdTree::build(&[], 3);
        let mut approx = ApproxSearcher::new(&empty_tree, ApproxConfig::default());
        let out = approx.nn_batch(&qs, &cfg, &mut stats);
        assert!(out.iter().all(Option::is_none));
    }
}

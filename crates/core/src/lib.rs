//! Tigris KD-tree data structures and search algorithms — the paper's
//! primary algorithmic contribution (Sec. 4).
//!
//! Point cloud registration spends 50–85% of its time in KD-tree search
//! (paper Fig. 4b). This crate provides:
//!
//! * [`KdTree`] — the canonical 3D KD-tree (paper Fig. 5a): one point per
//!   node, median splits, pruned recursive NN / k-NN / radius search.
//! * [`TwoStageKdTree`] — the acceleration-amenable variant (paper Fig. 5b):
//!   a *top-tree* of height `h_top` whose leaf nodes hold their children as
//!   unordered sets, enabling exhaustive (and therefore parallel) search at
//!   the leaves. Exposes query-level and node-level parallelism at the cost
//!   of redundant node visits (paper Fig. 6).
//! * [`approx`] — the approximate leader/follower search of Algorithm 1:
//!   queries reaching the same leaf are split into leaders (searched
//!   exhaustively) and followers (searched only against the closest leader's
//!   result set).
//! * [`inject`] — the error-injection instruments of Sec. 4.2 (return the
//!   k-th nearest neighbor; return a `<r1, r2>` shell instead of a ball),
//!   used to quantify the pipeline's tolerance to inexact search.
//! * [`dynamic`] — the incrementally insertable [`DynamicMapIndex`] (static
//!   tree + fresh-points buffer, merged by periodic rebuild) that mapping
//!   workloads insert into as the map grows, registered as `"dynamic"`.
//! * [`KdTreeN`] — a k-dimensional KD-tree for feature-space search (KPCE
//!   matches FPFH/SHOT descriptors, which live in ℝ³³ and beyond).
//! * [`SearchStats`] — node-visit accounting behind the redundancy and
//!   traffic analyses.
//! * [`index`] — the [`SearchIndex`] trait and backend registry: the
//!   public seam through which *every* backend (the trees above, the
//!   [`BruteForceIndex`] oracle, and `tigris-accel`'s online accelerator
//!   model) plugs into the registration pipeline interchangeably.
//!
//! # Example
//!
//! ```
//! use tigris_core::{KdTree, TwoStageKdTree};
//! use tigris_geom::Vec3;
//!
//! let pts: Vec<Vec3> = (0..100)
//!     .map(|i| Vec3::new((i % 10) as f64, (i / 10) as f64, 0.0))
//!     .collect();
//! let classic = KdTree::build(&pts);
//! let two_stage = TwoStageKdTree::build(&pts, 3);
//!
//! let q = Vec3::new(4.2, 7.1, 0.3);
//! let a = classic.nn(q).unwrap();
//! let b = two_stage.nn(q).unwrap();
//! assert_eq!(a.index, b.index); // exact mode agrees with the classic tree
//! ```

#![warn(missing_docs)]

pub mod approx;
pub mod batch;
pub mod bruteforce;
pub mod dynamic;
pub mod index;
pub mod inject;
pub mod kdtree;
pub mod kdtree_nd;
pub mod record;
pub mod simd;
pub mod soa;
pub mod stats;
pub mod twostage;

pub use approx::{ApproxConfig, ApproxIndex, ApproxSearcher};
pub use batch::{BatchConfig, BatchSearcher};
pub use bruteforce::{knn_brute_force, nn_brute_force, radius_brute_force, BruteForceIndex};
pub use dynamic::DynamicMapIndex;
pub use index::{
    backend_names, build_backend, register_backend, IndexSize, SearchIndex, SharedIndex,
};
pub use kdtree::KdTree;
pub use kdtree_nd::KdTreeN;
pub use record::{segment_by_kind, QueryKind, QueryRecord};
pub use soa::{PointSoA, SoaView};
pub use stats::SearchStats;
pub use twostage::{default_top_height, LeafSet, TopChild, TopNode, TwoStageKdTree};

/// A search result: the index of a point in the indexed cloud and its
/// squared distance to the query.
///
/// Squared distances avoid the square root in the hot loop — the same
/// choice the accelerator's distance datapath makes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the matched point in the point array the tree was built on.
    pub index: usize,
    /// Squared Euclidean distance between the query and the matched point.
    pub distance_squared: f64,
}

impl Neighbor {
    /// Creates a neighbor record.
    pub fn new(index: usize, distance_squared: f64) -> Self {
        Neighbor { index, distance_squared }
    }

    /// The (non-squared) Euclidean distance.
    pub fn distance(&self) -> f64 {
        self.distance_squared.sqrt()
    }
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance_squared
            .partial_cmp(&other.distance_squared)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.index.cmp(&other.index))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_ordering_is_by_distance_then_index() {
        let a = Neighbor::new(5, 1.0);
        let b = Neighbor::new(2, 2.0);
        let c = Neighbor::new(1, 1.0);
        assert!(a < b);
        assert!(c < a); // tie on distance broken by index
        let mut v = vec![b, a, c];
        v.sort();
        assert_eq!(v, vec![c, a, b]);
    }

    #[test]
    fn neighbor_distance() {
        assert_eq!(Neighbor::new(0, 9.0).distance(), 3.0);
    }
}

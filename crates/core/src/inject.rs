//! Error injection into KD-tree search (paper Sec. 4.2, Fig. 7).
//!
//! To quantify how tolerant end-to-end registration is to inexact search,
//! the paper replaces:
//!
//! * the NN result with the **k-th** nearest neighbor ([`kth_nn`]), and
//! * the radius-`r` ball with a **spherical shell** `<r1, r2>`
//!   (`r1 < r < r2`) ([`shell_radius`]).
//!
//! The pipeline crate threads these through the Normal Estimation, KPCE
//! and RPCE stages to regenerate Fig. 7.

use crate::{KdTree, Neighbor};
use tigris_geom::Vec3;

/// Returns the `k`-th nearest neighbor of `query` (1-based: `k = 1` is the
/// true nearest neighbor), or `None` when the tree has fewer than `k`
/// points.
///
/// # Panics
///
/// Panics when `k == 0`.
///
/// # Example
///
/// ```
/// use tigris_core::inject::kth_nn;
/// use tigris_core::KdTree;
/// use tigris_geom::Vec3;
///
/// let pts: Vec<Vec3> = (0..5).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
/// let tree = KdTree::build(&pts);
/// assert_eq!(kth_nn(&tree, Vec3::ZERO, 1).unwrap().index, 0);
/// assert_eq!(kth_nn(&tree, Vec3::ZERO, 3).unwrap().index, 2);
/// ```
pub fn kth_nn(tree: &KdTree, query: Vec3, k: usize) -> Option<Neighbor> {
    assert!(k >= 1, "k is 1-based; k = 0 is meaningless");
    let knn = tree.knn(query, k);
    (knn.len() == k).then(|| knn[k - 1])
}

/// Returns all points in the spherical shell `r1 ≤ d ≤ r2` around `query`,
/// sorted ascending by distance.
///
/// Injecting `<r1, r2>` in place of a radius-`r` search (with
/// `r1 < r < r2`) both *drops* near points (d < r1) and *adds* far points
/// (r < d ≤ r2), the two error modes of paper Fig. 7b.
///
/// # Panics
///
/// Panics when `r1 > r2` or `r1 < 0`.
pub fn shell_radius(tree: &KdTree, query: Vec3, r1: f64, r2: f64) -> Vec<Neighbor> {
    assert!(r1 >= 0.0, "inner radius must be non-negative");
    assert!(r1 <= r2, "inner radius must not exceed outer radius");
    let r1_sq = r1 * r1;
    tree.radius(query, r2).into_iter().filter(|n| n.distance_squared >= r1_sq).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points(n: usize) -> Vec<Vec3> {
        (0..n).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect()
    }

    #[test]
    fn kth_nn_walks_outward() {
        let tree = KdTree::build(&line_points(10));
        for k in 1..=10 {
            let n = kth_nn(&tree, Vec3::new(-0.5, 0.0, 0.0), k).unwrap();
            assert_eq!(n.index, k - 1, "k = {k}");
        }
    }

    #[test]
    fn kth_nn_beyond_size_is_none() {
        let tree = KdTree::build(&line_points(3));
        assert!(kth_nn(&tree, Vec3::ZERO, 4).is_none());
        assert!(kth_nn(&tree, Vec3::ZERO, 3).is_some());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn kth_nn_zero_panics() {
        kth_nn(&KdTree::build(&line_points(3)), Vec3::ZERO, 0);
    }

    #[test]
    fn shell_includes_only_annulus() {
        let tree = KdTree::build(&line_points(20));
        let res = shell_radius(&tree, Vec3::ZERO, 3.0, 6.0);
        let xs: Vec<f64> = res.iter().map(|n| tree.points()[n.index].x).collect();
        assert_eq!(xs, vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn shell_with_r1_zero_is_plain_radius() {
        let tree = KdTree::build(&line_points(20));
        let shell = shell_radius(&tree, Vec3::ZERO, 0.0, 4.0);
        let ball = tree.radius(Vec3::ZERO, 4.0);
        assert_eq!(shell.len(), ball.len());
    }

    #[test]
    fn shell_boundary_inclusive() {
        let tree = KdTree::build(&line_points(10));
        let res = shell_radius(&tree, Vec3::ZERO, 2.0, 2.0);
        assert_eq!(res.len(), 1);
        assert_eq!(tree.points()[res[0].index].x, 2.0);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn shell_rejects_inverted_radii() {
        shell_radius(&KdTree::build(&line_points(3)), Vec3::ZERO, 2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn shell_rejects_negative_inner() {
        shell_radius(&KdTree::build(&line_points(3)), Vec3::ZERO, -1.0, 1.0);
    }

    #[test]
    fn shell_results_sorted() {
        let tree = KdTree::build(&line_points(30));
        let res = shell_radius(&tree, Vec3::new(14.3, 0.0, 0.0), 2.0, 9.0);
        for w in res.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(!res.is_empty());
    }
}

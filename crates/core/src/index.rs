//! The `SearchIndex` trait: the pluggable backend seam of the search
//! engine.
//!
//! Tigris's central architectural claim (paper Sec. 4–5) is that the
//! KD-tree search backend is *swappable* — canonical software tree,
//! two-stage tree, approximate leader/follower search, or the simulated
//! accelerator — while the registration pipeline above stays fixed. This
//! module makes that seam a first-class public trait:
//!
//! * [`SearchIndex`] — build-from-points construction, `nn`/`knn`/`radius`
//!   queries plus their `*_batch` forms, and size/name reporting. Every
//!   backend (including stateful approximate ones) implements it, so the
//!   pipeline's `Searcher3` can hold a `Box<dyn SearchIndex>` and new
//!   backends plug in without touching the pipeline.
//! * [`SharedIndex`] — the `&self` query view of the stateless exact
//!   backends, reachable through [`SearchIndex::as_shared`]. Callers that
//!   hold the index borrowed shared (the pipeline's front end querying
//!   the searcher's own point slice, parallel fan-out without cloning)
//!   downcast to it; stateful backends simply return `None` and keep the
//!   exclusive path.
//! * [`register_backend`]/[`build_backend`]/[`backend_names`] — a
//!   process-wide registry of named backend factories. The five built-in
//!   backends are pre-registered; external crates (e.g. `tigris-accel`'s
//!   online accelerator backend) add their own.
//!
//! # Example
//!
//! ```
//! use tigris_core::index::{build_backend, SearchIndex};
//! use tigris_core::SearchStats;
//! use tigris_geom::Vec3;
//!
//! let pts: Vec<Vec3> = (0..512)
//!     .map(|i| Vec3::new((i % 16) as f64, (i / 16) as f64, 0.0))
//!     .collect();
//! // Any registered backend can serve the same queries.
//! for name in ["classic", "two-stage", "brute-force"] {
//!     let mut index = build_backend(name, &pts).unwrap();
//!     let mut stats = SearchStats::new();
//!     let n = index.nn(Vec3::new(3.2, 7.9, 0.1), &mut stats).unwrap();
//!     assert_eq!(pts[n.index], Vec3::new(3.0, 8.0, 0.0));
//!     assert_eq!(index.name(), name);
//! }
//! ```

use std::collections::BTreeMap;
use std::sync::{OnceLock, RwLock};

use crate::approx::ApproxIndex;
use crate::batch::{BatchConfig, BatchSearcher};
use crate::bruteforce::BruteForceIndex;
use crate::dynamic::DynamicMapIndex;
use crate::twostage::default_top_height;
use crate::{ApproxConfig, KdTree, Neighbor, SearchStats, TwoStageKdTree};
use tigris_geom::Vec3;

/// Structural size of an index, for memory/footprint reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexSize {
    /// Points indexed.
    pub points: usize,
    /// Interior (recursively traversed) tree nodes.
    pub interior_nodes: usize,
    /// Unordered leaf sets (two-stage structures only).
    pub leaf_sets: usize,
}

/// A neighbor-search backend over one 3D point cloud.
///
/// This is the boundary between the registration pipeline and the search
/// engine: the pipeline issues `nn`/`knn`/`radius` queries (serial or
/// batched) and never sees which structure serves them. Implementations:
///
/// | backend | type | exactness |
/// |---|---|---|
/// | `"classic"` | [`KdTree`] | exact |
/// | `"two-stage"` | [`TwoStageKdTree`] | exact |
/// | `"two-stage-approx"` | [`ApproxIndex`] | Algorithm-1 approximate |
/// | `"brute-force"` | [`BruteForceIndex`] | exact (oracle) |
/// | `"dynamic"` | [`DynamicMapIndex`] | exact, insertable |
/// | `"accelerator"` | `tigris-accel`'s `AccelBackend` | exact or approximate |
///
/// Methods take `&mut self` so stateful backends (approximate leader
/// books, accelerator leader buffers) can evolve as queries stream
/// through; stateless trees simply reborrow shared.
///
/// Implementations must be `Send + Sync`: a built index may be moved
/// into — and shared behind — structures served to many threads at once
/// (the serving layer's `Arc`-shared frozen maps). No builtin uses
/// interior mutability, so `Sync` is automatic; a custom backend that
/// wants query-time interior state must synchronize it itself.
///
/// # Contract
///
/// Implementations must uphold (verified by `core/tests/index_contract.rs`):
///
/// * exact backends return results bit-identical to brute force
///   (same indices, same squared distances, ties broken to the lower
///   index, radius/knn results ascending by `(distance, index)`);
/// * approximate backends stay within their configured bound (NN distance
///   exceeds exact by at most `2·thd`; radius results are a sound subset);
/// * every `*_batch` method returns exactly what the serial method would,
///   in query order, with [`SearchStats`] merged losslessly.
pub trait SearchIndex: Send + Sync {
    /// Builds this backend over `points` with its default parameters.
    ///
    /// Parameterized backends expose richer constructors on the concrete
    /// type (e.g. [`TwoStageKdTree::build`] takes a top height); this
    /// entry point is what the registry's factories use.
    fn from_points(points: &[Vec3]) -> Self
    where
        Self: Sized;

    /// Stable backend identifier (`"classic"`, `"two-stage"`, …) — the
    /// same string the backend is registered under, used for labels,
    /// `Debug` output and registry lookups.
    fn name(&self) -> &'static str;

    /// The indexed points, in build order (result indices refer to this
    /// slice).
    fn points(&self) -> &[Vec3];

    /// Structural size of the index.
    fn size(&self) -> IndexSize;

    /// Number of indexed points.
    fn len(&self) -> usize {
        self.points().len()
    }

    /// `true` when no points are indexed.
    fn is_empty(&self) -> bool {
        self.points().is_empty()
    }

    /// Nearest neighbor of `query`, or `None` on an empty index.
    fn nn(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor>;

    /// The `k` nearest neighbors of `query`, ascending by distance
    /// (fewer when the index holds fewer than `k` points).
    fn knn(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor>;

    /// All neighbors within `radius` of `query`, ascending by distance.
    fn radius(&mut self, query: Vec3, radius: f64, stats: &mut SearchStats) -> Vec<Neighbor>;

    /// Nearest neighbor of every query; results in query order.
    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        let _ = cfg;
        queries.iter().map(|&q| self.nn(q, stats)).collect()
    }

    /// The `k` nearest neighbors of every query; results in query order.
    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let _ = cfg;
        queries.iter().map(|&q| self.knn(q, k, stats)).collect()
    }

    /// All neighbors within `radius` of every query; results in query
    /// order.
    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let _ = cfg;
        queries.iter().map(|&q| self.radius(q, radius, stats)).collect()
    }

    /// Clears any approximation state accumulated across queries (leader
    /// books, leader buffers) — call between frames. No-op for exact
    /// backends.
    fn reset(&mut self) {}

    /// The shared-read (`&self`) query view of this backend, when it has
    /// one.
    ///
    /// Exact stateless backends (`"classic"`, `"two-stage"`,
    /// `"brute-force"`, `"dynamic"`) return `Some`; stateful backends
    /// whose queries mutate (approximate leader books, accelerator
    /// buffers) return the default `None` and callers fall back to the
    /// exclusive `&mut self` entry points.
    fn as_shared(&self) -> Option<&dyn SharedIndex> {
        None
    }
}

/// Shared-read (`&self`) queries over an exact backend.
///
/// [`SearchIndex`] queries take `&mut self` so stateful backends can
/// evolve, which forces callers that query an index *about its own
/// points* to copy those points out first (the borrow checker will not
/// split "read the point slice" from "query the index"). This trait is
/// the escape hatch: backends with genuinely immutable queries expose
/// them at `&self`, reached via [`SearchIndex::as_shared`]. Results and
/// [`SearchStats`] metering are bit-identical to the `&mut` entry
/// points — the contract suite compares them directly.
pub trait SharedIndex: Sync {
    /// Nearest neighbor of `query`, or `None` on an empty index.
    fn nn_shared(&self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor>;

    /// The `k` nearest neighbors of `query`, ascending by distance.
    fn knn_shared(&self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor>;

    /// All neighbors within `radius` of `query`, ascending by distance.
    fn radius_shared(&self, query: Vec3, radius: f64, stats: &mut SearchStats) -> Vec<Neighbor>;

    /// Radius search appending into a caller-owned buffer: hits are
    /// pushed onto `out` (existing contents untouched) with the appended
    /// range sorted ascending — bit-identical per query to
    /// [`SharedIndex::radius_shared`], allocation-free once the buffer
    /// is warm.
    fn radius_into_shared(
        &self,
        query: Vec3,
        radius: f64,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        out.extend(self.radius_shared(query, radius, stats));
    }

    /// Radius search for a group of co-located queries, one output row
    /// per query: `rows[i]` is cleared and then receives exactly the
    /// hits [`SharedIndex::radius_shared`] would return for
    /// `queries[i]`, in the same canonical `(d², index)` order.
    /// Backends that can amortize one traversal across the whole group
    /// override this; the default simply loops. Callers get the best
    /// results from groups whose spatial extent is at most a radius or
    /// so — a loose group drags every member through subtrees only its
    /// farthest peer can reach.
    ///
    /// # Panics
    ///
    /// Panics when `rows.len() != queries.len()`.
    fn radius_group_into_shared(
        &self,
        queries: &[Vec3],
        radius: f64,
        rows: &mut [Vec<Neighbor>],
        stats: &mut SearchStats,
    ) {
        assert_eq!(queries.len(), rows.len(), "one output row per query");
        for (q, row) in queries.iter().zip(rows.iter_mut()) {
            row.clear();
            self.radius_into_shared(*q, radius, row, stats);
        }
    }

    /// [`SharedIndex::radius_group_into_shared`] minus the ordering
    /// guarantee: `rows[i]` receives exactly the hit *set* of
    /// `queries[i]` — same neighbors, same bits — in an unspecified
    /// order. Backends whose grouped traversal produces rows in
    /// traversal order override this to skip the canonical `(d²,
    /// index)` re-sort, the dominant per-row cost on dense
    /// neighborhoods; the default just returns sorted rows, a valid
    /// instance of "unspecified". Only consumers whose accumulation is
    /// order-independent may use this.
    ///
    /// # Panics
    ///
    /// Panics when `rows.len() != queries.len()`.
    fn radius_group_unsorted_into_shared(
        &self,
        queries: &[Vec3],
        radius: f64,
        rows: &mut [Vec<Neighbor>],
        stats: &mut SearchStats,
    ) {
        self.radius_group_into_shared(queries, radius, rows, stats);
    }
}

impl SearchIndex for KdTree {
    fn from_points(points: &[Vec3]) -> Self {
        KdTree::build(points)
    }

    fn name(&self) -> &'static str {
        "classic"
    }

    fn points(&self) -> &[Vec3] {
        KdTree::points(self)
    }

    fn size(&self) -> IndexSize {
        IndexSize {
            points: KdTree::len(self),
            interior_nodes: self.interior_count(),
            leaf_sets: self.leaf_count(),
        }
    }

    fn nn(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nn_with_stats(query, stats)
    }

    fn knn(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.knn_with_stats(query, k, stats)
    }

    fn radius(&mut self, query: Vec3, radius: f64, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.radius_with_stats(query, radius, stats)
    }

    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        BatchSearcher::nn_batch(self, queries, cfg, stats)
    }

    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        BatchSearcher::knn_batch(self, queries, k, cfg, stats)
    }

    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        BatchSearcher::radius_batch(self, queries, radius, cfg, stats)
    }

    fn as_shared(&self) -> Option<&dyn SharedIndex> {
        Some(self)
    }
}

impl SharedIndex for KdTree {
    fn nn_shared(&self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nn_with_stats(query, stats)
    }

    fn knn_shared(&self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.knn_with_stats(query, k, stats)
    }

    fn radius_shared(&self, query: Vec3, radius: f64, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.radius_with_stats(query, radius, stats)
    }

    fn radius_into_shared(
        &self,
        query: Vec3,
        radius: f64,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        self.radius_into_with_stats(query, radius, out, stats);
    }

    fn radius_group_into_shared(
        &self,
        queries: &[Vec3],
        radius: f64,
        rows: &mut [Vec<Neighbor>],
        stats: &mut SearchStats,
    ) {
        self.radius_group_into_with_stats(queries, radius, rows, stats);
    }

    fn radius_group_unsorted_into_shared(
        &self,
        queries: &[Vec3],
        radius: f64,
        rows: &mut [Vec<Neighbor>],
        stats: &mut SearchStats,
    ) {
        self.radius_group_unsorted_into_with_stats(queries, radius, rows, stats);
    }
}

impl SearchIndex for TwoStageKdTree {
    fn from_points(points: &[Vec3]) -> Self {
        TwoStageKdTree::build(points, default_top_height(points.len()))
    }

    fn name(&self) -> &'static str {
        "two-stage"
    }

    fn points(&self) -> &[Vec3] {
        TwoStageKdTree::points(self)
    }

    fn size(&self) -> IndexSize {
        IndexSize {
            points: TwoStageKdTree::len(self),
            interior_nodes: self.top_nodes().len(),
            leaf_sets: self.leaves().len(),
        }
    }

    fn nn(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nn_with_stats(query, stats)
    }

    fn knn(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.knn_with_stats(query, k, stats)
    }

    fn radius(&mut self, query: Vec3, radius: f64, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.radius_with_stats(query, radius, stats)
    }

    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        BatchSearcher::nn_batch(self, queries, cfg, stats)
    }

    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        BatchSearcher::knn_batch(self, queries, k, cfg, stats)
    }

    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        BatchSearcher::radius_batch(self, queries, radius, cfg, stats)
    }

    fn as_shared(&self) -> Option<&dyn SharedIndex> {
        Some(self)
    }
}

impl SharedIndex for TwoStageKdTree {
    fn nn_shared(&self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nn_with_stats(query, stats)
    }

    fn knn_shared(&self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.knn_with_stats(query, k, stats)
    }

    fn radius_shared(&self, query: Vec3, radius: f64, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.radius_with_stats(query, radius, stats)
    }
}

impl SearchIndex for ApproxIndex {
    fn from_points(points: &[Vec3]) -> Self {
        ApproxIndex::build(points, default_top_height(points.len()), ApproxConfig::default())
    }

    fn name(&self) -> &'static str {
        "two-stage-approx"
    }

    fn points(&self) -> &[Vec3] {
        self.tree().points()
    }

    fn size(&self) -> IndexSize {
        IndexSize {
            points: self.tree().len(),
            interior_nodes: self.tree().top_nodes().len(),
            leaf_sets: self.tree().leaves().len(),
        }
    }

    fn nn(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nn_with_stats(query, stats)
    }

    /// k-NN has no approximate path (Algorithm 1 covers NN and radius);
    /// served exactly by the underlying two-stage tree.
    fn knn(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.tree().knn_with_stats(query, k, stats)
    }

    fn radius(&mut self, query: Vec3, radius: f64, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.radius_with_stats(query, radius, stats)
    }

    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        BatchSearcher::nn_batch(self, queries, cfg, stats)
    }

    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        BatchSearcher::knn_batch(self, queries, k, cfg, stats)
    }

    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        BatchSearcher::radius_batch(self, queries, radius, cfg, stats)
    }

    fn reset(&mut self) {
        ApproxIndex::reset(self);
    }
}

impl SearchIndex for BruteForceIndex {
    fn from_points(points: &[Vec3]) -> Self {
        BruteForceIndex::new(points.to_vec())
    }

    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn points(&self) -> &[Vec3] {
        BruteForceIndex::points(self)
    }

    fn size(&self) -> IndexSize {
        IndexSize { points: BruteForceIndex::points(self).len(), ..IndexSize::default() }
    }

    fn nn(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        BruteForceIndex::nn_with_stats(self, query, stats)
    }

    fn knn(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        BruteForceIndex::knn_with_stats(self, query, k, stats)
    }

    fn radius(&mut self, query: Vec3, radius: f64, stats: &mut SearchStats) -> Vec<Neighbor> {
        BruteForceIndex::radius_with_stats(self, query, radius, stats)
    }

    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        BatchSearcher::nn_batch(self, queries, cfg, stats)
    }

    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        BatchSearcher::knn_batch(self, queries, k, cfg, stats)
    }

    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        BatchSearcher::radius_batch(self, queries, radius, cfg, stats)
    }

    fn as_shared(&self) -> Option<&dyn SharedIndex> {
        Some(self)
    }
}

impl SharedIndex for BruteForceIndex {
    fn nn_shared(&self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        BruteForceIndex::nn_with_stats(self, query, stats)
    }

    fn knn_shared(&self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        BruteForceIndex::knn_with_stats(self, query, k, stats)
    }

    fn radius_shared(&self, query: Vec3, radius: f64, stats: &mut SearchStats) -> Vec<Neighbor> {
        BruteForceIndex::radius_with_stats(self, query, radius, stats)
    }
}

impl SharedIndex for DynamicMapIndex {
    fn nn_shared(&self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nn_query_with_stats(query, stats)
    }

    fn knn_shared(&self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.knn_query_with_stats(query, k, stats)
    }

    fn radius_shared(&self, query: Vec3, radius: f64, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.radius_query_with_stats(query, radius, stats)
    }
}

// ---- Backend registry ----------------------------------------------------

/// A named backend factory: builds an index over a point slice.
pub type BackendFactory = Box<dyn Fn(&[Vec3]) -> Box<dyn SearchIndex> + Send + Sync>;

fn registry() -> &'static RwLock<BTreeMap<String, BackendFactory>> {
    static REGISTRY: OnceLock<RwLock<BTreeMap<String, BackendFactory>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map: BTreeMap<String, BackendFactory> = BTreeMap::new();
        map.insert("classic".into(), Box::new(|pts| Box::new(KdTree::from_points(pts))));
        map.insert("two-stage".into(), Box::new(|pts| Box::new(TwoStageKdTree::from_points(pts))));
        map.insert(
            "two-stage-approx".into(),
            Box::new(|pts| Box::new(ApproxIndex::from_points(pts))),
        );
        map.insert(
            "brute-force".into(),
            Box::new(|pts| Box::new(BruteForceIndex::from_points(pts))),
        );
        map.insert("dynamic".into(), Box::new(|pts| Box::new(DynamicMapIndex::from_points(pts))));
        RwLock::new(map)
    })
}

/// Registers (or replaces) a named backend factory, making it selectable
/// by name from any layer — `build_backend`, the pipeline's
/// `SearchBackendConfig::Custom`, and the backend-matrix bench all resolve
/// through this registry. Returns `true` when the name was new, `false`
/// when an existing factory was replaced.
///
/// The five built-in backends (`"classic"`, `"two-stage"`,
/// `"two-stage-approx"`, `"brute-force"`, `"dynamic"`) are pre-registered;
/// `tigris-accel` registers `"accelerator"` via
/// `register_accelerator_backend()`.
pub fn register_backend(
    name: impl Into<String>,
    factory: impl Fn(&[Vec3]) -> Box<dyn SearchIndex> + Send + Sync + 'static,
) -> bool {
    registry()
        .write()
        .expect("backend registry poisoned")
        .insert(name.into(), Box::new(factory))
        .is_none()
}

/// Builds the backend registered under `name` over `points`, or `None`
/// when no such backend is registered.
pub fn build_backend(name: &str, points: &[Vec3]) -> Option<Box<dyn SearchIndex>> {
    registry().read().expect("backend registry poisoned").get(name).map(|f| f(points))
}

/// The names of all registered backends, in ascending lexicographic
/// order.
///
/// The ordering is a documented guarantee, not an accident of the
/// registry's storage: sweeps, benches and logs iterate this list, and a
/// registration-order- or hash-dependent sequence would make their
/// output differ run to run (and machine to machine) for no semantic
/// reason. The explicit sort keeps the guarantee independent of the
/// backing container.
pub fn backend_names() -> Vec<String> {
    let mut names: Vec<String> =
        registry().read().expect("backend registry poisoned").keys().cloned().collect();
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| Vec3::new((i % 10) as f64, ((i / 10) % 10) as f64, (i / 100) as f64))
            .collect()
    }

    #[test]
    fn builtins_are_registered() {
        let names = backend_names();
        for builtin in ["classic", "two-stage", "two-stage-approx", "brute-force", "dynamic"] {
            assert!(names.iter().any(|n| n == builtin), "{builtin} missing from {names:?}");
        }
    }

    #[test]
    fn built_backends_report_their_registered_name() {
        let pts = grid(200);
        for name in ["classic", "two-stage", "two-stage-approx", "brute-force", "dynamic"] {
            let index = build_backend(name, &pts).unwrap();
            assert_eq!(index.name(), name);
            assert_eq!(index.len(), 200);
            assert!(!index.is_empty());
            assert_eq!(index.size().points, 200);
        }
    }

    #[test]
    fn unknown_backend_is_none() {
        assert!(build_backend("warp-drive", &grid(10)).is_none());
    }

    #[test]
    fn backend_names_are_deterministically_sorted() {
        // The listing order is a documented guarantee (sweeps, benches
        // and logs iterate it): ascending lexicographic, stable across
        // calls, registration order irrelevant.
        let names = backend_names();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "backend_names() must come back sorted");
        assert_eq!(names, backend_names(), "repeat calls must agree exactly");
        // A name registered "out of order" (lexicographically early,
        // registered late) still lands in its sorted position.
        register_backend("aaa-sort-probe", |pts| Box::new(KdTree::build(pts)));
        let with_probe = backend_names();
        assert_eq!(with_probe.first().map(String::as_str), Some("aaa-sort-probe"));
        let mut resorted = with_probe.clone();
        resorted.sort();
        assert_eq!(with_probe, resorted);
    }

    #[test]
    fn custom_backend_round_trips() {
        // Registering a wrapper under a new name makes it buildable.
        let fresh = register_backend("classic-copy", |pts| Box::new(KdTree::build(pts)));
        assert!(fresh);
        let mut index = build_backend("classic-copy", &grid(50)).unwrap();
        let mut stats = SearchStats::new();
        assert!(index.nn(Vec3::ZERO, &mut stats).is_some());
        // Re-registering the same name replaces, not duplicates.
        assert!(!register_backend("classic-copy", |pts| Box::new(KdTree::build(pts))));
    }

    #[test]
    fn trait_objects_serve_all_query_kinds() {
        let pts = grid(300);
        let mut index: Box<dyn SearchIndex> = build_backend("two-stage", &pts).unwrap();
        let mut stats = SearchStats::new();
        let q = Vec3::new(4.2, 5.1, 0.7);
        let nn = index.nn(q, &mut stats).unwrap();
        let knn = index.knn(q, 5, &mut stats);
        let ball = index.radius(q, 2.0, &mut stats);
        assert_eq!(knn[0].index, nn.index);
        assert!(ball.iter().any(|n| n.index == nn.index));
        assert_eq!(stats.queries, 3);
    }

    #[test]
    fn shared_view_matches_exclusive_queries() {
        let pts = grid(300);
        let queries = grid(40);
        for name in ["classic", "two-stage", "brute-force", "dynamic"] {
            let mut index = build_backend(name, &pts).unwrap();
            let mut exclusive = SearchStats::new();
            let expected: Vec<_> = queries
                .iter()
                .map(|&q| {
                    (
                        index.nn(q, &mut exclusive),
                        index.knn(q, 4, &mut exclusive),
                        index.radius(q, 2.0, &mut exclusive),
                    )
                })
                .collect();
            let shared = index.as_shared().unwrap_or_else(|| panic!("{name} must be shared"));
            let mut stats = SearchStats::new();
            let mut into_stats = SearchStats::new();
            let mut appended = Vec::new();
            for (&q, want) in queries.iter().zip(&expected) {
                assert_eq!(shared.nn_shared(q, &mut stats), want.0, "{name} nn");
                assert_eq!(shared.knn_shared(q, 4, &mut stats), want.1, "{name} knn");
                assert_eq!(shared.radius_shared(q, 2.0, &mut stats), want.2, "{name} radius");
                let start = appended.len();
                shared.radius_into_shared(q, 2.0, &mut appended, &mut into_stats);
                assert_eq!(&appended[start..], want.2.as_slice(), "{name} radius_into");
            }
            assert_eq!(stats, exclusive, "{name} metering must match");
            assert_eq!(into_stats.queries, queries.len() as u64, "{name} radius_into metering");
        }
    }

    #[test]
    fn stateful_backends_have_no_shared_view() {
        let index = build_backend("two-stage-approx", &grid(100)).unwrap();
        assert!(index.as_shared().is_none());
    }

    #[test]
    fn default_batch_methods_match_serial() {
        // BruteForceIndex routed through the trait's batch entry points.
        let pts = grid(120);
        let queries = grid(40);
        let mut a: Box<dyn SearchIndex> = Box::new(BruteForceIndex::new(pts.clone()));
        let mut b: Box<dyn SearchIndex> = Box::new(BruteForceIndex::new(pts));
        let mut sa = SearchStats::new();
        let mut sb = SearchStats::new();
        let serial: Vec<_> = queries.iter().map(|&q| a.nn(q, &mut sa)).collect();
        let batched = b.nn_batch(&queries, &BatchConfig::with_threads(3), &mut sb);
        assert_eq!(serial, batched);
        assert_eq!(sa, sb);
    }
}

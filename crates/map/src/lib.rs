//! Tigris mapping subsystem: long-running 3D reconstruction on top of the
//! registration pipeline.
//!
//! The paper's second motivating application (Sec. 2.2) is 3D
//! reconstruction: "a set of frames are aligned against one another and
//! merged together to form a global point cloud of the scene". Chaining
//! pairwise registrations alone accumulates *unbounded drift* — every
//! small per-pair error compounds along the trajectory. This crate turns
//! the streaming odometer into a stateful mapping service with the four
//! pieces a production back end needs:
//!
//! * **Dynamic map index** — the map grows as frames arrive, so it lives
//!   in `tigris_core::DynamicMapIndex` (static KD-tree + fresh-points
//!   buffer, merged by periodic rebuild; registered as the `"dynamic"`
//!   backend), never rebuilding from scratch per insert.
//! * **Submaps** ([`Submap`]) — the [`Mapper`] aggregates registered
//!   frames into pose-tagged submaps, spawned by travel distance or point
//!   budget. Each holds its points in the anchor keyframe's local frame
//!   behind its own dynamic index, so a pose-graph correction moves whole
//!   submaps rigidly instead of rewriting points. [`Mapper::query`] fans
//!   one lookup out across every overlapping submap.
//! * **Loop closure** — per frame, the mapper retrieves revisit candidates
//!   by *descriptor similarity* against past submaps (the same
//!   feature-space `KdTreeN` machinery KPCE matches descriptors with),
//!   then verifies geometrically by registering the current frame's
//!   [`tigris_pipeline::PreparedFrame`] against the candidate's stored
//!   keyframe — no front-end stage ever reruns. The retrieval +
//!   verification machinery lives in [`retrieval`], shared with
//!   `tigris-serve`'s cold-start relocalization.
//! * **Pose-graph optimization** — an accepted closure adds a long-range
//!   constraint and runs `tigris_geom::PoseGraph` (Gauss–Newton over
//!   SE(3), [`tigris_geom::RigidTransform::log`]/`exp`), redistributing
//!   the accumulated drift along the whole trajectory.
//!
//! The mapper *wraps* the [`tigris_pipeline::Odometer`]: each streamed
//! frame is prepared exactly once, serves as the odometer's reference for
//! one step, and is then retired into the map layer
//! ([`tigris_pipeline::Odometer::push_retiring`]) — the
//! `frames_prepared` accounting in [`MapperStats`] proves the front end
//! runs once per frame end to end.
//!
//! # Example
//!
//! ```no_run
//! use tigris_data::{Sequence, SequenceConfig};
//! use tigris_map::{Mapper, MapperConfig};
//!
//! // A closed-circuit sequence that revisits its start.
//! let seq = Sequence::generate(&SequenceConfig::loop_circuit(120.0, 5), 42);
//! let mut mapper = Mapper::new(MapperConfig::default());
//! for i in 0..seq.len() {
//!     let step = mapper.push(seq.frame(i)).unwrap();
//!     if let Some(closure) = step.closure {
//!         println!("frame {i}: closed loop against submap {}", closure.submap);
//!     }
//! }
//! println!("{} submaps, {} map points", mapper.submaps().len(), mapper.total_points());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod mapper;
pub mod retrieval;
pub mod submap;

pub use config::{ClosureConfig, MapperConfig, SubmapConfig};
pub use mapper::{FrozenMap, LoopClosure, Mapper, MapperStats, MapperStep};
pub use retrieval::{RetrievalHit, SignatureIndex};
pub use submap::{descriptor_mean, sort_map_neighbors, MapNeighbor, Submap};

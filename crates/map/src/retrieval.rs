//! Submap candidate retrieval and geometric verification — the shared
//! revisit-recognition machinery.
//!
//! Two consumers drive the exact same pipeline over a set of submaps:
//!
//! * **Loop closure** ([`crate::Mapper`]): "have I been here before?"
//!   while *building* a map — candidates are gated additionally by the
//!   drift-estimated pose offset and travel-scaled deviation allowances
//!   (the mapper has a pose estimate to compare against).
//! * **Cold-start relocalization** (`tigris-serve`): "where am I?"
//!   against a *frozen* map — no odometry history exists, so only the
//!   geometry-vs-geometry gates apply.
//!
//! Both share the three stages this module owns:
//!
//! 1. **Signature retrieval** ([`SignatureIndex`]): rank candidate
//!    submaps by mean-descriptor distance in the KPCE feature space
//!    (a [`KdTreeN`] over submap signatures).
//! 2. **Geometric verification** ([`verify_geometry`]): register the
//!    query frame's [`PreparedFrame`] against the candidate submap's
//!    stored keyframe — no front-end stage reruns.
//! 3. **Structure-overlap consistency** ([`structure_overlap`]): the
//!    anti-aliasing gate that rejects high-inlier false matches across
//!    self-similar structure by measuring how much of the frame's
//!    elevated geometry lands on stored submap structure under the
//!    verified transform.

use tigris_core::{BatchConfig, KdTreeN, Neighbor, SearchStats};
use tigris_geom::{RigidTransform, Vec3};
use tigris_pipeline::{
    register_prepared_with_prior, PreparedFrame, RegistrationConfig, RegistrationResult,
};

use crate::submap::Submap;

/// Height above a candidate submap's *lowest point* (its local ground
/// level — frames are in sensor coordinates, so absolute z is
/// sensor-height-relative) from which a point counts as *structure* for
/// the overlap gate. Ground aligns under almost any in-plane transform,
/// so it carries no verification signal.
pub const OVERLAP_MIN_HEIGHT: f64 = 1.0;
/// A transformed structure point must land within this distance of a
/// stored submap point to count as overlapping (meters).
pub const OVERLAP_RADIUS: f64 = 0.7;
/// Minimum structure points for the overlap fraction to be meaningful; a
/// frame with fewer elevated points cannot be verified at all.
pub const OVERLAP_MIN_POINTS: usize = 30;

/// One ranked retrieval candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievalHit {
    /// Id of the candidate submap.
    pub submap: usize,
    /// Distance between the query descriptor and the submap's signature
    /// in the KPCE feature space.
    pub distance: f64,
}

/// A feature-space index over submap signatures: the retrieval structure
/// both loop closure and relocalization rank candidates with.
///
/// The mapper rebuilds one per closure attempt over the frame's eligible
/// submaps (eligibility is pose- and recency-dependent); a frozen map
/// snapshot builds one once over every verifiable submap and shares it
/// across sessions ([`SignatureIndex`] queries take `&self`).
#[derive(Debug)]
pub struct SignatureIndex {
    /// Submap ids in index order (result indices map through this).
    ids: Vec<usize>,
    index: KdTreeN,
}

impl SignatureIndex {
    /// Builds the index over `eligible` (submap ids into `submaps`) using
    /// `dim`-dimensional signatures. Callers pre-filter eligibility —
    /// every listed submap's signature must have exactly `dim` entries.
    ///
    /// # Panics
    ///
    /// Panics when an eligible submap's signature dimension differs from
    /// `dim` (the caller's eligibility filter must have enforced it).
    pub fn build(submaps: &[Submap], eligible: &[usize], dim: usize) -> Self {
        SignatureIndex::from_signatures(
            eligible.iter().map(|&id| (id, submaps[id].descriptor())),
            dim,
        )
    }

    /// Builds the index from bare `(submap id, signature)` pairs — the
    /// form consumers that hold signatures outside a `Submap` use (the
    /// sharded serving layer's epochs keep compact payload archives, not
    /// live submaps). [`SignatureIndex::build`] delegates here, so both
    /// construction paths rank identically by construction.
    ///
    /// # Panics
    ///
    /// Panics when a signature's dimension differs from `dim`.
    pub fn from_signatures<'a, I>(entries: I, dim: usize) -> Self
    where
        I: IntoIterator<Item = (usize, &'a [f64])>,
    {
        let mut ids = Vec::new();
        let mut data = Vec::new();
        for (id, sig) in entries {
            assert_eq!(sig.len(), dim, "submap {id} signature dimension mismatch");
            ids.push(id);
            data.extend_from_slice(sig);
        }
        SignatureIndex { ids, index: KdTreeN::build(&data, dim) }
    }

    /// Number of indexed submap signatures.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no signature is indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The indexed submap ids, in index order.
    pub fn submap_ids(&self) -> &[usize] {
        &self.ids
    }

    /// Ranks candidate submaps by signature distance to `query`,
    /// dropping candidates farther than `max_distance`: the nearest
    /// signature when `candidates <= 1` and the two nearest at
    /// `candidates == 2` (the [`KdTreeN`]'s `nn`/`nn2` kernels — the
    /// mapper's loop-closure path); beyond two, an exhaustive ranking
    /// over all signatures, ascending by `(distance, index)` (candidate
    /// populations are submap-count-sized, so the scan is trivial next
    /// to one geometric verification — the serving layer's cold-start
    /// path, where trying more candidates buys recall).
    ///
    /// Returns hits best-first; `candidates == 0` returns nothing. At
    /// any budget, the hit list is a prefix of the same exhaustive
    /// ranking — budgets change how far down it verification looks,
    /// never the order.
    pub fn retrieve(
        &self,
        query: &[f64],
        candidates: usize,
        max_distance: f64,
    ) -> Vec<RetrievalHit> {
        if candidates == 0 || self.ids.is_empty() || query.len() != self.index.dim() {
            return Vec::new();
        }
        let hits = match candidates {
            1 => self.index.nn(query).into_iter().collect(),
            2 => self.index.nn2(query),
            _ => {
                let mut all: Vec<Neighbor> = (0..self.index.len())
                    .map(|i| {
                        let d2 = self
                            .index
                            .point(i)
                            .iter()
                            .zip(query)
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum::<f64>();
                        Neighbor::new(i, d2)
                    })
                    .collect();
                all.sort();
                all.truncate(candidates);
                all
            }
        };
        hits.into_iter()
            .filter(|h| h.distance() <= max_distance)
            .map(|h| RetrievalHit { submap: self.ids[h.index], distance: h.distance() })
            .collect()
    }
}

/// Registers `current` against a candidate submap's stored `keyframe`
/// under `cfg` — the geometric half of revisit verification. No prior is
/// applied (a revisit's relative pose is unconstrained by the stream) and
/// no front-end stage reruns: both frames' artifacts are reused as-is.
///
/// Returns `None` when the pair fails to match (starvation, mismatched
/// preparation): for retrieval purposes a failed match simply means "not
/// this candidate".
pub fn verify_geometry(
    current: &mut PreparedFrame,
    keyframe: &mut PreparedFrame,
    cfg: &RegistrationConfig,
) -> Option<RegistrationResult> {
    register_prepared_with_prior(current, keyframe, cfg, None).ok()
}

/// Fraction of the frame's *structure* points (local height ≥
/// [`OVERLAP_MIN_HEIGHT`] once placed into the submap's frame by
/// `relative`) that land within [`OVERLAP_RADIUS`] of a stored submap
/// point. Returns 0 when the frame offers fewer than
/// [`OVERLAP_MIN_POINTS`] structure points (unverifiable), or when the
/// submap is empty.
///
/// This is the decisive anti-aliasing gate: a genuine revisit re-observes
/// the same walls, poles and clutter, so the fraction is high; a false
/// match across self-similar structure (opposite arcs of a ring road,
/// mirrored corridors) aligns only the generic ground/corridor geometry —
/// away from the match center the walls curve apart and the fraction
/// collapses. Odometry drift cannot fool it: it compares geometry to
/// geometry and never consults pose estimates.
pub fn structure_overlap(points: &[Vec3], relative: &RigidTransform, submap: &Submap) -> f64 {
    let Some(bounds) = submap.local_bounds() else {
        return 0.0;
    };
    let structure_floor = bounds.min.z + OVERLAP_MIN_HEIGHT;
    let mut structure = 0usize;
    let mut hits = 0usize;
    for &p in points {
        let local = relative.apply(p);
        if local.z < structure_floor {
            continue;
        }
        structure += 1;
        if let Some(n) = submap.index().nn_query(local) {
            if n.distance_squared <= OVERLAP_RADIUS * OVERLAP_RADIUS {
                hits += 1;
            }
        }
    }
    if structure < OVERLAP_MIN_POINTS {
        return 0.0;
    }
    hits as f64 / structure as f64
}

/// [`structure_overlap`] with the per-point NN lookups batched through
/// the submap index's shared read-only batch path — the form the serving
/// layer uses, where one relocalization issues hundreds of NN queries
/// against an `Arc`-shared frozen submap. Answers are bit-identical to
/// the serial form (the index is exact and per-query answers are
/// independent); only the scheduling differs.
pub fn structure_overlap_batched(
    points: &[Vec3],
    relative: &RigidTransform,
    submap: &Submap,
    cfg: &BatchConfig,
) -> f64 {
    let Some(bounds) = submap.local_bounds() else {
        return 0.0;
    };
    structure_overlap_indexed(points, relative, submap.index(), bounds, cfg)
}

/// [`structure_overlap_batched`] over a bare index and its local bounds
/// instead of a [`Submap`] — the form consumers that rebuilt the index
/// from an archived payload use (the sharded serving layer's resident
/// tiles). [`structure_overlap_batched`] delegates here, so the two entry
/// points cannot drift.
pub fn structure_overlap_indexed(
    points: &[Vec3],
    relative: &RigidTransform,
    index: &tigris_core::DynamicMapIndex,
    bounds: &tigris_geom::Aabb,
    cfg: &BatchConfig,
) -> f64 {
    let structure_floor = bounds.min.z + OVERLAP_MIN_HEIGHT;
    let transformed: Vec<Vec3> = points
        .iter()
        .map(|&p| relative.apply(p))
        .filter(|local| local.z >= structure_floor)
        .collect();
    if transformed.len() < OVERLAP_MIN_POINTS {
        return 0.0;
    }
    let mut stats = SearchStats::new();
    let answers = index.nn_batch_shared(&transformed, cfg, &mut stats);
    let hits = answers
        .iter()
        .filter(|n| matches!(n, Some(n) if n.distance_squared <= OVERLAP_RADIUS * OVERLAP_RADIUS))
        .count();
    hits as f64 / transformed.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigris_pipeline::prepare_frame;

    use tigris_geom::PointCloud;

    /// A submap with a hand-set signature, for retrieval-order tests.
    fn signed_submap(id: usize, signature: &[f64]) -> Submap {
        let mut s = Submap::new(id, id, RigidTransform::IDENTITY, 64);
        s.set_descriptor_for_test(signature.to_vec());
        s
    }

    #[test]
    fn retrieval_ranks_by_signature_distance() {
        let submaps = vec![
            signed_submap(0, &[0.0, 0.0]),
            signed_submap(1, &[10.0, 0.0]),
            signed_submap(2, &[3.0, 0.0]),
            signed_submap(3, &[100.0, 0.0]),
        ];
        let eligible = vec![0, 1, 2, 3];
        let index = SignatureIndex::build(&submaps, &eligible, 2);
        assert_eq!(index.len(), 4);

        // Two-nearest retrieval, best first.
        let hits = index.retrieve(&[2.0, 0.0], 2, f64::INFINITY);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].submap, 2);
        assert_eq!(hits[1].submap, 0);
        assert!(hits[0].distance <= hits[1].distance);

        // Single-candidate retrieval returns only the nearest.
        let hits = index.retrieve(&[2.0, 0.0], 1, f64::INFINITY);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].submap, 2);

        // The distance gate filters far candidates.
        let hits = index.retrieve(&[2.0, 0.0], 2, 1.5);
        assert_eq!(hits.len(), 1, "only submap 2 is within 1.5: {hits:?}");

        // Zero candidates, wrong dimension, empty index: all empty.
        assert!(index.retrieve(&[2.0, 0.0], 0, f64::INFINITY).is_empty());
        assert!(index.retrieve(&[2.0], 2, f64::INFINITY).is_empty());
        assert!(SignatureIndex::build(&submaps, &[], 2)
            .retrieve(&[0.0, 0.0], 2, f64::INFINITY)
            .is_empty());
    }

    /// The pre-extraction inline retrieval from `Mapper::attempt_closure`,
    /// kept verbatim as the bit-identity oracle: eligible submaps'
    /// signatures into a fresh `KdTreeN`, `nn`/`nn2` by candidate count,
    /// then the distance gate applied while iterating.
    fn inline_retrieval_oracle(
        submaps: &[Submap],
        eligible: &[usize],
        query: &[f64],
        candidates: usize,
        max_descriptor_distance: f64,
    ) -> Vec<(usize, f64)> {
        let dim = query.len();
        let data: Vec<f64> =
            eligible.iter().flat_map(|&id| submaps[id].descriptor().iter().copied()).collect();
        let feature_index = KdTreeN::build(&data, dim);
        let hits = if candidates <= 1 {
            feature_index.nn(query).into_iter().collect()
        } else {
            feature_index.nn2(query)
        };
        let mut out = Vec::new();
        for hit in hits {
            if hit.distance() > max_descriptor_distance {
                continue;
            }
            out.push((eligible[hit.index], hit.distance()));
        }
        out
    }

    #[test]
    fn retrieval_is_bit_identical_to_the_inline_oracle() {
        // A signature population with near-ties and an ineligible member,
        // swept over both candidate counts and several gates.
        let submaps = vec![
            signed_submap(0, &[1.0, 2.0, 3.0]),
            signed_submap(1, &[1.0, 2.0, 3.0000001]),
            signed_submap(2, &[4.0, -1.0, 0.5]),
            signed_submap(3, &[0.9, 2.1, 2.9]),
            signed_submap(4, &[50.0, 50.0, 50.0]),
        ];
        let eligible = vec![0, 1, 3, 4];
        let queries = [[1.0, 2.0, 3.0], [0.95, 2.05, 2.95], [50.0, 50.0, 49.0], [-3.0, 0.0, 0.0]];
        for candidates in [1usize, 2] {
            for gate in [f64::INFINITY, 5.0, 0.2, 0.0] {
                for q in &queries {
                    let index = SignatureIndex::build(&submaps, &eligible, 3);
                    let got: Vec<(usize, f64)> = index
                        .retrieve(q, candidates, gate)
                        .into_iter()
                        .map(|h| (h.submap, h.distance))
                        .collect();
                    let oracle = inline_retrieval_oracle(&submaps, &eligible, q, candidates, gate);
                    assert_eq!(got, oracle, "candidates={candidates} gate={gate} q={q:?}");
                }
            }
        }
    }

    /// A structured frame: ground plane plus a distinctive wall.
    fn frame_points() -> Vec<Vec3> {
        let mut pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                pts.push(Vec3::new(i as f64 * 0.3, j as f64 * 0.3, 0.0));
            }
        }
        for i in 0..20 {
            for k in 0..12 {
                pts.push(Vec3::new(i as f64 * 0.3, 6.0, 0.3 + k as f64 * 0.3));
            }
        }
        pts
    }

    fn populated_submap() -> Submap {
        let mut submap = Submap::new(0, 0, RigidTransform::IDENTITY, 256);
        submap.insert_frame(0, &frame_points(), &RigidTransform::IDENTITY);
        submap
    }

    /// The pre-extraction inline overlap from `Mapper::closure_overlap`,
    /// kept verbatim as the bit-identity oracle.
    fn inline_overlap_oracle(points: &[Vec3], relative: &RigidTransform, submap: &Submap) -> f64 {
        let Some(bounds) = submap.local_bounds() else {
            return 0.0;
        };
        let structure_floor = bounds.min.z + OVERLAP_MIN_HEIGHT;
        let mut structure = 0usize;
        let mut hits = 0usize;
        for &p in points {
            let local = relative.apply(p);
            if local.z < structure_floor {
                continue;
            }
            structure += 1;
            if let Some(n) = submap.index().nn_query(local) {
                if n.distance_squared <= OVERLAP_RADIUS * OVERLAP_RADIUS {
                    hits += 1;
                }
            }
        }
        if structure < OVERLAP_MIN_POINTS {
            return 0.0;
        }
        hits as f64 / structure as f64
    }

    #[test]
    fn structure_overlap_matches_the_inline_oracle_bitwise() {
        let submap = populated_submap();
        let frame = frame_points();
        let transforms = [
            RigidTransform::IDENTITY,
            RigidTransform::from_translation(Vec3::new(0.4, -0.2, 0.0)),
            RigidTransform::from_axis_angle(Vec3::Z, 0.3, Vec3::new(1.0, 0.5, 0.0)),
            RigidTransform::from_axis_angle(
                Vec3::Z,
                std::f64::consts::PI,
                Vec3::new(6.0, 12.0, 0.0),
            ),
        ];
        for t in &transforms {
            let expected = inline_overlap_oracle(&frame, t, &submap);
            let got = structure_overlap(&frame, t, &submap);
            assert!(got.to_bits() == expected.to_bits(), "{got} != {expected} for {t}");
            // The batched form answers identically (exact index, independent
            // per-point answers).
            let batched = structure_overlap_batched(&frame, t, &submap, &BatchConfig::serial());
            assert!(batched.to_bits() == expected.to_bits(), "batched {batched} != {expected}");
        }
    }

    #[test]
    fn structure_overlap_separates_genuine_from_false_matches() {
        let submap = populated_submap();
        let frame = frame_points();
        // The genuine revisit: same geometry, same place.
        let genuine = structure_overlap(&frame, &RigidTransform::IDENTITY, &submap);
        assert!(genuine > 0.95, "genuine overlap {genuine}");
        // A gross mismatch: the wall lands far from any stored structure.
        let wrong = structure_overlap(
            &frame,
            &RigidTransform::from_translation(Vec3::new(30.0, 30.0, 0.0)),
            &submap,
        );
        assert!(wrong < 0.1, "false-match overlap {wrong}");
        // An empty submap or a structure-poor frame is unverifiable.
        let empty = Submap::new(9, 0, RigidTransform::IDENTITY, 64);
        assert_eq!(structure_overlap(&frame, &RigidTransform::IDENTITY, &empty), 0.0);
        let ground_only: Vec<Vec3> = frame.iter().copied().filter(|p| p.z < 0.1).collect();
        assert_eq!(structure_overlap(&ground_only, &RigidTransform::IDENTITY, &submap), 0.0);
    }

    #[test]
    fn verify_geometry_recovers_a_known_offset() {
        let cfg = RegistrationConfig {
            voxel_size: 0.0,
            keypoint: tigris_pipeline::config::KeypointAlgorithm::Uniform { voxel: 0.9 },
            max_correspondence_distance: 1.0,
            ..RegistrationConfig::default()
        };
        let keyframe_cloud = PointCloud::from_points(frame_points());
        let offset = RigidTransform::from_translation(Vec3::new(0.25, 0.1, 0.0));
        let current_cloud = keyframe_cloud.transformed(&offset.inverse());
        let mut keyframe = prepare_frame(&keyframe_cloud, &cfg).unwrap();
        let mut current = prepare_frame(&current_cloud, &cfg).unwrap();
        let result = verify_geometry(&mut current, &mut keyframe, &cfg).expect("must match");
        assert!(
            (result.transform.translation - offset.translation).norm() < 0.05,
            "verified {} vs {}",
            result.transform.translation,
            offset.translation
        );
        assert!(result.inlier_correspondences > 0);

        // A non-matching pair is None, not a panic.
        let mut empty_far = prepare_frame(
            &keyframe_cloud
                .transformed(&RigidTransform::from_translation(Vec3::new(500.0, 0.0, 0.0))),
            &cfg,
        )
        .unwrap();
        assert!(verify_geometry(&mut empty_far, &mut keyframe, &cfg).is_none());
    }
}

//! Mapper configuration: submap spawning, loop-closure gating and
//! pose-graph knobs layered over the registration pipeline's
//! [`RegistrationConfig`].

use tigris_pipeline::RegistrationConfig;

/// When the [`crate::Mapper`] starts a new submap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmapConfig {
    /// Spawn a new submap once the vehicle has traveled this far (meters)
    /// inside the current one.
    pub spawn_distance: f64,
    /// Spawn a new submap once the current one holds this many points
    /// (whichever trips first).
    pub point_budget: usize,
    /// Fresh-buffer capacity of each submap's
    /// [`tigris_core::DynamicMapIndex`] — how many inserted points
    /// accumulate before the submap's static tree absorbs them.
    pub fresh_capacity: usize,
}

impl Default for SubmapConfig {
    fn default() -> Self {
        SubmapConfig { spawn_distance: 15.0, point_budget: 120_000, fresh_capacity: 2048 }
    }
}

/// Loop-closure candidate retrieval and verification gates.
///
/// Retrieval is descriptor-based (submap mean descriptors in the KPCE
/// feature space); every gate after that defends against a false closure,
/// which would corrupt the whole trajectory — the asymmetric risk that
/// makes the acceptance path deliberately conservative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosureConfig {
    /// Master switch; `false` turns the mapper into pure submap odometry.
    pub enabled: bool,
    /// A candidate submap must be at least this many submaps older than
    /// the current one (adjacent submaps overlap trivially).
    pub min_submap_gap: usize,
    /// Retrieval gate: a candidate's mean-descriptor distance to the
    /// current frame's must not exceed this (`f64::INFINITY` keeps
    /// rank-only retrieval).
    pub max_descriptor_distance: f64,
    /// Verified candidates per frame: at most this many geometric
    /// verifications run (best descriptor matches first; capped at 2 by
    /// the feature index's two-nearest retrieval). `0` skips retrieval
    /// and verification entirely.
    pub candidates: usize,
    /// Retrieval gate on the *drift-estimated* offset between the current
    /// pose and a candidate's anchor (meters): even heavily drifted, a
    /// genuine revisit is not across the map.
    pub max_expected_offset: f64,
    /// Verification gate: the registered relative transform's translation
    /// must stay below this (meters) — a revisit is physically nearby.
    pub max_offset: f64,
    /// Verification gate: minimum surviving KPCE correspondences.
    pub min_inliers: usize,
    /// Verification gate: base translation allowance (meters) between the
    /// verified relative and the drift-estimated one; the actual gate is
    /// `max_deviation + deviation_rate × distance traveled since the
    /// candidate's anchor`, since odometry drift grows with travel.
    pub max_deviation: f64,
    /// Per-meter-traveled growth of the translation-deviation allowance
    /// (dimensionless; 0.25 tolerates 25% translational drift).
    pub deviation_rate: f64,
    /// Verification gate: structure-overlap consistency. Of the current
    /// frame's elevated (non-ground) points placed into the candidate
    /// submap by the verified transform, at least this fraction must land
    /// on stored submap structure. This is the gate drift cannot fool —
    /// it compares geometry against geometry, never consulting the
    /// drifted pose estimates — and it is what rejects high-inlier false
    /// matches across self-similar structure (only the generic corridor
    /// aligns there; the walls curve apart away from the match center).
    pub min_structure_overlap: f64,
    /// Accepted-closure cooldown: skip retrieval for this many frames
    /// after an acceptance (the graph was just optimized; immediate
    /// re-closures add nothing).
    pub cooldown_frames: usize,
}

impl Default for ClosureConfig {
    fn default() -> Self {
        ClosureConfig {
            enabled: true,
            min_submap_gap: 3,
            max_descriptor_distance: f64::INFINITY,
            candidates: 2,
            max_expected_offset: 25.0,
            max_offset: 10.0,
            min_inliers: 5,
            max_deviation: 10.0,
            deviation_rate: 0.25,
            min_structure_overlap: 0.75,
            cooldown_frames: 10,
        }
    }
}

/// Full mapper configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MapperConfig {
    /// The registration pipeline configuration driving the wrapped
    /// odometer *and* loop-closure verification (both act on frames
    /// prepared under these front-end knobs).
    pub registration: RegistrationConfig,
    /// Submap spawning policy.
    pub submap: SubmapConfig,
    /// Loop-closure retrieval and gating.
    pub closure: ClosureConfig,
    /// Gauss–Newton iterations per pose-graph optimization.
    pub optimize_iterations: usize,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            registration: RegistrationConfig::default(),
            submap: SubmapConfig::default(),
            closure: ClosureConfig::default(),
            optimize_iterations: 15,
        }
    }
}

impl MapperConfig {
    /// The serving-oriented mapping profile: denser submaps, denser loop
    /// closures — for maps destined to be frozen and *localized against*
    /// (`tigris-serve`), where global pose accuracy and keyframe
    /// coverage matter more than build cost.
    ///
    /// * **Submaps spawn every 6 m** instead of 15. Each anchor retires
    ///   its full frame preparation as a stored keyframe, and keyframes
    ///   are what cold-start relocalization geometrically verifies
    ///   against — so anchor spacing *is* relocalization coverage: a
    ///   query more than a few meters from every keyframe may retrieve
    ///   the right submap yet fail verification (too little view
    ///   overlap for the prior-less match).
    /// * **Closure gating trades attempt cost for recall**: every
    ///   eligible submap is retrieval-ranked (exhaustive beyond the
    ///   two-nearest kernel), the inlier floor drops to 3 (specificity
    ///   against ring-road aliases comes from the structure-overlap
    ///   gate, which rejects them at ≤0.5 against genuine ≥0.95), and
    ///   the post-acceptance cooldown shrinks so a re-driven stretch
    ///   keeps stitching itself to the first pass every few frames —
    ///   the continuous re-closure that pins a multi-pass trajectory to
    ///   sub-meter global consistency.
    ///
    /// The default profile remains the cheaper choice for pure
    /// mapping/odometry workloads.
    pub fn serving() -> Self {
        MapperConfig {
            submap: SubmapConfig { spawn_distance: 6.0, ..SubmapConfig::default() },
            closure: ClosureConfig {
                candidates: 16,
                min_inliers: 3,
                cooldown_frames: 4,
                ..ClosureConfig::default()
            },
            ..MapperConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = MapperConfig::default();
        assert!(cfg.submap.spawn_distance > 0.0);
        assert!(cfg.submap.point_budget > 0);
        assert!(cfg.closure.enabled);
        assert!(cfg.closure.max_offset <= cfg.closure.max_expected_offset);
        assert!(cfg.optimize_iterations > 0);
        assert_eq!(cfg.registration.validate(), Ok(()));
    }
}

//! The incremental mapper: streaming odometry → submaps → loop closure →
//! pose-graph optimization.
//!
//! [`Mapper::push`] is the single entry point. Per frame it:
//!
//! 1. advances the wrapped [`Odometer`] (which prepares the frame's front
//!    end exactly once and hands the *previous* frame's preparation back
//!    via [`Odometer::push_retiring`]);
//! 2. extends the trajectory (corrected and raw-odometry pose chains) and
//!    the pose graph's odometry edges;
//! 3. aggregates the frame's prepared points into the current [`Submap`]
//!    (spawning a new one by travel distance / point budget);
//! 4. attempts loop closure via the shared [`crate::retrieval`] machinery:
//!    descriptor retrieval over past submaps' signatures
//!    ([`SignatureIndex`]), geometric verification
//!    ([`retrieval::verify_geometry`]) against the candidate's keyframe,
//!    and — on acceptance — Gauss–Newton pose-graph optimization that
//!    redistributes the accumulated drift.

use std::sync::Arc;
use std::time::Instant;

use tigris_geom::{OptimizeReport, PointCloud, PoseGraph, PoseGraphEdge, RigidTransform, Vec3};
use tigris_obs::{Counter, Histogram, Registry};
use tigris_pipeline::{Odometer, RegistrationError, RegistrationResult};

use crate::config::MapperConfig;
use crate::retrieval::{self, SignatureIndex};
use crate::submap::{descriptor_mean, sort_map_neighbors, MapNeighbor, Submap};

/// Weight of the weak continuity edge bridging a matching failure: keeps
/// the pose graph connected without pretending the unmeasured motion is a
/// real constraint.
const BREAK_EDGE_WEIGHT: f64 = 1e-3;

/// An accepted, verified loop closure.
#[derive(Debug, Clone, Copy)]
pub struct LoopClosure {
    /// The frame that closed the loop (the current frame at detection).
    pub frame: usize,
    /// The past keyframe it closed against (a submap anchor).
    pub matched_frame: usize,
    /// The submap the keyframe anchors.
    pub submap: usize,
    /// Verified relative transform: the keyframe-frame coordinates of the
    /// closing frame (`T_kf⁻¹ · T_frame`), straight from
    /// `register_prepared`.
    pub relative: RigidTransform,
    /// KPCE correspondences surviving rejection in the verification.
    pub inliers: usize,
    /// What the pose-graph optimization this closure triggered did.
    pub report: OptimizeReport,
}

/// Counters over a mapper's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapperStats {
    /// Frames accepted into the trajectory (including break frames).
    pub frames: usize,
    /// Odometry steps (successful pairwise matches).
    pub steps: usize,
    /// Front-end preparations billed across all registrations (odometry
    /// *and* closure verifications). On a failure-free stream this equals
    /// [`MapperStats::frames`]: every frame's front end ran exactly once.
    pub frames_prepared: usize,
    /// Registrations served by an already-prepared frame.
    pub frames_reused: usize,
    /// Geometric verifications attempted.
    pub closures_attempted: usize,
    /// Closures accepted (each triggered one optimization).
    pub closures_accepted: usize,
    /// Pose-graph optimizations run.
    pub optimizations: usize,
    /// Matching failures bridged with a weak continuity edge.
    pub breaks: usize,
}

/// The mapper's lifetime counters as handles into its per-mapper obs
/// [`Registry`] (`map.*` names): the registry is the single backing
/// store, and [`Mapper::stats`] snapshots a [`MapperStats`] from it.
#[derive(Debug)]
struct MapMetrics {
    registry: Arc<Registry>,
    /// Wall time of each [`Mapper::push`] in microseconds — the
    /// mapper-side latency distribution the SLO engine and ops exporter
    /// watch (`map.frame_us`).
    frame_us: Arc<Histogram>,
    frames: Arc<Counter>,
    steps: Arc<Counter>,
    frames_prepared: Arc<Counter>,
    frames_reused: Arc<Counter>,
    closures_attempted: Arc<Counter>,
    closures_accepted: Arc<Counter>,
    optimizations: Arc<Counter>,
    breaks: Arc<Counter>,
}

impl MapMetrics {
    fn new() -> Self {
        let registry = Arc::new(Registry::new());
        MapMetrics {
            frame_us: registry.histogram("map.frame_us"),
            frames: registry.counter("map.frames"),
            steps: registry.counter("map.steps"),
            frames_prepared: registry.counter("map.frames_prepared"),
            frames_reused: registry.counter("map.frames_reused"),
            closures_attempted: registry.counter("map.closures_attempted"),
            closures_accepted: registry.counter("map.closures_accepted"),
            optimizations: registry.counter("map.optimizations"),
            breaks: registry.counter("map.breaks"),
            registry,
        }
    }

    fn snapshot(&self) -> MapperStats {
        MapperStats {
            frames: self.frames.get() as usize,
            steps: self.steps.get() as usize,
            frames_prepared: self.frames_prepared.get() as usize,
            frames_reused: self.frames_reused.get() as usize,
            closures_attempted: self.closures_attempted.get() as usize,
            closures_accepted: self.closures_accepted.get() as usize,
            optimizations: self.optimizations.get() as usize,
            breaks: self.breaks.get() as usize,
        }
    }
}

/// What one [`Mapper::push`] did.
#[derive(Debug, Clone, Copy)]
pub struct MapperStep {
    /// Trajectory index of the pushed frame.
    pub frame: usize,
    /// Corrected world pose (post-optimization if a closure fired).
    pub pose: RigidTransform,
    /// Raw odometry world pose (never optimized) — the drift baseline.
    pub raw_pose: RigidTransform,
    /// Id of the submap the frame was aggregated into.
    pub submap: usize,
    /// Whether this frame spawned (and anchors) a new submap.
    pub spawned_submap: bool,
    /// The loop closure this frame produced, if any.
    pub closure: Option<LoopClosure>,
}

/// A finished map, moved out of its [`Mapper`] by [`Mapper::freeze`]:
/// the submaps (points, indices, stored keyframes), the corrected and
/// raw trajectories, the accepted closures and the lifetime counters.
///
/// Freezing is a *move*, not a copy — no point cloud, index or keyframe
/// is duplicated. The frozen map is the hand-off between the write side
/// (one `Mapper` building the map) and the read side (`tigris-serve`'s
/// `MapSnapshot`, which shares it immutably across many localization
/// sessions).
#[derive(Debug)]
pub struct FrozenMap {
    /// The configuration the map was built under (its registration
    /// front-end knobs are what query frames must be prepared with).
    pub config: MapperConfig,
    /// The submaps, with their dynamic indices and stored keyframes.
    pub submaps: Vec<Submap>,
    /// Corrected world pose per trajectory frame.
    pub poses: Vec<RigidTransform>,
    /// Raw odometry world pose per trajectory frame (drift baseline).
    pub raw_poses: Vec<RigidTransform>,
    /// Every accepted loop closure, in order.
    pub closures: Vec<LoopClosure>,
    /// The mapper's lifetime counters at freeze time.
    pub stats: MapperStats,
}

/// The incremental mapping service; see the [module docs](self).
#[derive(Debug)]
pub struct Mapper {
    config: MapperConfig,
    odometer: Odometer,
    submaps: Vec<Submap>,
    current_submap: usize,
    /// Corrected world pose per trajectory frame (pose-graph nodes).
    poses: Vec<RigidTransform>,
    /// Raw odometry chain, for drift comparison.
    raw_poses: Vec<RigidTransform>,
    /// Cumulative odometry distance per frame (meters) — scales the
    /// loop-closure deviation allowance with how far drift accumulated.
    travel: Vec<f64>,
    /// All pose-graph constraint edges (odometry, break bridges, loops).
    edges: Vec<PoseGraphEdge>,
    closures: Vec<LoopClosure>,
    metrics: MapMetrics,
    /// Submap whose anchor is the odometer's current reference frame;
    /// its preparation is stored as the keyframe when it retires.
    pending_keyframe: Option<usize>,
    last_closure_frame: Option<usize>,
}

impl Mapper {
    /// A fresh mapper over the given configuration.
    pub fn new(config: MapperConfig) -> Self {
        tigris_obs::init_from_env();
        let odometer = Odometer::new(config.registration.clone());
        let metrics = MapMetrics::new();
        tigris_obs::ops::register_service("map", &metrics.registry, None);
        Mapper {
            config,
            odometer,
            submaps: Vec::new(),
            current_submap: 0,
            poses: Vec::new(),
            raw_poses: Vec::new(),
            travel: Vec::new(),
            edges: Vec::new(),
            closures: Vec::new(),
            metrics,
            pending_keyframe: None,
            last_closure_frame: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Corrected world pose per trajectory frame.
    pub fn poses(&self) -> &[RigidTransform] {
        &self.poses
    }

    /// Raw odometry world pose per trajectory frame (drift baseline).
    pub fn raw_poses(&self) -> &[RigidTransform] {
        &self.raw_poses
    }

    /// The submaps built so far.
    pub fn submaps(&self) -> &[Submap] {
        &self.submaps
    }

    /// Every accepted loop closure, in order.
    pub fn closures(&self) -> &[LoopClosure] {
        &self.closures
    }

    /// Lifetime counters, snapshotted from the mapper's metrics registry.
    pub fn stats(&self) -> MapperStats {
        self.metrics.snapshot()
    }

    /// This mapper's obs metrics registry: every lifetime counter under
    /// `map.*` names — the backing store [`Mapper::stats`] snapshots
    /// from. Exporters read it without touching the mapper.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.metrics.registry
    }

    /// Total points aggregated across all submaps.
    pub fn total_points(&self) -> usize {
        self.submaps.iter().map(Submap::len).sum()
    }

    /// Freezes the mapper, moving its map out as an immutable
    /// [`FrozenMap`] (zero point copies). The wrapped odometer — and with
    /// it the current reference frame's preparation — is dropped: a
    /// frozen map no longer consumes frames.
    pub fn freeze(self) -> FrozenMap {
        FrozenMap {
            config: self.config,
            submaps: self.submaps,
            poses: self.poses,
            raw_poses: self.raw_poses,
            closures: self.closures,
            stats: self.metrics.snapshot(),
        }
    }

    /// Consumes one LiDAR frame (sensor coordinates).
    ///
    /// # Errors
    ///
    /// Propagates [`RegistrationError`] from the wrapped odometer. A frame
    /// that fails to *prepare* leaves the mapper unchanged; a frame that
    /// prepares but fails to *match* becomes a trajectory node at the last
    /// corrected pose, bridged by a weak continuity edge (its points are
    /// not aggregated — the pose is a guess, not a measurement).
    pub fn push(&mut self, frame: &PointCloud) -> Result<MapperStep, RegistrationError> {
        let _span =
            tigris_obs::span!("map.insert_frame", frame = self.poses.len(), points = frame.len());
        let t0 = Instant::now();
        let processed_before = self.odometer.frames_processed();
        let result = match self.odometer.push_retiring(frame) {
            Err(err) => {
                if self.odometer.frames_processed() > processed_before {
                    // Prepared fine, failed to match: the odometer kept
                    // the new frame as its reference; bridge the gap.
                    self.handle_break();
                }
                Err(err)
            }
            Ok((None, _)) => Ok(self.accept_first_frame()),
            Ok((Some(step), retired)) => {
                // The displaced reference retires into the map layer: if
                // it anchors a submap, it becomes that submap's keyframe.
                if let (Some(prep), Some(submap)) = (retired, self.pending_keyframe.take()) {
                    self.submaps[submap].set_keyframe(prep);
                }
                Ok(self.accept_step(&step.relative, &step.registration))
            }
        };
        self.metrics.frame_us.record(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
        result
    }

    /// All map points within `radius` of the world-frame `point`, fanned
    /// out across every submap whose bounds the query sphere overlaps.
    /// Results are sorted ascending by `(distance, submap, index)`;
    /// regions covered by several submaps may return near-duplicates (one
    /// per covering submap).
    pub fn query(&self, point: Vec3, radius: f64) -> Vec<MapNeighbor> {
        let mut out: Vec<MapNeighbor> = Vec::new();
        for submap in &self.submaps {
            out.extend(submap.query(point, radius));
        }
        sort_map_neighbors(&mut out);
        out
    }

    /// The drift-corrected global cloud: every submap's points under its
    /// current anchor pose. Callers wanting compactness can
    /// `voxel_downsample` the result.
    pub fn global_cloud(&self) -> PointCloud {
        let mut cloud = PointCloud::new();
        for submap in &self.submaps {
            cloud.extend(submap.world_points());
        }
        cloud
    }

    // ---- Per-frame internals ---------------------------------------------

    fn accept_first_frame(&mut self) -> MapperStep {
        debug_assert!(self.poses.is_empty(), "first odometer frame but mapper has nodes");
        self.poses.push(RigidTransform::IDENTITY);
        self.raw_poses.push(RigidTransform::IDENTITY);
        self.travel.push(0.0);
        self.metrics.frames.inc();
        self.spawn_submap(0);
        self.aggregate_frame(0);
        MapperStep {
            frame: 0,
            pose: RigidTransform::IDENTITY,
            raw_pose: RigidTransform::IDENTITY,
            submap: self.current_submap,
            spawned_submap: true,
            closure: None,
        }
    }

    fn accept_step(
        &mut self,
        relative: &RigidTransform,
        registration: &RegistrationResult,
    ) -> MapperStep {
        let frame = self.poses.len();
        let pose = *self.poses.last().unwrap() * *relative;
        let raw_pose = *self.raw_poses.last().unwrap() * *relative;
        self.poses.push(pose);
        self.raw_poses.push(raw_pose);
        self.travel.push(self.travel.last().unwrap() + relative.translation_norm());
        self.edges.push(PoseGraphEdge::new(frame - 1, frame, *relative));
        self.metrics.frames.inc();
        self.metrics.steps.inc();
        self.metrics.frames_prepared.add(registration.profile.frames_prepared as u64);
        self.metrics.frames_reused.add(registration.profile.frames_reused as u64);

        let spawned = self.maybe_spawn_submap(frame, relative.translation_norm());
        self.aggregate_frame(frame);
        let closure = if self.config.closure.enabled { self.attempt_closure(frame) } else { None };

        MapperStep {
            frame,
            // Re-read: an accepted closure just optimized the graph.
            pose: self.poses[frame],
            raw_pose,
            submap: self.current_submap,
            spawned_submap: spawned,
            closure,
        }
    }

    /// Bridges a matching failure: the odometer's new reference frame gets
    /// a node at the last corrected pose, weakly tied to its predecessor
    /// so the graph stays connected. Its points are not aggregated.
    fn handle_break(&mut self) {
        // The displaced reference was dropped with the error; a keyframe
        // pending on it is lost.
        self.pending_keyframe = None;
        let frame = self.poses.len();
        let last = *self.poses.last().expect("a matching failure implies a previous frame");
        self.poses.push(last);
        let last_raw = *self.raw_poses.last().unwrap();
        self.raw_poses.push(last_raw);
        self.travel.push(*self.travel.last().unwrap());
        self.edges.push(PoseGraphEdge::weighted(
            frame - 1,
            frame,
            RigidTransform::IDENTITY,
            BREAK_EDGE_WEIGHT,
        ));
        self.metrics.frames.inc();
        self.metrics.breaks.inc();
        tigris_obs::event!("map.break", frame = frame);
    }

    fn spawn_submap(&mut self, frame: usize) {
        let id = self.submaps.len();
        self.submaps.push(Submap::new(
            id,
            frame,
            self.poses[frame],
            self.config.submap.fresh_capacity,
        ));
        self.current_submap = id;
        self.pending_keyframe = Some(id);
    }

    fn maybe_spawn_submap(&mut self, frame: usize, step_distance: f64) -> bool {
        let current = &mut self.submaps[self.current_submap];
        current.add_travel(step_distance);
        if current.travel() >= self.config.submap.spawn_distance
            || current.len() >= self.config.submap.point_budget
        {
            self.spawn_submap(frame);
            true
        } else {
            false
        }
    }

    /// Aggregates the odometer's current reference frame (the frame just
    /// pushed) into the current submap — points into the dynamic index,
    /// descriptors into the submap signature. No front-end stage runs:
    /// everything is read from the retained preparation.
    fn aggregate_frame(&mut self, frame: usize) {
        let prep = self
            .odometer
            .reference_frame()
            .expect("aggregate_frame runs right after a successful push");
        let submap = &mut self.submaps[self.current_submap];
        let local = submap.anchor_pose().inverse() * self.poses[frame];
        submap.insert_frame(frame, prep.points(), &local);
        submap.absorb_descriptors(prep.descriptors());
    }

    // ---- Loop closure -----------------------------------------------------

    /// Descriptor retrieval + geometric verification + (on acceptance)
    /// pose-graph optimization. Returns the accepted closure, if any.
    fn attempt_closure(&mut self, frame: usize) -> Option<LoopClosure> {
        let gate = self.config.closure;
        if gate.candidates == 0 {
            return None;
        }
        if let Some(last) = self.last_closure_frame {
            if frame.saturating_sub(last) < gate.cooldown_frames {
                return None;
            }
        }
        let _span = tigris_obs::span!("map.closure", frame = frame, candidates = gate.candidates);
        let query = descriptor_mean(self.odometer.reference_frame()?.descriptors())?;

        // Eligible past submaps: old enough, keyframe present, signature
        // comparable, and plausibly nearby even under drift.
        let eligible: Vec<usize> = self
            .submaps
            .iter()
            .filter(|s| {
                s.has_keyframe()
                    && self.current_submap.saturating_sub(s.id()) >= gate.min_submap_gap
                    && s.descriptor().len() == query.len()
                    && (self.poses[s.anchor_frame()].inverse() * self.poses[frame])
                        .translation_norm()
                        <= gate.max_expected_offset
            })
            .map(Submap::id)
            .collect();
        if eligible.is_empty() {
            return None;
        }

        // Rank candidates in the KPCE feature space: nearest submap
        // signatures to the current frame's mean descriptor (the shared
        // retrieval structure, rebuilt per attempt because eligibility is
        // pose- and recency-dependent).
        let feature_index = SignatureIndex::build(&self.submaps, &eligible, query.len());
        for hit in feature_index.retrieve(&query, gate.candidates, gate.max_descriptor_distance) {
            if let Some(closure) = self.verify_closure(frame, hit.submap) {
                return Some(closure);
            }
        }
        None
    }

    /// Registers the current frame against `submap_id`'s keyframe and
    /// accepts the closure when every geometric gate passes.
    fn verify_closure(&mut self, frame: usize, submap_id: usize) -> Option<LoopClosure> {
        self.metrics.closures_attempted.inc();
        let gate = self.config.closure;
        let anchor_frame = self.submaps[submap_id].anchor_frame();
        let expected = self.poses[anchor_frame].inverse() * self.poses[frame];

        let result = {
            // Clone the keyframe's Arc first so the submap borrow ends
            // before the odometer's reference frame is borrowed mutably;
            // the lock serializes against any serving epoch verifying
            // through the same shared preparation.
            let keyframe = self.submaps[submap_id].keyframe()?.clone();
            let current = self.odometer.reference_frame_mut()?;
            let mut keyframe = keyframe.lock().expect("keyframe lock poisoned");
            retrieval::verify_geometry(current, &mut keyframe, &self.config.registration)?
        };
        self.metrics.frames_prepared.add(result.profile.frames_prepared as u64);
        self.metrics.frames_reused.add(result.profile.frames_reused as u64);

        // Cheap scalar gates first: enough consensus, a physically-nearby
        // revisit, and agreement with the drift-estimated relative, whose
        // translation allowance grows with the travel separating the two
        // frames (drift compounds with distance).
        let deviation = expected.inverse() * result.transform;
        let travel_gap = self.travel[frame] - self.travel[anchor_frame];
        let translation_allowance = gate.max_deviation + gate.deviation_rate * travel_gap;
        let scalars_pass = result.inlier_correspondences >= gate.min_inliers
            && result.transform.translation_norm() <= gate.max_offset
            && deviation.translation_norm() <= translation_allowance;

        // Structure-overlap consistency: the decisive anti-aliasing gate,
        // and the expensive one (an NN query per elevated frame point) —
        // only computed for candidates the scalar gates let through.
        // Place the current frame into the submap's coordinates with the
        // *verified* transform and measure what fraction of its elevated
        // (non-ground) points land on stored structure. A genuine revisit
        // re-observes the same walls, poles and clutter, so the fraction
        // is high; a false match across self-similar structure (opposite
        // arcs of a ring road, mirrored corridors) aligns only the generic
        // ground/corridor geometry — away from the match center the walls
        // curve apart and the fraction collapses. Drift cannot fool this
        // gate: it compares geometry to geometry and never consults the
        // drifted poses.
        let overlap =
            if scalars_pass { self.closure_overlap(&result.transform, submap_id) } else { 0.0 };
        let pass = scalars_pass && overlap >= gate.min_structure_overlap;
        // The gate values as one structured event per verified candidate
        // (this replaced the TIGRIS_MAP_DEBUG eprintln path; enable with
        // TIGRIS_TRACE and read it in any exporter).
        tigris_obs::event!(
            "closure.candidate",
            frame = frame,
            submap = submap_id,
            inliers = result.inlier_correspondences,
            offset = result.transform.translation_norm(),
            deviation = deviation.translation_norm(),
            deviation_deg = deviation.rotation_angle().to_degrees(),
            overlap = overlap,
            overlap_checked = scalars_pass,
            pass = pass,
        );
        if !pass {
            return None;
        }

        // Accept: add the long-range edge and redistribute the drift.
        self.edges.push(PoseGraphEdge::new(anchor_frame, frame, result.transform));
        let report = self.optimize();
        let closure = LoopClosure {
            frame,
            matched_frame: anchor_frame,
            submap: submap_id,
            relative: result.transform,
            inliers: result.inlier_correspondences,
            report,
        };
        self.closures.push(closure);
        self.last_closure_frame = Some(frame);
        self.metrics.closures_accepted.inc();
        tigris_obs::event!(
            "closure.accept",
            frame = frame,
            submap = submap_id,
            anchor_frame = anchor_frame,
            inliers = result.inlier_correspondences,
            overlap = overlap,
        );
        Some(closure)
    }

    /// The structure-overlap fraction of the current frame against
    /// `submap_id` under the verified `relative` — see
    /// [`retrieval::structure_overlap`] for the gate's semantics.
    fn closure_overlap(&self, relative: &RigidTransform, submap_id: usize) -> f64 {
        let Some(prep) = self.odometer.reference_frame() else {
            return 0.0;
        };
        retrieval::structure_overlap(prep.points(), relative, &self.submaps[submap_id])
    }

    /// Runs Gauss–Newton over the whole trajectory and rebases every
    /// submap on its corrected anchor pose.
    fn optimize(&mut self) -> OptimizeReport {
        let _span =
            tigris_obs::span!("map.optimize", nodes = self.poses.len(), edges = self.edges.len(),);
        let mut graph = PoseGraph::new(self.poses.clone());
        for edge in &self.edges {
            graph.add_edge(*edge);
        }
        let report = graph.optimize(self.config.optimize_iterations);
        self.poses = graph.into_nodes();
        for submap in &mut self.submaps {
            let pose = self.poses[submap.anchor_frame()];
            submap.set_anchor_pose(pose);
        }
        self.metrics.optimizations.inc();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClosureConfig, SubmapConfig};
    use tigris_pipeline::config::KeypointAlgorithm;
    use tigris_pipeline::RegistrationConfig;

    /// The odometry test scene: structured, distinctive, cheap.
    fn scene_cloud() -> PointCloud {
        let mut pts = Vec::new();
        let step = 0.15;
        for i in 0..30 {
            for j in 0..30 {
                pts.push(Vec3::new(i as f64 * step, j as f64 * step, 0.0));
            }
        }
        for i in 0..30 {
            for k in 1..12 {
                pts.push(Vec3::new(i as f64 * step, 4.0, k as f64 * step));
            }
        }
        for j in 0..14 {
            for k in 1..12 {
                pts.push(Vec3::new(4.2, j as f64 * step, k as f64 * step));
            }
        }
        for i in 0..8 {
            for k in 0..5 {
                pts.push(Vec3::new(
                    1.0 + 0.1 * i as f64,
                    2.0 + 0.07 * k as f64,
                    0.4 + 0.1 * k as f64,
                ));
            }
        }
        PointCloud::from_points(pts)
    }

    fn fast_mapper_config() -> MapperConfig {
        MapperConfig {
            registration: RegistrationConfig {
                voxel_size: 0.0,
                keypoint: KeypointAlgorithm::Uniform { voxel: 0.9 },
                max_correspondence_distance: 1.0,
                ..RegistrationConfig::default()
            },
            submap: SubmapConfig { spawn_distance: 0.15, ..SubmapConfig::default() },
            closure: ClosureConfig { enabled: false, ..ClosureConfig::default() },
            optimize_iterations: 10,
        }
    }

    #[test]
    fn first_frame_founds_the_map() {
        let mut mapper = Mapper::new(fast_mapper_config());
        let step = mapper.push(&scene_cloud()).unwrap();
        assert_eq!(step.frame, 0);
        assert!(step.spawned_submap);
        assert!(step.pose.is_identity(0.0));
        assert_eq!(mapper.submaps().len(), 1);
        assert!(mapper.total_points() > 0);
        assert_eq!(mapper.stats().frames, 1);
        assert_eq!(mapper.stats().steps, 0);
        // Submap 0's keyframe arrives only when frame 0 retires.
        assert!(!mapper.submaps()[0].has_keyframe());
    }

    #[test]
    fn streaming_tracks_motion_and_spawns_submaps() {
        let world = scene_cloud();
        let delta = RigidTransform::from_translation(Vec3::new(0.06, 0.02, 0.0));
        let mut mapper = Mapper::new(fast_mapper_config());
        let mut motion = RigidTransform::IDENTITY;
        for _ in 0..4 {
            mapper.push(&world.transformed(&motion.inverse())).unwrap();
            motion = motion * delta;
        }
        assert_eq!(mapper.stats().frames, 4);
        assert_eq!(mapper.stats().steps, 3);
        // Every frame's front end ran exactly once.
        assert_eq!(mapper.stats().frames_prepared, 4);
        // Travel 0.063/step with a 0.15 m spawn distance: submaps spawn
        // along the way, and retired anchors become keyframes.
        assert!(mapper.submaps().len() >= 2, "{} submaps", mapper.submaps().len());
        assert!(mapper.submaps()[0].has_keyframe());
        // Pose tracks the accumulated motion.
        let end = mapper.poses().last().unwrap().translation;
        let expected = delta.translation * 3.0;
        assert!((end - expected).norm() < 0.05, "pose {end} vs {expected}");
        // Raw and corrected agree while no closure ran.
        assert_eq!(mapper.poses().len(), mapper.raw_poses().len());
        for (a, b) in mapper.poses().iter().zip(mapper.raw_poses()) {
            assert!((a.translation - b.translation).norm() < 1e-12);
        }
    }

    #[test]
    fn query_fans_out_across_submaps() {
        let world = scene_cloud();
        let delta = RigidTransform::from_translation(Vec3::new(0.08, 0.0, 0.0));
        let mut mapper = Mapper::new(fast_mapper_config());
        let mut motion = RigidTransform::IDENTITY;
        for _ in 0..3 {
            mapper.push(&world.transformed(&motion.inverse())).unwrap();
            motion = motion * delta;
        }
        assert!(mapper.submaps().len() >= 2);
        // A world point on the scene's ground plane is covered by every
        // submap (all frames see it): the query returns hits from several.
        let hits = mapper.query(Vec3::new(2.0, 2.0, 0.0), 0.5);
        assert!(!hits.is_empty());
        let distinct: std::collections::BTreeSet<usize> = hits.iter().map(|h| h.submap).collect();
        assert!(distinct.len() >= 2, "hits from {distinct:?}");
        // Sorted ascending by distance.
        for pair in hits.windows(2) {
            assert!(pair[0].distance_squared <= pair[1].distance_squared);
        }
        // Far away finds nothing.
        assert!(mapper.query(Vec3::new(1e4, 0.0, 0.0), 1.0).is_empty());
    }

    #[test]
    fn prepare_failure_leaves_the_mapper_unchanged() {
        let mut mapper = Mapper::new(fast_mapper_config());
        mapper.push(&scene_cloud()).unwrap();
        let before_frames = mapper.stats().frames;
        let err = mapper.push(&PointCloud::new()).unwrap_err();
        assert_eq!(err, RegistrationError::EmptyCloud);
        assert_eq!(mapper.stats().frames, before_frames);
        assert_eq!(mapper.poses().len(), before_frames);
        // The stream continues unharmed.
        let step = mapper
            .push(&scene_cloud().transformed(
                &RigidTransform::from_translation(Vec3::new(0.05, 0.0, 0.0)).inverse(),
            ))
            .unwrap();
        assert_eq!(step.frame, 1);
    }

    #[test]
    fn matching_failure_bridges_with_a_weak_edge() {
        let world = scene_cloud();
        let mut mapper = Mapper::new(fast_mapper_config());
        mapper.push(&world).unwrap();
        // 500 m away: prepares fine, starves in matching.
        let far = world.transformed(&RigidTransform::from_translation(Vec3::new(500.0, 0.0, 0.0)));
        assert_eq!(mapper.push(&far).unwrap_err(), RegistrationError::IcpStarved);
        assert_eq!(mapper.stats().breaks, 1);
        // The kept frame got a node at the last corrected pose.
        assert_eq!(mapper.poses().len(), 2);
        assert!(mapper.poses()[1].is_identity(1e-12));
        // The stream continues against the kept frame.
        let delta = RigidTransform::from_translation(Vec3::new(0.05, 0.0, 0.0));
        let step = mapper.push(&far.transformed(&delta.inverse())).unwrap();
        assert_eq!(step.frame, 2);
        assert_eq!(mapper.stats().steps, 1);
        assert!((step.pose.translation - delta.translation).norm() < 0.05);
        // Preparation accounting: frame 0's bill was dropped with its
        // discarded reference (it never matched successfully — the
        // odometer's documented failure semantics), so the successful
        // pair bills the kept frame and the new frame only.
        assert_eq!(mapper.stats().frames_prepared, 2);
    }

    #[test]
    fn closure_disabled_never_attempts() {
        let world = scene_cloud();
        let mut cfg = fast_mapper_config();
        cfg.closure.enabled = false;
        let mut mapper = Mapper::new(cfg);
        let delta = RigidTransform::from_translation(Vec3::new(0.05, 0.0, 0.0));
        let mut motion = RigidTransform::IDENTITY;
        for _ in 0..4 {
            mapper.push(&world.transformed(&motion.inverse())).unwrap();
            motion = motion * delta;
        }
        assert_eq!(mapper.stats().closures_attempted, 0);
        assert_eq!(mapper.stats().closures_accepted, 0);
        assert!(mapper.closures().is_empty());
    }

    #[test]
    fn global_cloud_covers_all_submaps() {
        let world = scene_cloud();
        let delta = RigidTransform::from_translation(Vec3::new(0.08, 0.0, 0.0));
        let mut mapper = Mapper::new(fast_mapper_config());
        let mut motion = RigidTransform::IDENTITY;
        for _ in 0..3 {
            mapper.push(&world.transformed(&motion.inverse())).unwrap();
            motion = motion * delta;
        }
        let cloud = mapper.global_cloud();
        assert_eq!(cloud.len(), mapper.total_points());
        assert!(cloud.len() >= mapper.submaps().iter().map(Submap::len).max().unwrap());
    }
}

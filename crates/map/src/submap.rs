//! Pose-tagged submaps: the unit of map aggregation and rigid correction.
//!
//! A [`Submap`] owns the registered points of a contiguous stretch of
//! trajectory, stored in the *local frame of its anchor keyframe* behind
//! an incrementally insertable `DynamicMapIndex`. Keeping points local is
//! what makes pose-graph correction cheap: when loop closure moves the
//! anchor pose, the whole submap moves rigidly — no point is rewritten,
//! no index is rebuilt. Queries transform into each submap's frame on the
//! way in and back to world coordinates on the way out.

use std::sync::{Arc, Mutex};

use tigris_core::DynamicMapIndex;
use tigris_geom::{Aabb, RigidTransform, Vec3};
use tigris_pipeline::descriptor::Descriptors;
use tigris_pipeline::PreparedFrame;

/// Sorts map-query results into the canonical order every map consumer
/// shares: ascending by `(distance, submap, index)`. `Mapper::query`
/// and the serving snapshot's `query`/`query_batch` all sort through
/// this one function, so the "snapshot answers exactly like the mapper
/// it was frozen from" guarantee is structural, not a pair of
/// hand-copied comparators kept in sync.
pub fn sort_map_neighbors(neighbors: &mut [MapNeighbor]) {
    neighbors.sort_by(|a, b| {
        a.distance_squared
            .total_cmp(&b.distance_squared)
            .then(a.submap.cmp(&b.submap))
            .then(a.index.cmp(&b.index))
    });
}

/// One world-frame neighbor returned by a map query, tagged with the
/// submap that holds it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapNeighbor {
    /// Id of the submap the point lives in.
    pub submap: usize,
    /// Index of the point inside that submap's index.
    pub index: usize,
    /// The point, in world coordinates (under the submap's current anchor
    /// pose).
    pub point: Vec3,
    /// Squared distance to the query point.
    pub distance_squared: f64,
}

/// A pose-tagged chunk of the global map.
///
/// Built and owned by the [`crate::Mapper`]; read access is public so
/// consumers can inspect the map's structure.
pub struct Submap {
    id: usize,
    anchor_frame: usize,
    anchor_pose: RigidTransform,
    index: DynamicMapIndex,
    bounds: Option<Aabb>,
    descriptor: Vec<f64>,
    descriptor_frames: usize,
    frames: Vec<usize>,
    travel: f64,
    /// The anchor frame's full preparation, retired out of the odometer —
    /// the geometric-verification target for loop closures against this
    /// submap. `None` until the anchor frame retires (and permanently for
    /// a submap whose anchor was displaced by a matching failure).
    ///
    /// Shared `Arc<Mutex<_>>` so serving epochs can reference the same
    /// preparation the live mapper keeps verifying closures against
    /// (`PreparedFrame` is not `Clone` — its searcher meters itself and
    /// therefore needs `&mut` behind a lock).
    keyframe: Option<Arc<Mutex<PreparedFrame>>>,
    /// Content revision: bumped whenever the submap's *payload* changes
    /// (points, signature or keyframe — not the anchor pose, which moves
    /// the submap rigidly without rewriting it). Copy-on-write epoch
    /// publishing diffs on this to re-copy only changed submaps.
    revision: u64,
}

impl std::fmt::Debug for Submap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Submap")
            .field("id", &self.id)
            .field("anchor_frame", &self.anchor_frame)
            .field("points", &self.len())
            .field("frames", &self.frames.len())
            .field("travel", &self.travel)
            .field("has_keyframe", &self.keyframe.is_some())
            .finish()
    }
}

impl Submap {
    /// A fresh, empty submap anchored at `anchor_frame` with world pose
    /// `anchor_pose`.
    pub(crate) fn new(
        id: usize,
        anchor_frame: usize,
        anchor_pose: RigidTransform,
        fresh_capacity: usize,
    ) -> Self {
        Submap {
            id,
            anchor_frame,
            anchor_pose,
            index: DynamicMapIndex::with_fresh_capacity(fresh_capacity),
            bounds: None,
            descriptor: Vec::new(),
            descriptor_frames: 0,
            frames: Vec::new(),
            travel: 0.0,
            keyframe: None,
            revision: 0,
        }
    }

    /// This submap's id (its position in [`crate::Mapper::submaps`]).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Trajectory index of the anchor keyframe.
    pub fn anchor_frame(&self) -> usize {
        self.anchor_frame
    }

    /// Current world pose of the anchor keyframe (updated by pose-graph
    /// optimization; the submap's points ride on it rigidly).
    pub fn anchor_pose(&self) -> &RigidTransform {
        &self.anchor_pose
    }

    pub(crate) fn set_anchor_pose(&mut self, pose: RigidTransform) {
        self.anchor_pose = pose;
    }

    /// Points aggregated into this submap.
    pub fn len(&self) -> usize {
        self.index.all_points().len()
    }

    /// `true` when no frame has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.index.all_points().is_empty()
    }

    /// Trajectory indices of the frames merged into this submap.
    pub fn frames(&self) -> &[usize] {
        &self.frames
    }

    /// Distance traveled inside this submap so far (meters) — the spawn
    /// trigger the mapper watches.
    pub fn travel(&self) -> f64 {
        self.travel
    }

    pub(crate) fn add_travel(&mut self, meters: f64) {
        self.travel += meters;
    }

    /// Mean key-point descriptor over the submap's frames — its signature
    /// in the KPCE feature space, used for loop-closure retrieval. Empty
    /// until a frame with descriptors is inserted.
    pub fn descriptor(&self) -> &[f64] {
        &self.descriptor
    }

    /// Whether the anchor keyframe's preparation has been retired into
    /// this submap (a submap without it cannot verify loop closures).
    pub fn has_keyframe(&self) -> bool {
        self.keyframe.is_some()
    }

    /// The stored keyframe preparation, shared. Epoch publishers clone
    /// the `Arc` so a serving snapshot verifies against the very same
    /// preparation the live mapper keeps using; both sides lock per
    /// verification.
    pub fn keyframe(&self) -> Option<&Arc<Mutex<PreparedFrame>>> {
        self.keyframe.as_ref()
    }

    /// Stores the anchor frame's retired preparation (a content change:
    /// the submap becomes verifiable).
    pub(crate) fn set_keyframe(&mut self, keyframe: PreparedFrame) {
        self.keyframe = Some(Arc::new(Mutex::new(keyframe)));
        self.revision += 1;
    }

    /// Moves the stored keyframe preparation out of the submap, leaving
    /// `None` behind. The serving layer's freeze path uses this to place
    /// keyframes behind their own locks while the submap's points and
    /// index stay lock-free for shared reads; a submap stripped this way
    /// can no longer verify revisits itself.
    pub fn take_keyframe(&mut self) -> Option<Arc<Mutex<PreparedFrame>>> {
        self.keyframe.take()
    }

    /// Content revision: bumped on every payload change (frame insert,
    /// descriptor absorb, keyframe attach) but *not* on anchor-pose
    /// corrections. Two reads of the same submap with equal revisions
    /// hold identical points, signature and keyframe, so copy-on-write
    /// epoch publishing shares unchanged submaps by revision equality.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Overrides the submap's signature — test-only hook for driving the
    /// retrieval machinery with hand-built descriptor populations.
    #[cfg(test)]
    pub(crate) fn set_descriptor_for_test(&mut self, descriptor: Vec<f64>) {
        self.descriptor = descriptor;
    }

    /// The submap's bounding box in its local (anchor) frame, or `None`
    /// while empty.
    pub fn local_bounds(&self) -> Option<&Aabb> {
        self.bounds.as_ref()
    }

    /// The world-frame bounding box of the submap under its current
    /// anchor pose: the axis-aligned box of the local box's eight rotated
    /// corners. A superset of the points' true world AABB, which makes it
    /// a *conservative* spatial-routing bound — any query sphere that
    /// could reach a point of this submap intersects this box.
    pub fn world_bounds(&self) -> Option<Aabb> {
        Some(self.bounds.as_ref()?.transformed(&self.anchor_pose))
    }

    /// Heap bytes of the submap's *point payload*: the dynamic index plus
    /// the signature and frame list. The stored keyframe is deliberately
    /// excluded — it is `Arc`-shared with the mapper/epoch and not freed
    /// by tile eviction, so charging it to a tile would make the
    /// residency budget double-count memory eviction cannot reclaim.
    pub fn memory_bytes(&self) -> usize {
        self.index.memory_bytes()
            + self.descriptor.capacity() * std::mem::size_of::<f64>()
            + self.frames.capacity() * std::mem::size_of::<usize>()
    }

    /// The underlying dynamic index (points in the anchor-local frame).
    pub fn index(&self) -> &DynamicMapIndex {
        &self.index
    }

    /// Inserts a registered frame: `points` are the frame's (prepared,
    /// downsampled) sensor-frame points, `local` maps them into this
    /// submap's anchor frame.
    pub(crate) fn insert_frame(&mut self, frame: usize, points: &[Vec3], local: &RigidTransform) {
        let transformed: Vec<Vec3> = points.iter().map(|&p| local.apply(p)).collect();
        for &p in &transformed {
            match &mut self.bounds {
                Some(b) => b.extend(p),
                None => self.bounds = Aabb::from_points([p]),
            }
        }
        self.index.extend(&transformed);
        self.frames.push(frame);
        self.revision += 1;
    }

    /// Folds one frame's key-point descriptors into the submap's running
    /// mean signature.
    pub(crate) fn absorb_descriptors(&mut self, descriptors: &Descriptors) {
        let Some(mean) = descriptor_mean(descriptors) else {
            return;
        };
        if self.descriptor.is_empty() {
            self.descriptor = mean;
        } else if self.descriptor.len() == mean.len() {
            let k = self.descriptor_frames as f64;
            for (acc, v) in self.descriptor.iter_mut().zip(&mean) {
                *acc = (*acc * k + v) / (k + 1.0);
            }
        }
        self.descriptor_frames += 1;
        self.revision += 1;
    }

    /// All points within `radius` of the world-frame `point`, as
    /// world-frame [`MapNeighbor`]s. Returns nothing without touching the
    /// index when the query sphere misses the submap's bounds.
    pub fn query(&self, point: Vec3, radius: f64) -> Vec<MapNeighbor> {
        let Some(bounds) = &self.bounds else {
            return Vec::new();
        };
        let local_q = self.anchor_pose.inverse().apply(point);
        if !bounds.intersects_sphere(local_q, radius) {
            return Vec::new();
        }
        self.index
            .radius_query(local_q, radius)
            .into_iter()
            .map(|n| MapNeighbor {
                submap: self.id,
                index: n.index,
                point: self.anchor_pose.apply(self.index.all_points()[n.index]),
                distance_squared: n.distance_squared,
            })
            .collect()
    }

    /// The submap's points in world coordinates (under the current anchor
    /// pose).
    pub fn world_points(&self) -> Vec<Vec3> {
        self.index.all_points().iter().map(|&p| self.anchor_pose.apply(p)).collect()
    }
}

/// Column mean of a descriptor matrix, or `None` when it holds no rows —
/// a frame's (or submap's) *signature* in the KPCE feature space, the
/// quantity [`crate::retrieval::SignatureIndex`] ranks candidates by.
/// Public because the serving layer computes query-frame signatures with
/// it for cold-start relocalization.
pub fn descriptor_mean(descriptors: &Descriptors) -> Option<Vec<f64>> {
    let n = descriptors.len();
    if n == 0 || descriptors.dim == 0 {
        return None;
    }
    let mut mean = vec![0.0f64; descriptors.dim];
    for i in 0..n {
        for (acc, v) in mean.iter_mut().zip(descriptors.row(i)) {
            *acc += v;
        }
    }
    for acc in &mut mean {
        *acc /= n as f64;
    }
    Some(mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query_round_trip_through_the_anchor_pose() {
        // Anchor 10 m down the road, rotated 90°: local/world conversion
        // must be exact both ways.
        let anchor = RigidTransform::from_axis_angle(
            Vec3::Z,
            std::f64::consts::FRAC_PI_2,
            Vec3::new(10.0, 0.0, 0.0),
        );
        let mut submap = Submap::new(0, 0, anchor, 64);
        // A frame observed exactly at the anchor: local transform is I.
        let pts: Vec<Vec3> =
            (0..50).map(|i| Vec3::new((i % 10) as f64, (i / 10) as f64, 0.0)).collect();
        submap.insert_frame(0, &pts, &RigidTransform::IDENTITY);
        assert_eq!(submap.len(), 50);
        assert_eq!(submap.frames(), &[0]);

        // The world position of local (3, 2, 0) under the anchor.
        let world = anchor.apply(Vec3::new(3.0, 2.0, 0.0));
        let hits = submap.query(world, 0.25);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].distance_squared < 1e-18);
        assert!((hits[0].point - world).norm() < 1e-12);
        assert_eq!(hits[0].submap, 0);

        // Far away: bounds gate answers without searching.
        assert!(submap.query(Vec3::new(500.0, 0.0, 0.0), 1.0).is_empty());
    }

    #[test]
    fn anchor_update_moves_points_rigidly() {
        let mut submap = Submap::new(1, 3, RigidTransform::IDENTITY, 64);
        submap.insert_frame(3, &[Vec3::new(1.0, 0.0, 0.0)], &RigidTransform::IDENTITY);
        let before = submap.world_points()[0];
        assert_eq!(before, Vec3::new(1.0, 0.0, 0.0));
        // A pose-graph correction shifts the anchor by 2 m.
        submap.set_anchor_pose(RigidTransform::from_translation(Vec3::new(2.0, 0.0, 0.0)));
        let after = submap.world_points()[0];
        assert_eq!(after, Vec3::new(3.0, 0.0, 0.0));
        // And the query follows the new pose.
        assert_eq!(submap.query(after, 0.1).len(), 1);
        assert!(submap.query(before, 0.1).is_empty());
    }

    #[test]
    fn descriptor_mean_accumulates_across_frames() {
        let mut submap = Submap::new(0, 0, RigidTransform::IDENTITY, 64);
        assert!(submap.descriptor().is_empty());
        let d1 = Descriptors { dim: 2, data: vec![1.0, 3.0, 3.0, 5.0] }; // mean (2, 4)
        let d2 = Descriptors { dim: 2, data: vec![6.0, 0.0] }; // mean (6, 0)
        submap.absorb_descriptors(&d1);
        assert_eq!(submap.descriptor(), &[2.0, 4.0]);
        submap.absorb_descriptors(&d2);
        assert_eq!(submap.descriptor(), &[4.0, 2.0]);
        // Empty descriptor sets are ignored.
        submap.absorb_descriptors(&Descriptors { dim: 2, data: vec![] });
        assert_eq!(submap.descriptor(), &[4.0, 2.0]);
    }

    #[test]
    fn empty_submap_answers_empty() {
        let submap = Submap::new(0, 0, RigidTransform::IDENTITY, 64);
        assert!(submap.is_empty());
        assert!(submap.query(Vec3::ZERO, 10.0).is_empty());
        assert!(submap.local_bounds().is_none());
        assert!(submap.world_bounds().is_none());
        assert!(!submap.has_keyframe());
        assert_eq!(submap.revision(), 0);
        assert_eq!(submap.memory_bytes(), 0);
    }

    #[test]
    fn revision_tracks_content_but_not_pose() {
        let mut submap = Submap::new(0, 0, RigidTransform::IDENTITY, 64);
        submap.insert_frame(0, &[Vec3::X, Vec3::Y], &RigidTransform::IDENTITY);
        assert_eq!(submap.revision(), 1);
        submap.absorb_descriptors(&Descriptors { dim: 2, data: vec![1.0, 2.0] });
        assert_eq!(submap.revision(), 2);
        // An empty descriptor set changes nothing — and bumps nothing.
        submap.absorb_descriptors(&Descriptors { dim: 2, data: vec![] });
        assert_eq!(submap.revision(), 2);
        // Pose-graph corrections move the submap rigidly: no payload
        // change, no revision bump.
        submap.set_anchor_pose(RigidTransform::from_translation(Vec3::Z));
        assert_eq!(submap.revision(), 2);
    }

    #[test]
    fn world_bounds_cover_the_points_under_any_anchor() {
        let anchor = RigidTransform::from_axis_angle(Vec3::Z, 0.7, Vec3::new(-4.0, 2.5, 1.0));
        let mut submap = Submap::new(0, 0, anchor, 64);
        let pts: Vec<Vec3> =
            (0..40).map(|i| Vec3::new((i % 8) as f64, (i / 8) as f64, 0.3 * i as f64)).collect();
        submap.insert_frame(0, &pts, &RigidTransform::IDENTITY);
        let world = submap.world_bounds().unwrap();
        for p in submap.world_points() {
            assert!(world.contains(p), "{p} outside world bounds");
        }
        // Moving the anchor moves the bounds with the points.
        submap.set_anchor_pose(RigidTransform::from_translation(Vec3::new(100.0, 0.0, 0.0)));
        let moved = submap.world_bounds().unwrap();
        for p in submap.world_points() {
            assert!(moved.contains(p), "{p} outside moved world bounds");
        }
        assert!(moved.min.x > world.max.x);
    }

    #[test]
    fn memory_bytes_grows_with_inserted_frames() {
        let mut submap = Submap::new(0, 0, RigidTransform::IDENTITY, 64);
        let mut last = 0;
        for f in 0..8 {
            let pts: Vec<Vec3> =
                (0..200).map(|i| Vec3::new(i as f64 * 0.1, f as f64, 0.0)).collect();
            submap.insert_frame(f, &pts, &RigidTransform::IDENTITY);
            let now = submap.memory_bytes();
            assert!(now > last, "accounting must grow with inserted frames");
            assert!(now >= submap.len() * std::mem::size_of::<Vec3>());
            last = now;
        }
    }
}

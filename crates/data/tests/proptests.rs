//! Property-based tests for the synthetic dataset substrate.

use proptest::prelude::*;
use tigris_data::kitti_io::{pose_from_line, pose_to_line, velodyne_from_bytes};
use tigris_data::scene::{Primitive, Ray, Scene};
use tigris_data::{relative_pose_error, sequence_error, SceneConfig, Trajectory, TrajectoryConfig};
use tigris_geom::{RigidTransform, Vec3};

fn point() -> impl Strategy<Value = Vec3> {
    (-50.0f64..50.0, -50.0f64..50.0, 0.5f64..30.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit() -> impl Strategy<Value = Vec3> {
    (point(), -1.0f64..1.0)
        .prop_filter_map("unit", |(v, z)| Vec3::new(v.x, v.y, z * 10.0).normalized())
}

fn rigid() -> impl Strategy<Value = RigidTransform> {
    (unit(), -3.0f64..3.0, point())
        .prop_map(|(a, ang, t)| RigidTransform::from_axis_angle(a, ang, t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ray_hits_lie_on_primitives(origin in point(), dir in unit(), seed in 0u64..32) {
        let scene = Scene::generate(&SceneConfig::tiny(), seed);
        let ray = Ray { origin, dir };
        if let Some(t) = scene.cast(&ray, 200.0) {
            prop_assert!(t > 0.0 && t <= 200.0);
            // The hit point must lie on (or extremely near) some primitive:
            // re-casting from just before the hit finds it within epsilon.
            let just_before = Ray { origin: origin + dir * (t - 1e-6), dir };
            let rem = scene.cast(&just_before, 1.0);
            prop_assert!(rem.is_some());
            prop_assert!(rem.unwrap() < 1e-3);
        }
    }

    #[test]
    fn nearest_hit_is_minimal(origin in point(), dir in unit(), seed in 0u64..16) {
        let scene = Scene::generate(&SceneConfig::tiny(), seed);
        let ray = Ray { origin, dir };
        if let Some(t) = scene.cast(&ray, 150.0) {
            for p in scene.primitives() {
                if let Some(tp) = p.intersect(&ray) {
                    prop_assert!(t <= tp + 1e-9, "cast {t} missed closer hit {tp}");
                }
            }
        }
    }

    #[test]
    fn ground_plane_distance_is_exact(x in -100.0f64..100.0, y in -100.0f64..100.0, h in 0.5f64..50.0) {
        let p = Primitive::GroundPlane { z: 0.0 };
        let ray = Ray { origin: Vec3::new(x, y, h), dir: -Vec3::Z };
        prop_assert!((p.intersect(&ray).unwrap() - h).abs() < 1e-9);
    }

    #[test]
    fn pose_line_round_trips(t in rigid()) {
        let back = pose_from_line(&pose_to_line(&t)).unwrap();
        prop_assert!((back.translation - t.translation).norm() < 1e-9);
        prop_assert!((back.rotation - t.rotation).frobenius_norm() < 1e-9);
    }

    #[test]
    fn velodyne_bytes_round_trip(pts in prop::collection::vec(point(), 0..64)) {
        let mut bytes = Vec::new();
        for p in &pts {
            bytes.extend_from_slice(&(p.x as f32).to_le_bytes());
            bytes.extend_from_slice(&(p.y as f32).to_le_bytes());
            bytes.extend_from_slice(&(p.z as f32).to_le_bytes());
            bytes.extend_from_slice(&1.0f32.to_le_bytes());
        }
        let cloud = velodyne_from_bytes(&bytes).unwrap();
        prop_assert_eq!(cloud.len(), pts.len());
        for (a, b) in pts.iter().zip(cloud.points()) {
            prop_assert!((a.x - b.x).abs() < 1e-4);
        }
    }

    #[test]
    fn relative_pose_error_is_a_metric_zero(t in rigid()) {
        let (dt, dr) = relative_pose_error(&t, &t);
        prop_assert!(dt < 1e-9);
        prop_assert!(dr < 1e-6);
    }

    #[test]
    fn sequence_error_is_nonnegative_and_zero_on_truth(gts in prop::collection::vec(rigid(), 1..16)) {
        let err = sequence_error(&gts, &gts);
        prop_assert!(err.translational_percent.abs() < 1e-6);
        prop_assert!(err.rotational_deg_per_m.abs() < 1e-4);
        prop_assert!(err.pairs <= gts.len());
    }

    #[test]
    fn trajectory_relative_chains_to_absolute(frames in 2usize..20, seed in 0u64..64) {
        let t = Trajectory::generate(
            &TrajectoryConfig { frames, ..TrajectoryConfig::default() },
            seed,
        );
        let mut acc = t.poses()[0];
        for i in 0..frames - 1 {
            acc = acc * t.relative(i);
        }
        prop_assert!((acc.translation - t.poses()[frames - 1].translation).norm() < 1e-9);
    }

    #[test]
    fn path_length_bounds_displacement(frames in 2usize..30, seed in 0u64..64) {
        let t = Trajectory::generate(
            &TrajectoryConfig { frames, ..TrajectoryConfig::default() },
            seed,
        );
        let displacement = (t.poses()[frames - 1].translation - t.poses()[0].translation).norm();
        prop_assert!(t.path_length() >= displacement - 1e-9);
    }
}

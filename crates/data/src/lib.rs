//! Synthetic LiDAR dataset substrate for Tigris.
//!
//! The paper evaluates on the KITTI odometry dataset, captured with a
//! Velodyne HDL-64E spinning LiDAR. This crate is the reproduction's
//! substitute (see DESIGN.md): a procedural urban scene ([`scene`]), a
//! 64-beam spinning-scanner ray-caster with range noise ([`lidar`]),
//! ground-truth vehicle trajectories ([`trajectory`]), frame sequences with
//! poses ([`sequence`]), and KITTI-style odometry error metrics
//! ([`metrics`]: translational %, rotational °/m).
//!
//! The substitution preserves what the evaluation needs: dense frames
//! (10⁴–10⁵ points) with LiDAR ring structure and density falloff, sensor
//! noise, frame-to-frame motion with ground truth, and the same error
//! metrics.
//!
//! # Example
//!
//! ```
//! use tigris_data::{SequenceConfig, Sequence};
//!
//! let cfg = SequenceConfig::tiny(); // small frames, fast for tests/docs
//! let seq = Sequence::generate(&cfg, 42);
//! assert_eq!(seq.len(), cfg.frames);
//! assert!(seq.frame(0).len() > 100);
//! ```

pub mod kitti_io;
pub mod lidar;
pub mod metrics;
pub mod scene;
pub mod sequence;
pub mod trajectory;

pub use kitti_io::{
    read_poses, read_velodyne_bin, read_xyz, write_poses, write_velodyne_bin, write_xyz,
};
pub use lidar::{Lidar, LidarConfig};
pub use metrics::{absolute_trajectory_error, relative_pose_error, sequence_error, OdometryError};
pub use scene::{Scene, SceneConfig, SceneKind};
pub use sequence::{Sequence, SequenceConfig};
pub use trajectory::{Trajectory, TrajectoryConfig};

//! Ground-truth vehicle trajectories.
//!
//! A trajectory is a sequence of world-frame vehicle poses at the LiDAR
//! frame rate. The generator drives along the +X road corridor with gentle
//! speed variation and yaw wander — enough inter-frame motion (≈1 m at
//! 10 m/s and 10 Hz, like KITTI) that registration has real work to do.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tigris_geom::{Mat3, RigidTransform, Vec3};

/// Trajectory generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryConfig {
    /// Number of poses to generate.
    pub frames: usize,
    /// Nominal vehicle speed, m/s (KITTI urban: ~8–14 m/s).
    pub speed: f64,
    /// Frame rate, Hz (KITTI: 10 Hz).
    pub frame_rate: f64,
    /// 1-σ per-frame yaw-rate perturbation, rad/s.
    pub yaw_wander: f64,
    /// 1-σ per-frame speed perturbation, m/s.
    pub speed_wander: f64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            frames: 50,
            speed: 10.0,
            frame_rate: 10.0,
            yaw_wander: 0.02,
            speed_wander: 0.4,
        }
    }
}

/// A generated trajectory: world-frame vehicle poses, one per frame.
#[derive(Debug, Clone)]
pub struct Trajectory {
    poses: Vec<RigidTransform>,
}

impl Trajectory {
    /// Generates a deterministic trajectory from `seed`, starting at the
    /// origin heading +X.
    pub fn generate(config: &TrajectoryConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dt = 1.0 / config.frame_rate;
        let mut poses = Vec::with_capacity(config.frames);
        let mut position = Vec3::ZERO;
        let mut yaw = 0.0f64;

        for _ in 0..config.frames {
            poses.push(RigidTransform::new(Mat3::rotation_z(yaw), position));
            let speed = (config.speed + gauss(&mut rng, config.speed_wander)).max(0.0);
            let yaw_rate = gauss(&mut rng, config.yaw_wander);
            yaw += yaw_rate * dt;
            let heading = Vec3::new(yaw.cos(), yaw.sin(), 0.0);
            position += heading * (speed * dt);
        }
        Trajectory { poses }
    }

    /// Generates a deterministic *closed-circuit* trajectory from `seed`:
    /// the vehicle drives a circle of the given `circumference` (starting
    /// at the origin heading +X, turning left around the center
    /// `(0, R)`), so a trajectory long enough to cover the circumference
    /// revisits its starting area — the fixture loop-closure needs.
    ///
    /// Speed wander perturbs progress along the circle exactly like the
    /// straight generator; yaw wander perturbs the turn rate around the
    /// nominal `speed / R`, so small wander keeps the circuit closing to
    /// within a meter or two (genuine re-observation, not an exact
    /// repeat).
    ///
    /// # Panics
    ///
    /// Panics when `circumference` is not strictly positive.
    pub fn generate_loop(config: &TrajectoryConfig, circumference: f64, seed: u64) -> Self {
        assert!(circumference > 0.0, "loop circumference must be positive, got {circumference}");
        let radius = circumference / std::f64::consts::TAU;
        let mut rng = StdRng::seed_from_u64(seed);
        let dt = 1.0 / config.frame_rate;
        let mut poses = Vec::with_capacity(config.frames);
        let mut position = Vec3::ZERO;
        let mut yaw = 0.0f64;

        for _ in 0..config.frames {
            poses.push(RigidTransform::new(Mat3::rotation_z(yaw), position));
            let speed = (config.speed + gauss(&mut rng, config.speed_wander)).max(0.0);
            let yaw_rate = speed / radius + gauss(&mut rng, config.yaw_wander);
            yaw += yaw_rate * dt;
            let heading = Vec3::new(yaw.cos(), yaw.sin(), 0.0);
            position += heading * (speed * dt);
        }
        Trajectory { poses }
    }

    /// The world-frame poses.
    pub fn poses(&self) -> &[RigidTransform] {
        &self.poses
    }

    /// Number of poses.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// `true` when no poses were generated.
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }

    /// The ground-truth relative transform that maps frame `i + 1`'s sensor
    /// coordinates into frame `i`'s sensor coordinates — exactly what
    /// registering frame `i+1` (source) against frame `i` (target) should
    /// estimate.
    ///
    /// # Panics
    ///
    /// Panics when `i + 1` is out of range.
    pub fn relative(&self, i: usize) -> RigidTransform {
        self.poses[i].inverse() * self.poses[i + 1]
    }

    /// Total path length (sum of inter-pose translation norms).
    pub fn path_length(&self) -> f64 {
        self.poses.windows(2).map(|w| (w[1].translation - w[0].translation).norm()).sum()
    }
}

fn gauss(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 0.0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_frames() {
        let t = Trajectory::generate(&TrajectoryConfig { frames: 17, ..Default::default() }, 1);
        assert_eq!(t.len(), 17);
        assert!(!t.is_empty());
    }

    #[test]
    fn starts_at_origin_heading_x() {
        let t = Trajectory::generate(&TrajectoryConfig::default(), 2);
        assert!(t.poses()[0].is_identity(1e-12));
    }

    #[test]
    fn moves_forward_at_roughly_speed_over_framerate() {
        let cfg = TrajectoryConfig {
            frames: 20,
            speed_wander: 0.0,
            yaw_wander: 0.0,
            ..Default::default()
        };
        let t = Trajectory::generate(&cfg, 3);
        let step = (t.poses()[1].translation - t.poses()[0].translation).norm();
        assert!((step - cfg.speed / cfg.frame_rate).abs() < 1e-9, "step = {step}");
        // Straight line when wander is zero.
        assert!(t.poses()[19].translation.y.abs() < 1e-9);
    }

    #[test]
    fn relative_recovers_pose_chain() {
        let t = Trajectory::generate(&TrajectoryConfig { frames: 10, ..Default::default() }, 4);
        for i in 0..9 {
            let rel = t.relative(i);
            let recon = t.poses()[i] * rel;
            assert!((recon.translation - t.poses()[i + 1].translation).norm() < 1e-9);
            assert!((recon.rotation - t.poses()[i + 1].rotation).frobenius_norm() < 1e-9);
        }
    }

    #[test]
    fn relative_magnitude_is_kitti_like() {
        let t = Trajectory::generate(&TrajectoryConfig::default(), 5);
        for i in 0..t.len() - 1 {
            let rel = t.relative(i);
            let d = rel.translation_norm();
            assert!(d > 0.5 && d < 2.0, "inter-frame displacement {d} m");
        }
    }

    #[test]
    fn path_length_consistency() {
        let cfg = TrajectoryConfig {
            frames: 11,
            speed_wander: 0.0,
            yaw_wander: 0.0,
            ..Default::default()
        };
        let t = Trajectory::generate(&cfg, 6);
        assert!((t.path_length() - 10.0 * cfg.speed / cfg.frame_rate).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TrajectoryConfig::default();
        let a = Trajectory::generate(&cfg, 9);
        let b = Trajectory::generate(&cfg, 9);
        assert_eq!(a.poses()[9].translation, b.poses()[9].translation);
        let c = Trajectory::generate(&cfg, 10);
        assert_ne!(a.poses()[9].translation, c.poses()[9].translation);
    }

    #[test]
    fn loop_trajectory_revisits_its_start() {
        // Enough frames to cover the full circumference: the last poses
        // come back to the origin's neighborhood.
        let circumference = 120.0;
        let cfg = TrajectoryConfig {
            frames: (120.0f64 / 1.0).ceil() as usize + 4,
            speed_wander: 0.1,
            yaw_wander: 0.002,
            ..TrajectoryConfig::default()
        };
        let t = Trajectory::generate_loop(&cfg, circumference, 7);
        assert!(t.poses()[0].is_identity(1e-12));
        let end = t.poses().last().unwrap().translation;
        assert!(end.norm() < 8.0, "loop end {end} should be near the start");
        // Mid-loop the vehicle is far from the start (it's a circle, not
        // jitter in place).
        let mid = t.poses()[t.len() / 2].translation;
        let radius = circumference / std::f64::consts::TAU;
        assert!(mid.norm() > radius, "mid-loop {mid} should be across the circle");
    }

    #[test]
    fn loop_trajectory_without_wander_closes_exactly() {
        let circumference = 80.0;
        let frames = 80; // 1 m steps cover the circumference exactly
        let cfg = TrajectoryConfig {
            frames: frames + 1,
            speed_wander: 0.0,
            yaw_wander: 0.0,
            ..TrajectoryConfig::default()
        };
        let t = Trajectory::generate_loop(&cfg, circumference, 1);
        let end = t.poses().last().unwrap().translation;
        // The polygonal approximation of the circle closes to within the
        // chord-vs-arc error.
        assert!(end.norm() < 1.0, "noiseless circuit end {end}");
    }

    #[test]
    #[should_panic(expected = "circumference")]
    fn loop_trajectory_rejects_degenerate_circumference() {
        Trajectory::generate_loop(&TrajectoryConfig::default(), 0.0, 1);
    }

    #[test]
    fn yaw_wander_bends_the_path() {
        let cfg = TrajectoryConfig { frames: 200, yaw_wander: 0.3, ..Default::default() };
        let t = Trajectory::generate(&cfg, 11);
        let max_y = t.poses().iter().map(|p| p.translation.y.abs()).fold(0.0, f64::max);
        assert!(max_y > 0.1, "path should bend, max |y| = {max_y}");
    }
}

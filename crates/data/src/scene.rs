//! Procedural urban scenes for the synthetic LiDAR scanner.
//!
//! A scene is a set of analytic primitives with exact ray intersection: a
//! ground plane, axis-aligned boxes (buildings, parked cars, clutter) and
//! vertical cylinders (poles, trunks). The generator lays out a road
//! corridor along +X with building façades on both sides — the geometry a
//! KITTI residential/urban sequence presents to the scanner.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tigris_geom::Vec3;

/// A ray with unit direction.
#[derive(Debug, Clone, Copy)]
pub struct Ray {
    /// Ray origin (the sensor position).
    pub origin: Vec3,
    /// Unit direction.
    pub dir: Vec3,
}

/// Scene primitives with analytic ray intersection.
#[derive(Debug, Clone)]
pub enum Primitive {
    /// Horizontal ground plane at height `z`.
    GroundPlane {
        /// Plane height.
        z: f64,
    },
    /// Axis-aligned box.
    Box {
        /// Minimum corner.
        min: Vec3,
        /// Maximum corner.
        max: Vec3,
    },
    /// Vertical cylinder (axis parallel to Z).
    Cylinder {
        /// Axis location in the XY plane.
        center_xy: (f64, f64),
        /// Cylinder radius.
        radius: f64,
        /// Bottom height.
        z_min: f64,
        /// Top height.
        z_max: f64,
    },
    /// A box rotated about the vertical axis — clutter (kiosks, dumpsters,
    /// skewed parked cars) that breaks the axis-aligned monotony real
    /// registration relies on.
    RotatedBox {
        /// Box centre.
        center: Vec3,
        /// Half-extents along the box's local axes.
        half_extents: Vec3,
        /// Yaw about +Z, radians.
        yaw: f64,
    },
}

impl Primitive {
    /// Distance `t > 0` along `ray` to the first intersection, or `None`.
    pub fn intersect(&self, ray: &Ray) -> Option<f64> {
        match *self {
            Primitive::GroundPlane { z } => {
                if ray.dir.z.abs() < 1e-12 {
                    return None;
                }
                let t = (z - ray.origin.z) / ray.dir.z;
                (t > 1e-9).then_some(t)
            }
            Primitive::Box { min, max } => ray_box(ray, min, max),
            Primitive::Cylinder { center_xy, radius, z_min, z_max } => {
                ray_cylinder(ray, center_xy, radius, z_min, z_max)
            }
            Primitive::RotatedBox { center, half_extents, yaw } => {
                // Transform the ray into the box frame and run the slab test.
                let (s, c) = yaw.sin_cos();
                let to_local = |v: Vec3| Vec3::new(c * v.x + s * v.y, -s * v.x + c * v.y, v.z);
                let local = Ray { origin: to_local(ray.origin - center), dir: to_local(ray.dir) };
                ray_box(&local, -half_extents, half_extents)
            }
        }
    }
}

/// Slab-method ray/AABB intersection; returns the entry distance.
fn ray_box(ray: &Ray, min: Vec3, max: Vec3) -> Option<f64> {
    let mut t_near = f64::NEG_INFINITY;
    let mut t_far = f64::INFINITY;
    for a in 0..3 {
        let o = ray.origin.axis(a);
        let d = ray.dir.axis(a);
        let (lo, hi) = (min.axis(a), max.axis(a));
        if d.abs() < 1e-12 {
            if o < lo || o > hi {
                return None;
            }
        } else {
            let mut t0 = (lo - o) / d;
            let mut t1 = (hi - o) / d;
            if t0 > t1 {
                std::mem::swap(&mut t0, &mut t1);
            }
            t_near = t_near.max(t0);
            t_far = t_far.min(t1);
            if t_near > t_far {
                return None;
            }
        }
    }
    if t_far < 1e-9 {
        return None;
    }
    // If the origin is inside, the first boundary hit is t_far.
    Some(if t_near > 1e-9 { t_near } else { t_far })
}

/// Ray/vertical-cylinder intersection (finite height, no caps — LiDAR
/// returns come from the lateral surface).
fn ray_cylinder(ray: &Ray, (cx, cy): (f64, f64), r: f64, z_min: f64, z_max: f64) -> Option<f64> {
    let ox = ray.origin.x - cx;
    let oy = ray.origin.y - cy;
    let dx = ray.dir.x;
    let dy = ray.dir.y;
    let a = dx * dx + dy * dy;
    if a < 1e-15 {
        return None;
    }
    let b = 2.0 * (ox * dx + oy * dy);
    let c = ox * ox + oy * oy - r * r;
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    for t in [(-b - sq) / (2.0 * a), (-b + sq) / (2.0 * a)] {
        if t > 1e-9 {
            let z = ray.origin.z + t * ray.dir.z;
            if z >= z_min && z <= z_max {
                return Some(t);
            }
        }
    }
    None
}

/// The kind of environment to generate (KITTI's sequences span both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SceneKind {
    /// Dense urban corridor: building façades, poles, parked cars, clutter.
    #[default]
    Urban,
    /// Highway: guardrails, gantries, sparse barriers and vehicles — far
    /// less lateral structure, the harder case for registration.
    Highway,
    /// Closed circuit: an urban ring road whose trajectory revisits its
    /// start — the loop-closure fixture. `corridor_length` is read as the
    /// ring's *circumference*; the road circles the center `(0, R)` with
    /// `R = circumference / 2π`, buildings inside and outside the ring.
    Loop,
}

/// Parameters of the procedural scene generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneConfig {
    /// Environment flavor.
    pub kind: SceneKind,
    /// Length of the road corridor along +X, in meters.
    pub corridor_length: f64,
    /// Half-width of the road (buildings start beyond this), meters.
    pub road_half_width: f64,
    /// Expected spacing between building façades along the road, meters.
    pub building_spacing: f64,
    /// Expected spacing between roadside poles, meters.
    pub pole_spacing: f64,
    /// Number of parked-car boxes per 100 m of road.
    pub cars_per_100m: f64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            kind: SceneKind::Urban,
            corridor_length: 400.0,
            road_half_width: 7.0,
            building_spacing: 18.0,
            pole_spacing: 25.0,
            cars_per_100m: 4.0,
        }
    }
}

impl SceneConfig {
    /// A short, sparse corridor for fast unit tests.
    pub fn tiny() -> Self {
        SceneConfig {
            corridor_length: 80.0,
            building_spacing: 25.0,
            pole_spacing: 40.0,
            cars_per_100m: 2.0,
            ..SceneConfig::default()
        }
    }

    /// A highway environment.
    pub fn highway() -> Self {
        SceneConfig { kind: SceneKind::Highway, road_half_width: 12.0, ..SceneConfig::default() }
    }

    /// A closed-circuit ring road of the given circumference (meters).
    pub fn loop_circuit(circumference: f64) -> Self {
        SceneConfig {
            kind: SceneKind::Loop,
            corridor_length: circumference,
            ..SceneConfig::default()
        }
    }
}

/// A generated scene: primitives plus the config used to build it.
#[derive(Debug, Clone)]
pub struct Scene {
    primitives: Vec<Primitive>,
    config: SceneConfig,
}

impl Scene {
    /// Generates a deterministic scene from `seed`.
    ///
    /// Urban layout: ground plane at z = 0; two rows of buildings with
    /// randomized setbacks, footprints and heights; roadside poles; façade
    /// detail; clutter; parked cars; landmark towers. Highway layout:
    /// guardrails, overhead gantries, sparse barriers and vehicles.
    pub fn generate(config: &SceneConfig, seed: u64) -> Self {
        match config.kind {
            SceneKind::Urban => Self::generate_urban(config, seed),
            SceneKind::Highway => Self::generate_highway(config, seed),
            SceneKind::Loop => Self::generate_loop(config, seed),
        }
    }

    /// Closed-circuit layout: an urban ring road of circumference
    /// `corridor_length` around center `(0, R)`. Buildings line both the
    /// inner and outer curb (tangent-aligned rotated boxes with different
    /// height priors — the inner/outer asymmetry that keeps a mirrored
    /// registration from aliasing), with poles, curbside clutter and
    /// landmark towers scattered around the ring.
    fn generate_loop(config: &SceneConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let radius = config.corridor_length / std::f64::consts::TAU;
        let center = Vec3::new(0.0, radius, 0.0);
        let mut prims = vec![Primitive::GroundPlane { z: 0.0 }];

        // A point at trajectory angle `phi`, distance `rho` from the ring
        // center; the road itself sits at rho = radius.
        let at = |phi: f64, rho: f64, z: f64| {
            Vec3::new(center.x + rho * phi.sin(), center.y - rho * phi.cos(), z)
        };

        // Buildings along both curbs, walking the ring in arc length. The
        // outer ring draws taller and deeper than the inner (asymmetry),
        // and widths/heights randomize per block so every sector of the
        // circuit is geometrically distinctive.
        for (outer, h_lo, h_hi) in [(true, 10.0, 22.0), (false, 3.0, 9.0)] {
            let mut arc = 0.0;
            while arc < config.corridor_length {
                let w = rng.gen_range(8.0..config.building_spacing.max(9.0));
                let depth = rng.gen_range(6.0..14.0);
                let height = rng.gen_range(h_lo..h_hi);
                let setback = rng.gen_range(1.0..4.0);
                let rho = if outer {
                    radius + config.road_half_width + setback + depth / 2.0
                } else {
                    radius - config.road_half_width - setback - depth / 2.0
                };
                // The inner ring may be too tight to hold a building.
                if rho > depth / 2.0 + 0.5 {
                    let phi = arc / radius;
                    prims.push(Primitive::RotatedBox {
                        center: at(phi, rho, height / 2.0),
                        half_extents: Vec3::new(w / 2.0, depth / 2.0, height / 2.0),
                        // Tangent direction at phi is (cos phi, sin phi).
                        yaw: phi,
                    });
                    // Façade detail boxes protruding toward the road.
                    for _ in 0..rng.gen_range(1..3usize) {
                        let fz = rng.gen_range(1.5..(height - 0.5).max(1.6));
                        let f_rho = if outer {
                            rho - depth / 2.0 - rng.gen_range(0.2..0.7)
                        } else {
                            rho + depth / 2.0 + rng.gen_range(0.2..0.7)
                        };
                        let f_phi = phi + rng.gen_range(-0.4 * w..0.4 * w) / radius;
                        prims.push(Primitive::RotatedBox {
                            center: at(f_phi, f_rho, fz),
                            half_extents: Vec3::new(
                                rng.gen_range(0.3..1.2),
                                rng.gen_range(0.2..0.6),
                                rng.gen_range(0.2..0.5),
                            ),
                            yaw: f_phi,
                        });
                    }
                }
                arc += w + rng.gen_range(1.0..6.0);
            }
        }

        // Curbside poles around the ring.
        for outer in [true, false] {
            let mut arc = rng.gen_range(0.0..config.pole_spacing);
            while arc < config.corridor_length {
                let rho_off = config.road_half_width - rng.gen_range(0.5..1.5);
                let rho = if outer { radius + rho_off } else { (radius - rho_off).max(0.5) };
                let p = at(arc / radius, rho, 0.0);
                prims.push(Primitive::Cylinder {
                    center_xy: (p.x, p.y),
                    radius: rng.gen_range(0.1..0.25),
                    z_min: 0.0,
                    z_max: rng.gen_range(4.0..8.0),
                });
                arc += config.pole_spacing * rng.gen_range(0.7..1.3);
            }
        }

        // Street clutter near the curbs: distinctive low corners.
        let n_clutter = (config.corridor_length / 10.0) as usize;
        for _ in 0..n_clutter {
            let phi = rng.gen_range(0.0..std::f64::consts::TAU);
            let rho = radius + rng.gen_range(-1.0..1.0) * (config.road_half_width + 1.5);
            let hz = rng.gen_range(0.4..1.2);
            prims.push(Primitive::RotatedBox {
                center: at(phi, rho.max(0.5), hz),
                half_extents: Vec3::new(rng.gen_range(0.4..1.6), rng.gen_range(0.3..1.1), hz),
                yaw: rng.gen_range(0.0..std::f64::consts::PI),
            });
        }

        // Landmark towers anchoring the circuit angularly.
        let n_landmarks = (config.corridor_length / 80.0).ceil() as usize + 1;
        for _ in 0..n_landmarks {
            let phi = rng.gen_range(0.0..std::f64::consts::TAU);
            let rho = radius + config.road_half_width + rng.gen_range(1.0..5.0);
            let p = at(phi, rho, 0.0);
            prims.push(Primitive::Cylinder {
                center_xy: (p.x, p.y),
                radius: rng.gen_range(1.0..2.5),
                z_min: 0.0,
                z_max: rng.gen_range(12.0..28.0),
            });
        }

        Scene { primitives: prims, config: *config }
    }

    fn generate_urban(config: &SceneConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prims = vec![Primitive::GroundPlane { z: 0.0 }];

        // Buildings on both sides of the corridor. The two sides draw from
        // different height/setback priors: real streets are not symmetric,
        // and without this a 180°-rotated registration is a near-perfect
        // geometric match (the front-end would alias).
        for side in [-1.0, 1.0] {
            let (h_lo, h_hi) = if side < 0.0 { (3.0, 9.0) } else { (10.0, 22.0) };
            let mut x = -20.0;
            while x < config.corridor_length {
                let w = rng.gen_range(8.0..config.building_spacing.max(9.0));
                let depth = rng.gen_range(8.0..20.0);
                let height = rng.gen_range(h_lo..h_hi);
                let setback =
                    if side < 0.0 { rng.gen_range(0.0..2.0) } else { rng.gen_range(2.0..6.0) };
                let y0 = side * (config.road_half_width + setback);
                let (y_min, y_max) = if side < 0.0 { (y0 - depth, y0) } else { (y0, y0 + depth) };
                prims.push(Primitive::Box {
                    min: Vec3::new(x, y_min, 0.0),
                    max: Vec3::new(x + w, y_max, height),
                });
                // Façade detail: protruding awnings/balconies/signage make
                // each building front geometrically distinctive (a featureless
                // box wall gives descriptor matching nothing to lock onto).
                let facade_y = if side < 0.0 { y_max } else { y_min };
                for _ in 0..rng.gen_range(1..4usize) {
                    let fx = x + rng.gen_range(0.5..(w - 1.0).max(0.6));
                    let fz = rng.gen_range(1.5..(height - 0.5).max(1.6));
                    let fw = rng.gen_range(0.6..2.5);
                    let fd = rng.gen_range(0.3..1.2);
                    let fh = rng.gen_range(0.3..1.0);
                    let (fy_min, fy_max) = if side < 0.0 {
                        (facade_y, facade_y + fd)
                    } else {
                        (facade_y - fd, facade_y)
                    };
                    prims.push(Primitive::Box {
                        min: Vec3::new(fx, fy_min, fz),
                        max: Vec3::new(fx + fw, fy_max, fz + fh),
                    });
                }
                x += w + rng.gen_range(1.0..6.0);
            }
        }

        // Street clutter: kiosks, dumpsters and skewed cars at random yaw
        // near the curb — distinctive corners at ground level.
        let n_clutter = (config.corridor_length / 12.0) as usize;
        for _ in 0..n_clutter {
            let x = rng.gen_range(0.0..config.corridor_length);
            let side = if rng.gen_bool(0.5) { -1.0 } else { 1.0 };
            let y = side * (config.road_half_width + rng.gen_range(-2.5..2.0));
            let hx = rng.gen_range(0.4..1.6);
            let hy = rng.gen_range(0.3..1.1);
            let hz = rng.gen_range(0.4..1.2);
            prims.push(Primitive::RotatedBox {
                center: Vec3::new(x, y, hz),
                half_extents: Vec3::new(hx, hy, hz),
                yaw: rng.gen_range(0.0..std::f64::consts::PI),
            });
        }

        // Roadside poles.
        for side in [-1.0, 1.0] {
            let mut x = rng.gen_range(0.0..config.pole_spacing);
            while x < config.corridor_length {
                let y = side * (config.road_half_width - rng.gen_range(0.5..1.5));
                prims.push(Primitive::Cylinder {
                    center_xy: (x, y),
                    radius: rng.gen_range(0.1..0.25),
                    z_min: 0.0,
                    z_max: rng.gen_range(4.0..8.0),
                });
                x += config.pole_spacing * rng.gen_range(0.7..1.3);
            }
        }

        // Distinctive landmarks: occasional large towers that anchor the
        // registration longitudinally (water towers, silos — common urban
        // oddities that break translational/rotational aliasing).
        let n_landmarks = (config.corridor_length / 120.0).ceil() as usize + 1;
        for _ in 0..n_landmarks {
            let x = rng.gen_range(0.0..config.corridor_length);
            let side = if rng.gen_bool(0.5) { -1.0 } else { 1.0 };
            let y = side * (config.road_half_width + rng.gen_range(1.0..5.0));
            prims.push(Primitive::Cylinder {
                center_xy: (x, y),
                radius: rng.gen_range(1.0..2.5),
                z_min: 0.0,
                z_max: rng.gen_range(12.0..28.0),
            });
        }

        // Parked cars: low boxes near the curb.
        let n_cars = (config.corridor_length / 100.0 * config.cars_per_100m) as usize;
        for _ in 0..n_cars {
            let x = rng.gen_range(0.0..config.corridor_length);
            let side = if rng.gen_bool(0.5) { -1.0 } else { 1.0 };
            let y = side * (config.road_half_width - 2.2);
            prims.push(Primitive::Box {
                min: Vec3::new(x, y - 0.9, 0.0),
                max: Vec3::new(x + rng.gen_range(3.5..5.0), y + 0.9, rng.gen_range(1.4..1.8)),
            });
        }

        Scene { primitives: prims, config: *config }
    }

    fn generate_highway(config: &SceneConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prims = vec![Primitive::GroundPlane { z: 0.0 }];
        let w = config.road_half_width;

        // Continuous guardrails along both shoulders: long, low boxes in
        // segments (with small gaps, as real rails have posts and breaks).
        for side in [-1.0, 1.0] {
            let mut x = -30.0;
            while x < config.corridor_length {
                let len = rng.gen_range(15.0..40.0);
                let y = side * (w + rng.gen_range(0.0..0.5));
                prims.push(Primitive::Box {
                    min: Vec3::new(x, y - 0.1, 0.4),
                    max: Vec3::new(x + len, y + 0.1, 0.75),
                });
                x += len + rng.gen_range(0.5..2.0);
            }
        }

        // Overhead sign gantries every ~120 m: two posts + a crossbeam.
        let mut x = rng.gen_range(20.0..80.0);
        while x < config.corridor_length {
            for side in [-1.0, 1.0] {
                prims.push(Primitive::Cylinder {
                    center_xy: (x, side * (w + 1.0)),
                    radius: 0.3,
                    z_min: 0.0,
                    z_max: 6.5,
                });
            }
            prims.push(Primitive::Box {
                min: Vec3::new(x - 0.4, -(w + 1.2), 5.6),
                max: Vec3::new(x + 0.4, w + 1.2, 6.6),
            });
            // A sign panel at a random lateral position on the beam.
            let sy = rng.gen_range(-w * 0.7..w * 0.7);
            prims.push(Primitive::Box {
                min: Vec3::new(x - 0.15, sy - 2.0, 3.8),
                max: Vec3::new(x + 0.15, sy + 2.0, 5.6),
            });
            x += rng.gen_range(90.0..150.0);
        }

        // Sparse noise barriers on one side (randomized runs).
        let mut x = rng.gen_range(0.0..60.0);
        while x < config.corridor_length {
            let len = rng.gen_range(30.0..80.0);
            prims.push(Primitive::Box {
                min: Vec3::new(x, w + 3.0, 0.0),
                max: Vec3::new(x + len, w + 3.6, rng.gen_range(3.0..5.0)),
            });
            x += len + rng.gen_range(40.0..120.0);
        }

        // Other vehicles on the carriageway (skewed slightly in their lanes).
        let n_vehicles = (config.corridor_length / 100.0 * config.cars_per_100m) as usize;
        for _ in 0..n_vehicles {
            let x = rng.gen_range(0.0..config.corridor_length);
            let lane = rng.gen_range(-0.8..0.8) * w * 0.7;
            let truck = rng.gen_bool(0.3);
            let (hl, hw2, hh) = if truck { (5.0, 1.25, 1.8) } else { (2.2, 0.9, 0.75) };
            prims.push(Primitive::RotatedBox {
                center: Vec3::new(x, lane, hh),
                half_extents: Vec3::new(hl, hw2, hh),
                yaw: rng.gen_range(-0.05..0.05),
            });
        }

        Scene { primitives: prims, config: *config }
    }

    /// The scene's primitives.
    pub fn primitives(&self) -> &[Primitive] {
        &self.primitives
    }

    /// The generator configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Casts `ray` against every primitive and returns the nearest hit
    /// distance within `max_range`, or `None` (no return — sky, or too far).
    pub fn cast(&self, ray: &Ray, max_range: f64) -> Option<f64> {
        let mut best: Option<f64> = None;
        for p in &self.primitives {
            if let Some(t) = p.intersect(ray) {
                if t <= max_range && best.is_none_or(|b| t < b) {
                    best = Some(t);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn down_ray(from: Vec3) -> Ray {
        Ray { origin: from, dir: -Vec3::Z }
    }

    #[test]
    fn ground_plane_intersection() {
        let p = Primitive::GroundPlane { z: 0.0 };
        let t = p.intersect(&down_ray(Vec3::new(0.0, 0.0, 1.7))).unwrap();
        assert!((t - 1.7).abs() < 1e-12);
        // Parallel ray misses.
        assert!(p.intersect(&Ray { origin: Vec3::new(0.0, 0.0, 1.0), dir: Vec3::X }).is_none());
        // Looking up misses.
        assert!(p.intersect(&Ray { origin: Vec3::new(0.0, 0.0, 1.0), dir: Vec3::Z }).is_none());
    }

    #[test]
    fn box_intersection_from_outside() {
        let b = Primitive::Box { min: Vec3::new(5.0, -1.0, 0.0), max: Vec3::new(7.0, 1.0, 3.0) };
        let ray = Ray { origin: Vec3::new(0.0, 0.0, 1.0), dir: Vec3::X };
        let t = b.intersect(&ray).unwrap();
        assert!((t - 5.0).abs() < 1e-12);
        // Ray pointing away misses.
        let away = Ray { origin: Vec3::new(0.0, 0.0, 1.0), dir: -Vec3::X };
        assert!(b.intersect(&away).is_none());
        // Ray passing above misses.
        let above = Ray { origin: Vec3::new(0.0, 0.0, 5.0), dir: Vec3::X };
        assert!(b.intersect(&above).is_none());
    }

    #[test]
    fn box_intersection_from_inside() {
        let b = Primitive::Box { min: Vec3::splat(-1.0), max: Vec3::splat(1.0) };
        let ray = Ray { origin: Vec3::ZERO, dir: Vec3::X };
        let t = b.intersect(&ray).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cylinder_intersection() {
        let c = Primitive::Cylinder { center_xy: (10.0, 0.0), radius: 0.5, z_min: 0.0, z_max: 6.0 };
        let ray = Ray { origin: Vec3::new(0.0, 0.0, 2.0), dir: Vec3::X };
        let t = c.intersect(&ray).unwrap();
        assert!((t - 9.5).abs() < 1e-12);
        // Above the cylinder top: miss.
        let high = Ray { origin: Vec3::new(0.0, 0.0, 7.0), dir: Vec3::X };
        assert!(c.intersect(&high).is_none());
        // Tangential offset larger than radius: miss.
        let off = Ray { origin: Vec3::new(0.0, 1.0, 2.0), dir: Vec3::X };
        assert!(c.intersect(&off).is_none());
    }

    #[test]
    fn cylinder_vertical_ray_misses_lateral_surface() {
        let c = Primitive::Cylinder { center_xy: (0.0, 0.0), radius: 1.0, z_min: 0.0, z_max: 5.0 };
        let ray = Ray { origin: Vec3::new(0.0, 0.0, 10.0), dir: -Vec3::Z };
        assert!(c.intersect(&ray).is_none());
    }

    #[test]
    fn generated_scene_is_deterministic() {
        let cfg = SceneConfig::tiny();
        let a = Scene::generate(&cfg, 7);
        let b = Scene::generate(&cfg, 7);
        assert_eq!(a.primitives().len(), b.primitives().len());
    }

    #[test]
    fn generated_scene_has_all_primitive_kinds() {
        let scene = Scene::generate(&SceneConfig::default(), 3);
        let has_ground =
            scene.primitives().iter().any(|p| matches!(p, Primitive::GroundPlane { .. }));
        let has_box = scene.primitives().iter().any(|p| matches!(p, Primitive::Box { .. }));
        let has_cyl = scene.primitives().iter().any(|p| matches!(p, Primitive::Cylinder { .. }));
        assert!(has_ground && has_box && has_cyl);
        assert!(scene.primitives().len() > 20);
    }

    #[test]
    fn highway_scene_has_rails_and_gantries() {
        let scene = Scene::generate(&SceneConfig::highway(), 4);
        assert!(matches!(scene.config().kind, SceneKind::Highway));
        let boxes =
            scene.primitives().iter().filter(|p| matches!(p, Primitive::Box { .. })).count();
        let cyls =
            scene.primitives().iter().filter(|p| matches!(p, Primitive::Cylinder { .. })).count();
        assert!(boxes > 10, "{boxes} boxes");
        assert!(cyls >= 2, "{cyls} gantry posts");
        // Highway is sparser than urban.
        let urban = Scene::generate(&SceneConfig::default(), 4);
        assert!(scene.primitives().len() < urban.primitives().len());
    }

    #[test]
    fn highway_guardrail_is_hit_laterally() {
        let scene = Scene::generate(&SceneConfig::highway(), 7);
        // A low lateral ray from mid-road should meet a guardrail within
        // ~road half width + slack.
        let ray = Ray { origin: Vec3::new(100.0, 0.0, 0.55), dir: Vec3::new(0.0, 1.0, 0.0) };
        if let Some(t) = scene.cast(&ray, 40.0) {
            assert!(t > 5.0 && t < 20.0, "rail at {t} m");
        }
    }

    #[test]
    fn loop_scene_rings_the_circuit() {
        let circumference = 120.0;
        let scene = Scene::generate(&SceneConfig::loop_circuit(circumference), 5);
        assert!(matches!(scene.config().kind, SceneKind::Loop));
        let radius = circumference / std::f64::consts::TAU;
        // From several points on the ring road, a lateral (outward) ray at
        // building height should hit structure within a couple of dozen
        // meters — the circuit is walled the whole way around.
        let mut hits = 0;
        let probes = 8;
        for i in 0..probes {
            let phi = i as f64 / probes as f64 * std::f64::consts::TAU;
            let origin = Vec3::new(radius * phi.sin(), radius - radius * phi.cos(), 2.0);
            let outward = Vec3::new(phi.sin(), -phi.cos(), 0.0);
            if scene.cast(&Ray { origin, dir: outward }, 60.0).is_some() {
                hits += 1;
            }
        }
        assert!(hits >= probes / 2, "only {hits}/{probes} outward probes hit the ring");
        // Determinism, as for the other kinds.
        let again = Scene::generate(&SceneConfig::loop_circuit(circumference), 5);
        assert_eq!(scene.primitives().len(), again.primitives().len());
    }

    #[test]
    fn cast_returns_nearest() {
        let scene = Scene::generate(&SceneConfig::tiny(), 1);
        // From above the road looking straight down: must hit the ground at
        // exactly the sensor height (nothing is between).
        let ray = down_ray(Vec3::new(10.0, 0.0, 1.73));
        let t = scene.cast(&ray, 120.0).unwrap();
        assert!((t - 1.73).abs() < 1e-9);
    }

    #[test]
    fn cast_respects_max_range() {
        let scene = Scene::generate(&SceneConfig::tiny(), 1);
        let ray = down_ray(Vec3::new(10.0, 0.0, 1.73));
        assert!(scene.cast(&ray, 1.0).is_none());
    }

    #[test]
    fn sky_rays_miss() {
        let scene = Scene::generate(&SceneConfig::tiny(), 1);
        let ray = Ray { origin: Vec3::new(10.0, 0.0, 1.73), dir: Vec3::Z };
        assert!(scene.cast(&ray, 120.0).is_none());
    }
}

//! A spinning multi-beam LiDAR model in the mold of the Velodyne HDL-64E
//! that captured KITTI (64 beams, −24.8°…+2° vertical field of view,
//! 360° sweep, ~120 m range).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_normal::sample_normal;
use tigris_geom::{PointCloud, RigidTransform, Vec3};

use crate::scene::{Ray, Scene};

/// Minimal Box–Muller normal sampler so we stay within the `rand` crate.
mod rand_distr_normal {
    use rand::Rng;

    /// One sample from N(0, sigma²).
    pub fn sample_normal<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Scanner parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LidarConfig {
    /// Number of laser beams (rings). HDL-64E: 64.
    pub beams: usize,
    /// Azimuth steps per revolution. HDL-64E at 10 Hz: ~1800–2000.
    pub azimuth_steps: usize,
    /// Topmost beam elevation, radians (HDL-64E: +2°).
    pub elevation_max: f64,
    /// Bottommost beam elevation, radians (HDL-64E: −24.8°).
    pub elevation_min: f64,
    /// Maximum usable range, meters.
    pub max_range: f64,
    /// 1-σ Gaussian range noise, meters (HDL-64E: ~2 cm).
    pub range_noise_sigma: f64,
    /// Probability a valid return is dropped (dust, absorption).
    pub dropout: f64,
    /// Sensor height above the vehicle origin, meters.
    pub mount_height: f64,
}

impl Default for LidarConfig {
    fn default() -> Self {
        LidarConfig {
            beams: 64,
            azimuth_steps: 900,
            elevation_max: 2.0_f64.to_radians(),
            elevation_min: -24.8_f64.to_radians(),
            max_range: 120.0,
            range_noise_sigma: 0.02,
            dropout: 0.005,
            mount_height: 1.73,
        }
    }
}

impl LidarConfig {
    /// A low-resolution scanner for fast tests (16 beams, 120 columns).
    pub fn tiny() -> Self {
        LidarConfig { beams: 16, azimuth_steps: 120, ..LidarConfig::default() }
    }

    /// Expected upper bound on returns per frame.
    pub fn rays_per_frame(&self) -> usize {
        self.beams * self.azimuth_steps
    }
}

/// The scanner. Owns its noise RNG so consecutive frames see independent
/// noise but the whole sequence stays reproducible from one seed.
#[derive(Debug)]
pub struct Lidar {
    config: LidarConfig,
    rng: StdRng,
}

impl Lidar {
    /// Creates a scanner with the given configuration and noise seed.
    pub fn new(config: LidarConfig, seed: u64) -> Self {
        Lidar { config, rng: StdRng::seed_from_u64(seed) }
    }

    /// The scanner configuration.
    pub fn config(&self) -> &LidarConfig {
        &self.config
    }

    /// Scans `scene` from vehicle pose `pose` (vehicle frame: x forward,
    /// z up; the sensor sits `mount_height` above the vehicle origin).
    ///
    /// Returns the point cloud in the *sensor* frame — the frame
    /// registration operates in, exactly like a KITTI `.bin` scan.
    pub fn scan(&mut self, scene: &Scene, pose: &RigidTransform) -> PointCloud {
        let cfg = self.config;
        let sensor_offset = Vec3::new(0.0, 0.0, cfg.mount_height);
        let origin_world = pose.apply(sensor_offset);

        let mut points = Vec::with_capacity(cfg.rays_per_frame() / 2);
        for beam in 0..cfg.beams {
            let frac = if cfg.beams > 1 { beam as f64 / (cfg.beams - 1) as f64 } else { 0.5 };
            let elevation = cfg.elevation_max + frac * (cfg.elevation_min - cfg.elevation_max);
            let (sin_e, cos_e) = elevation.sin_cos();
            for step in 0..cfg.azimuth_steps {
                let azimuth = step as f64 / cfg.azimuth_steps as f64 * std::f64::consts::TAU;
                let (sin_a, cos_a) = azimuth.sin_cos();
                // Direction in the sensor frame.
                let dir_sensor = Vec3::new(cos_e * cos_a, cos_e * sin_a, sin_e);
                let dir_world = pose.apply_direction(dir_sensor);
                let ray = Ray { origin: origin_world, dir: dir_world };
                let Some(range) = scene.cast(&ray, cfg.max_range) else {
                    continue;
                };
                if cfg.dropout > 0.0 && self.rng.gen_bool(cfg.dropout) {
                    continue;
                }
                let noisy = (range + sample_normal(&mut self.rng, cfg.range_noise_sigma)).max(0.1);
                points.push(dir_sensor * noisy);
            }
        }
        PointCloud::from_points(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneConfig;

    fn scan_once(seed: u64) -> PointCloud {
        let scene = Scene::generate(&SceneConfig::tiny(), 1);
        let mut lidar = Lidar::new(LidarConfig::tiny(), seed);
        lidar.scan(&scene, &RigidTransform::from_translation(Vec3::new(10.0, 0.0, 0.0)))
    }

    #[test]
    fn scan_produces_points() {
        let cloud = scan_once(3);
        assert!(cloud.len() > 200, "only {} returns", cloud.len());
        assert!(cloud.len() <= LidarConfig::tiny().rays_per_frame());
    }

    #[test]
    fn points_are_within_range() {
        let cfg = LidarConfig::tiny();
        let cloud = scan_once(4);
        for &p in cloud.points() {
            let r = p.norm();
            assert!(r <= cfg.max_range + 0.5, "range {r}");
            assert!(r > 0.05);
            assert!(p.is_finite());
        }
    }

    #[test]
    fn ground_points_lie_near_sensor_minus_mount_height() {
        // In the sensor frame the ground shows up around z = -mount_height.
        let cloud = scan_once(5);
        let ground_points = cloud.points().iter().filter(|p| p.z < -1.0).count();
        assert!(ground_points > 50, "ground returns expected, got {ground_points}");
        let min_z = cloud.points().iter().map(|p| p.z).fold(f64::INFINITY, f64::min);
        assert!(min_z > -2.5, "nothing should be far below the ground plane, min_z = {min_z}");
    }

    #[test]
    fn scans_are_reproducible_per_seed() {
        let a = scan_once(7);
        let b = scan_once(7);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.points()[0], b.points()[0]);
        let c = scan_once(8);
        // Different noise seed: same geometry, different jitter.
        assert_eq!(a.len(), c.len());
        assert_ne!(a.points()[0], c.points()[0]);
    }

    #[test]
    fn dropout_removes_returns() {
        let scene = Scene::generate(&SceneConfig::tiny(), 1);
        let pose = RigidTransform::from_translation(Vec3::new(10.0, 0.0, 0.0));
        let mut clean = Lidar::new(LidarConfig { dropout: 0.0, ..LidarConfig::tiny() }, 1);
        let mut lossy = Lidar::new(LidarConfig { dropout: 0.5, ..LidarConfig::tiny() }, 1);
        let n_clean = clean.scan(&scene, &pose).len();
        let n_lossy = lossy.scan(&scene, &pose).len();
        assert!(n_lossy < n_clean * 7 / 10, "{n_lossy} vs {n_clean}");
    }

    #[test]
    fn pose_changes_the_view() {
        let scene = Scene::generate(&SceneConfig::tiny(), 1);
        let mut lidar = Lidar::new(
            LidarConfig { range_noise_sigma: 0.0, dropout: 0.0, ..LidarConfig::tiny() },
            1,
        );
        let a = lidar.scan(&scene, &RigidTransform::from_translation(Vec3::new(5.0, 0.0, 0.0)));
        let b = lidar.scan(&scene, &RigidTransform::from_translation(Vec3::new(30.0, 0.0, 0.0)));
        // Different vantage points see different numbers of returns.
        assert_ne!(a.len(), b.len());
    }

    #[test]
    fn default_config_is_hdl64_like() {
        let cfg = LidarConfig::default();
        assert_eq!(cfg.beams, 64);
        assert!(cfg.elevation_max > 0.0 && cfg.elevation_min < 0.0);
        assert!((cfg.mount_height - 1.73).abs() < 1e-12);
    }
}

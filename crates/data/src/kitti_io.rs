//! KITTI-format I/O.
//!
//! The reproduction generates synthetic data, but a downstream user will
//! want to run the pipeline on real KITTI sequences. This module
//! reads/writes the two formats the odometry benchmark uses:
//!
//! * **Velodyne scans** (`.bin`): little-endian `f32` quadruples
//!   `x y z intensity`, one per point.
//! * **Pose files** (`poses/NN.txt`): one pose per line as the first 3
//!   rows of a 4×4 homogeneous matrix — 12 `f64` values, row-major.
//!
//! Plus a plain `.xyz` text format (one `x y z` per line) for quick
//! interchange with other tools.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use tigris_geom::{Mat3, PointCloud, RigidTransform, Vec3};

/// Reads a KITTI Velodyne `.bin` scan. Intensity is discarded (the
/// registration pipeline is geometry-only, like the paper's).
///
/// # Errors
///
/// I/O errors, or [`io::ErrorKind::InvalidData`] when the file length is
/// not a multiple of 16 bytes.
pub fn read_velodyne_bin<P: AsRef<Path>>(path: P) -> io::Result<PointCloud> {
    let mut file = File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    velodyne_from_bytes(&bytes)
}

/// Parses Velodyne `.bin` content from memory.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] when the length is not a multiple of 16.
pub fn velodyne_from_bytes(bytes: &[u8]) -> io::Result<PointCloud> {
    if !bytes.len().is_multiple_of(16) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("velodyne .bin length {} is not a multiple of 16", bytes.len()),
        ));
    }
    let mut points = Vec::with_capacity(bytes.len() / 16);
    for chunk in bytes.chunks_exact(16) {
        let x = f32::from_le_bytes(chunk[0..4].try_into().unwrap());
        let y = f32::from_le_bytes(chunk[4..8].try_into().unwrap());
        let z = f32::from_le_bytes(chunk[8..12].try_into().unwrap());
        points.push(Vec3::new(x as f64, y as f64, z as f64));
    }
    Ok(PointCloud::from_points(points))
}

/// Writes a cloud as a KITTI Velodyne `.bin` (intensity written as 0).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_velodyne_bin<P: AsRef<Path>>(path: P, cloud: &PointCloud) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for p in cloud.points() {
        w.write_all(&(p.x as f32).to_le_bytes())?;
        w.write_all(&(p.y as f32).to_le_bytes())?;
        w.write_all(&(p.z as f32).to_le_bytes())?;
        w.write_all(&0.0f32.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a KITTI pose file: one 3×4 row-major matrix per line.
///
/// # Errors
///
/// I/O errors, or [`io::ErrorKind::InvalidData`] for malformed lines.
pub fn read_poses<P: AsRef<Path>>(path: P) -> io::Result<Vec<RigidTransform>> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(pose_from_line(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", lineno + 1))
        })?);
    }
    Ok(out)
}

/// Parses one KITTI pose line (12 whitespace-separated floats).
///
/// # Errors
///
/// A description of the malformation.
pub fn pose_from_line(line: &str) -> Result<RigidTransform, String> {
    let vals: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse).collect();
    let vals = vals.map_err(|e| format!("parse error: {e}"))?;
    if vals.len() != 12 {
        return Err(format!("expected 12 values, got {}", vals.len()));
    }
    let rotation = Mat3::from_rows(
        [vals[0], vals[1], vals[2]],
        [vals[4], vals[5], vals[6]],
        [vals[8], vals[9], vals[10]],
    );
    let translation = Vec3::new(vals[3], vals[7], vals[11]);
    Ok(RigidTransform::new(rotation, translation))
}

/// Formats a pose as a KITTI pose line.
pub fn pose_to_line(pose: &RigidTransform) -> String {
    let r = &pose.rotation.m;
    let t = pose.translation;
    format!(
        "{:e} {:e} {:e} {:e} {:e} {:e} {:e} {:e} {:e} {:e} {:e} {:e}",
        r[0][0],
        r[0][1],
        r[0][2],
        t.x,
        r[1][0],
        r[1][1],
        r[1][2],
        t.y,
        r[2][0],
        r[2][1],
        r[2][2],
        t.z
    )
}

/// Writes poses in KITTI format, one per line.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_poses<P: AsRef<Path>>(path: P, poses: &[RigidTransform]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for pose in poses {
        writeln!(w, "{}", pose_to_line(pose))?;
    }
    w.flush()
}

/// Writes a cloud as plain `.xyz` text (one `x y z` per line).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_xyz<P: AsRef<Path>>(path: P, cloud: &PointCloud) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for p in cloud.points() {
        writeln!(w, "{} {} {}", p.x, p.y, p.z)?;
    }
    w.flush()
}

/// Reads a plain `.xyz` text cloud.
///
/// # Errors
///
/// I/O errors, or [`io::ErrorKind::InvalidData`] for malformed lines.
pub fn read_xyz<P: AsRef<Path>>(path: P) -> io::Result<PointCloud> {
    let reader = BufReader::new(File::open(path)?);
    let mut points = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let vals: Result<Vec<f64>, _> = trimmed.split_whitespace().map(str::parse).collect();
        let vals = vals.map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", lineno + 1))
        })?;
        if vals.len() < 3 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected at least 3 values", lineno + 1),
            ));
        }
        points.push(Vec3::new(vals[0], vals[1], vals[2]));
    }
    Ok(PointCloud::from_points(points))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cloud() -> PointCloud {
        PointCloud::from_points(vec![
            Vec3::new(1.5, -2.25, 3.125),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(-10.0, 20.0, -30.5),
        ])
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tigris_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn velodyne_round_trip() {
        let cloud = sample_cloud();
        let path = tmp("scan.bin");
        write_velodyne_bin(&path, &cloud).unwrap();
        let back = read_velodyne_bin(&path).unwrap();
        assert_eq!(back.len(), cloud.len());
        for (a, b) in cloud.points().iter().zip(back.points()) {
            // f32 round trip.
            assert!((a.x - b.x).abs() < 1e-6);
            assert!((a.z - b.z).abs() < 1e-6);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn velodyne_from_bytes_validates_length() {
        assert!(velodyne_from_bytes(&[0u8; 15]).is_err());
        assert_eq!(velodyne_from_bytes(&[0u8; 32]).unwrap().len(), 2);
        assert!(velodyne_from_bytes(&[]).unwrap().is_empty());
    }

    #[test]
    fn pose_line_round_trip() {
        let pose = RigidTransform::from_axis_angle(
            Vec3::new(0.2, 1.0, -0.4),
            0.73,
            Vec3::new(12.5, -3.25, 0.5),
        );
        let line = pose_to_line(&pose);
        let back = pose_from_line(&line).unwrap();
        assert!((back.translation - pose.translation).norm() < 1e-12);
        assert!((back.rotation - pose.rotation).frobenius_norm() < 1e-12);
    }

    #[test]
    fn pose_line_kitti_identity_convention() {
        // The canonical first line of every KITTI pose file.
        let line = "1 0 0 0 0 1 0 0 0 0 1 0";
        let pose = pose_from_line(line).unwrap();
        assert!(pose.is_identity(1e-12));
    }

    #[test]
    fn pose_line_rejects_malformed() {
        assert!(pose_from_line("1 2 3").is_err());
        assert!(pose_from_line("a b c d e f g h i j k l").is_err());
    }

    #[test]
    fn poses_file_round_trip() {
        let poses: Vec<RigidTransform> = (0..5)
            .map(|i| {
                RigidTransform::from_axis_angle(
                    Vec3::Z,
                    0.1 * i as f64,
                    Vec3::new(i as f64, 0.0, 0.0),
                )
            })
            .collect();
        let path = tmp("poses.txt");
        write_poses(&path, &poses).unwrap();
        let back = read_poses(&path).unwrap();
        assert_eq!(back.len(), 5);
        for (a, b) in poses.iter().zip(&back) {
            assert!((a.translation - b.translation).norm() < 1e-12);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn xyz_round_trip_with_comments() {
        let cloud = sample_cloud();
        let path = tmp("cloud.xyz");
        write_xyz(&path, &cloud).unwrap();
        // Prepend a comment and a blank line.
        let contents = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("# comment\n\n{contents}")).unwrap();
        let back = read_xyz(&path).unwrap();
        assert_eq!(back.len(), cloud.len());
        assert_eq!(back.points()[0], cloud.points()[0]);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn xyz_rejects_malformed() {
        let path = tmp("bad.xyz");
        std::fs::write(&path, "1.0 2.0\n").unwrap();
        assert!(read_xyz(&path).is_err());
        std::fs::write(&path, "1.0 2.0 zebra\n").unwrap();
        assert!(read_xyz(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }
}

//! KITTI-style odometry error metrics (paper Sec. 6.1: "The accuracy is
//! measured using standard rotational and translational errors").
//!
//! Following the KITTI benchmark, errors are computed on *relative* pose
//! estimates and normalized by traveled distance: translational error in
//! percent of distance, rotational error in degrees per meter.

use tigris_geom::RigidTransform;

/// Aggregated odometry error over a sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OdometryError {
    /// Mean translational error, percent of distance traveled.
    pub translational_percent: f64,
    /// Mean rotational error, degrees per meter traveled.
    pub rotational_deg_per_m: f64,
    /// Standard deviation of the per-frame translational percentages (the
    /// error bars of paper Fig. 7).
    pub translational_percent_std: f64,
    /// Number of frame pairs aggregated.
    pub pairs: usize,
}

impl std::fmt::Display for OdometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t_err = {:.3}% ± {:.3}, r_err = {:.5} °/m over {} pairs",
            self.translational_percent,
            self.translational_percent_std,
            self.rotational_deg_per_m,
            self.pairs
        )
    }
}

/// Absolute trajectory error (ATE): the root-mean-square translation
/// distance between estimated and ground-truth *absolute* poses, compared
/// index by index with no alignment step (both trajectories are anchored
/// at the same first pose, as the odometer's and mapper's are).
///
/// This is the mapping-layer complement of the KITTI relative metrics:
/// relative errors measure per-pair registration quality, ATE measures the
/// *accumulated* drift a loop closure's pose-graph optimization exists to
/// redistribute. Returns 0 for empty input.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn absolute_trajectory_error(est: &[RigidTransform], gt: &[RigidTransform]) -> f64 {
    assert_eq!(est.len(), gt.len(), "estimate/ground-truth length mismatch");
    if est.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 =
        est.iter().zip(gt).map(|(e, g)| (e.translation - g.translation).norm_squared()).sum();
    (sum_sq / est.len() as f64).sqrt()
}

/// Error of one estimated relative pose against ground truth: returns
/// `(translation_error_m, rotation_error_rad)` of the residual transform
/// `gt⁻¹ ∘ est`.
pub fn relative_pose_error(est: &RigidTransform, gt: &RigidTransform) -> (f64, f64) {
    let residual = gt.inverse() * *est;
    (residual.translation_norm(), residual.rotation_angle())
}

/// Aggregates KITTI-style errors over parallel slices of estimated and
/// ground-truth *relative* transforms (one per consecutive frame pair).
///
/// Per pair, the translational error is the residual translation norm as a
/// percentage of the ground-truth displacement; the rotational error is the
/// residual angle (degrees) per meter of ground-truth displacement. Pairs
/// with ground-truth displacement below 1 cm are skipped (the normalization
/// would explode).
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn sequence_error(est: &[RigidTransform], gt: &[RigidTransform]) -> OdometryError {
    assert_eq!(est.len(), gt.len(), "estimate/ground-truth length mismatch");
    let mut t_percents = Vec::with_capacity(est.len());
    let mut r_deg_per_m = Vec::with_capacity(est.len());
    for (e, g) in est.iter().zip(gt) {
        let dist = g.translation_norm();
        if dist < 0.01 {
            continue;
        }
        let (t_err, r_err) = relative_pose_error(e, g);
        t_percents.push(t_err / dist * 100.0);
        r_deg_per_m.push(r_err.to_degrees() / dist);
    }
    let pairs = t_percents.len();
    if pairs == 0 {
        return OdometryError {
            translational_percent: 0.0,
            rotational_deg_per_m: 0.0,
            translational_percent_std: 0.0,
            pairs: 0,
        };
    }
    let t_mean = t_percents.iter().sum::<f64>() / pairs as f64;
    let r_mean = r_deg_per_m.iter().sum::<f64>() / pairs as f64;
    let t_var = t_percents.iter().map(|v| (v - t_mean) * (v - t_mean)).sum::<f64>() / pairs as f64;
    OdometryError {
        translational_percent: t_mean,
        rotational_deg_per_m: r_mean,
        translational_percent_std: t_var.sqrt(),
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigris_geom::{Mat3, Vec3};

    #[test]
    fn perfect_estimates_have_zero_error() {
        let gt: Vec<RigidTransform> = (0..5)
            .map(|i| {
                RigidTransform::from_axis_angle(Vec3::Z, 0.01 * i as f64, Vec3::new(1.0, 0.0, 0.0))
            })
            .collect();
        let err = sequence_error(&gt, &gt);
        assert_eq!(err.pairs, 5);
        assert!(err.translational_percent < 1e-9);
        assert!(err.rotational_deg_per_m < 1e-9);
        assert!(err.translational_percent_std < 1e-9);
    }

    #[test]
    fn translation_error_is_percent_of_distance() {
        // GT: 1 m forward. Estimate: 1.05 m forward → 5% error.
        let gt = vec![RigidTransform::from_translation(Vec3::new(1.0, 0.0, 0.0))];
        let est = vec![RigidTransform::from_translation(Vec3::new(1.05, 0.0, 0.0))];
        let err = sequence_error(&est, &gt);
        assert!((err.translational_percent - 5.0).abs() < 1e-9);
        assert!(err.rotational_deg_per_m.abs() < 1e-9);
    }

    #[test]
    fn rotation_error_is_degrees_per_meter() {
        // GT: 2 m forward, no rotation. Estimate adds a 0.02 rad yaw.
        let gt = vec![RigidTransform::from_translation(Vec3::new(2.0, 0.0, 0.0))];
        let est = vec![RigidTransform::new(Mat3::rotation_z(0.02), Vec3::new(2.0, 0.0, 0.0))];
        let err = sequence_error(&est, &gt);
        let expected = 0.02f64.to_degrees() / 2.0;
        assert!((err.rotational_deg_per_m - expected).abs() < 1e-9);
    }

    #[test]
    fn relative_pose_error_is_residual_magnitudes() {
        let gt = RigidTransform::from_translation(Vec3::new(1.0, 0.0, 0.0));
        let est = RigidTransform::from_axis_angle(Vec3::Z, 0.1, Vec3::new(1.0, 0.2, 0.0));
        let (t, r) = relative_pose_error(&est, &gt);
        assert!((r - 0.1).abs() < 1e-12);
        assert!(t > 0.19 && t < 0.21);
    }

    #[test]
    fn stationary_pairs_are_skipped() {
        let gt = vec![
            RigidTransform::IDENTITY,
            RigidTransform::from_translation(Vec3::new(1.0, 0.0, 0.0)),
        ];
        let est = vec![
            RigidTransform::from_translation(Vec3::new(0.5, 0.0, 0.0)), // would be ∞%
            RigidTransform::from_translation(Vec3::new(1.0, 0.0, 0.0)),
        ];
        let err = sequence_error(&est, &gt);
        assert_eq!(err.pairs, 1);
        assert!(err.translational_percent < 1e-9);
    }

    #[test]
    fn ate_is_rms_translation_distance() {
        let gt = vec![
            RigidTransform::IDENTITY,
            RigidTransform::from_translation(Vec3::new(1.0, 0.0, 0.0)),
            RigidTransform::from_translation(Vec3::new(2.0, 0.0, 0.0)),
        ];
        assert_eq!(absolute_trajectory_error(&gt, &gt), 0.0);
        let est = vec![
            RigidTransform::IDENTITY,
            RigidTransform::from_translation(Vec3::new(1.0, 3.0, 0.0)),
            RigidTransform::from_translation(Vec3::new(2.0, 4.0, 0.0)),
        ];
        // RMS of [0, 3, 4] = sqrt(25/3).
        let expected = (25.0f64 / 3.0).sqrt();
        assert!((absolute_trajectory_error(&est, &gt) - expected).abs() < 1e-12);
        assert_eq!(absolute_trajectory_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ate_rejects_mismatched_lengths() {
        absolute_trajectory_error(&[RigidTransform::IDENTITY], &[]);
    }

    #[test]
    fn empty_input() {
        let err = sequence_error(&[], &[]);
        assert_eq!(err.pairs, 0);
        assert_eq!(err.translational_percent, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        sequence_error(&[RigidTransform::IDENTITY], &[]);
    }

    #[test]
    fn std_reflects_spread() {
        let gt = vec![RigidTransform::from_translation(Vec3::new(1.0, 0.0, 0.0)); 2];
        let est = vec![
            RigidTransform::from_translation(Vec3::new(1.0, 0.0, 0.0)),
            RigidTransform::from_translation(Vec3::new(1.1, 0.0, 0.0)),
        ];
        let err = sequence_error(&est, &gt);
        assert!((err.translational_percent - 5.0).abs() < 1e-9);
        assert!((err.translational_percent_std - 5.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!sequence_error(&[], &[]).to_string().is_empty());
    }
}

//! Release-scale acceptance test for the prepare/match split: streaming
//! odometry with `PreparedFrame` reuse must deliver ≥1.3× the
//! frames-per-second of the recompute-everything path on the default
//! scene. Unlike the batch-engine speedup, this holds on any host — the
//! reuse path does strictly less work per frame, independent of core
//! count.
//!
//! ```text
//! cargo test -p tigris-bench --release --test odometry_speedup -- --ignored
//! ```

use tigris_bench::odometry::run_streaming_comparison;

#[test]
#[ignore = "release-scale workload"]
fn streaming_reuse_delivers_1_3x_frames_per_second() {
    let result = run_streaming_comparison(6, 42, 3);
    eprintln!(
        "reuse {:.3} fps ({:?}) vs no-reuse {:.3} fps ({:?}): {:.2}x",
        result.reuse_fps,
        result.reuse_time,
        result.no_reuse_fps,
        result.no_reuse_time,
        result.speedup
    );
    // Structural invariants first: the speedup must come from real reuse.
    assert_eq!(result.frames_prepared, result.frames);
    assert_eq!(result.frames_reused, result.frames - 2);
    assert!(
        result.speedup >= 1.3,
        "streaming reuse speedup {:.2}x below the 1.3x acceptance floor \
         (reuse {:?} vs no-reuse {:?})",
        result.speedup,
        result.reuse_time,
        result.no_reuse_time
    );
}

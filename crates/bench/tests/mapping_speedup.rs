//! Release-scale acceptance test for the dynamic map index: interleaved
//! insert+query throughput must be at least 3× the rebuild-per-insert
//! baseline, with bit-identical answers. Holds on any host — the dynamic
//! index does asymptotically less rebuild work per insert, independent of
//! core count.
//!
//! ```text
//! cargo test -p tigris-bench --release --test mapping_speedup -- --ignored
//! ```

use tigris_bench::mapping::run_insert_query_comparison;

#[test]
#[ignore = "release-scale workload"]
fn dynamic_index_delivers_3x_insert_query_throughput() {
    let result = run_insert_query_comparison(4000, 8, 42, 3);
    eprintln!(
        "dynamic {:.0} ops/s ({:?}, {} rebuilds) vs naive {:.0} ops/s ({:?}): {:.2}x",
        result.dynamic_ops_per_s,
        result.dynamic_time,
        result.dynamic_rebuilds,
        result.naive_ops_per_s,
        result.naive_time,
        result.speedup
    );
    // Structural sanity: buffering really did avoid most rebuilds.
    assert!(
        result.dynamic_rebuilds * 100 <= result.points,
        "{} rebuilds for {} inserts — the fresh buffer is not amortizing",
        result.dynamic_rebuilds,
        result.points
    );
    assert!(
        result.speedup >= 3.0,
        "dynamic-index speedup {:.2}x below the 3x acceptance floor \
         (dynamic {:?} vs naive {:?})",
        result.speedup,
        result.dynamic_time,
        result.naive_time
    );
}

//! Shape tests for the figure harness: each experiment's qualitative
//! claims (who wins, what grows, where the optimum sits) are asserted on
//! the real workloads.
//!
//! The frame-generation + simulation workloads are release-scale; the
//! heavier tests are `#[ignore]`d so `cargo test` stays fast in debug.
//! Run them with:
//!
//! ```text
//! cargo test -p tigris-bench --release -- --ignored
//! ```

use tigris_bench::figures;

#[test]
fn area_matches_paper_by_construction() {
    let (sram, logic) = figures::area();
    assert!((sram - 8.38).abs() < 0.15);
    assert!((logic - 7.19).abs() < 0.15);
}

#[test]
#[ignore = "release-scale workload"]
fn fig6_redundancy_shape() {
    let rows = figures::fig6(42);
    // Monotone growth with leaf-set size for both search kinds.
    for w in rows.windows(2) {
        assert!(w[1].nn_redundancy >= w[0].nn_redundancy * 0.99);
        assert!(w[1].radius_redundancy >= w[0].radius_redundancy * 0.99);
    }
    let last = rows.last().unwrap();
    // NN redundancy grows much faster than radius redundancy…
    assert!(last.nn_redundancy > 2.0 * last.radius_redundancy);
    // …while radius search dominates absolute node counts (Fig. 6b).
    assert!(last.radius_nodes > last.nn_nodes);
}

#[test]
#[ignore = "release-scale workload"]
fn fig11_system_ordering() {
    let (dp7, dp4) = figures::fig11(42);
    for rows in [&dp7, &dp4] {
        let get = |name: &str| rows.iter().find(|r| r.system == name).unwrap();
        let cpu = get("CPU");
        let base_kd = get("Base-KD");
        let acc_kd = get("Acc-KD");
        let acc_2skd = get("Acc-2SKD");
        // GPU ≫ CPU; accelerator ≫ GPU; co-designed tree ≫ original tree.
        assert!(base_kd.seconds < cpu.seconds);
        assert!(acc_kd.seconds < base_kd.seconds);
        assert!(acc_2skd.seconds < acc_kd.seconds);
        // Large headline factors.
        assert!(acc_2skd.speedup > 30.0, "speedup {}", acc_2skd.speedup);
        assert!(acc_2skd.power_reduction > 3.0);
        // Acc-KD trades performance for lower power (paper Sec. 6.3).
        assert!(acc_kd.power_watts < acc_2skd.power_watts);
    }
    // DP7 (relaxed radii → more exhaustive work) benefits more than DP4.
    let s7 = dp7.iter().find(|r| r.system == "Acc-2SKD").unwrap().speedup;
    let s4 = dp4.iter().find(|r| r.system == "Acc-2SKD").unwrap().speedup;
    assert!(s7 > s4, "DP7 {s7} should out-speedup DP4 {s4}");
}

#[test]
#[ignore = "release-scale workload"]
fn approx_reduces_work_substantially() {
    let row = figures::approx(42);
    assert!(row.node_visit_reduction > 0.4, "reduction {}", row.node_visit_reduction);
    assert!(row.follower_rate > 0.5);
    assert!(row.speedup >= 1.0);
    // Triangle-inequality envelope: thd = 1.2 m ⇒ inflation ≤ 2.4 m.
    assert!(row.mean_distance_inflation < 2.4);
}

#[test]
#[ignore = "release-scale workload"]
fn fig12_optimizations_are_monotone() {
    let rows = figures::fig12(42);
    let get = |name: &str| rows.iter().find(|r| r.variant == name).unwrap();
    assert!(get("Bypass").speedup > get("No-Opt").speedup);
    assert!(get("+Forward").speedup > get("Bypass").speedup);
    assert!(get("MQMN").speedup >= get("+Forward").speedup);
    // MQMN pays for its speed in power (paper: ~4×).
    let mqsn_power = get("+Forward").power_reduction;
    let mqmn_power = get("MQMN").power_reduction;
    assert!(mqsn_power / mqmn_power > 2.0, "{mqsn_power} vs {mqmn_power}");
}

#[test]
#[ignore = "release-scale workload"]
fn fig13_cache_absorbs_node_traffic() {
    let rows = figures::fig13(42);
    let acc_2skd = &rows[0];
    let acc_kd = &rows[1];
    let frac =
        |r: &figures::Fig13Row, name: &str| r.fractions.iter().find(|(n, _)| *n == name).unwrap().1;
    // The two-stage configuration has node-cache traffic; the classic one
    // has none (no exhaustive scans to cache).
    assert!(frac(acc_2skd, "Node Cache") > 0.05);
    assert!(frac(acc_kd, "Node Cache") < 1e-9);
    assert!(frac(acc_kd, "BE Query Q") < 1e-3);
}

#[test]
#[ignore = "release-scale workload"]
fn fig14_front_end_saturation() {
    let rows = figures::fig14(42);
    let time = |rus: usize, sus: usize, pes: usize| {
        rows.iter().find(|r| r.rus == rus && r.sus == sus && r.pes == pes).unwrap().time_ms
    };
    // With few RUs, scaling the back-end barely helps (front-end-bound).
    let small_gain = time(16, 16, 16) / time(16, 128, 128);
    assert!(small_gain < 1.5, "gain {small_gain} at 16 RUs");
    // With 64 RUs the back-end scales substantially.
    let big_gain = time(64, 16, 16) / time(64, 128, 128);
    assert!(big_gain > 2.0, "gain {big_gain} at 64 RUs");
    // More hardware never slows the design down (monotonicity spot check).
    assert!(time(128, 128, 128) <= time(16, 16, 16));
}

#[test]
#[ignore = "release-scale workload"]
fn fig15_has_interior_optimum() {
    let rows = figures::fig15(42);
    let best = rows.iter().min_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).unwrap()).unwrap();
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    // The optimum is strictly inside the sweep: both extremes are worse.
    assert!(best.height > first.height && best.height < last.height);
    assert!(first.time_ms > best.time_ms * 1.5);
    assert!(last.time_ms > best.time_ms * 1.2);
}

#[test]
#[ignore = "release-scale workload"]
fn ablations_support_paper_design_choices() {
    // Leader cap: diminishing returns beyond the paper's 16.
    let caps = figures::ablation_leader_cap(42);
    let at =
        |v: f64, rows: &[figures::AblationRow]| rows.iter().find(|r| r.value == v).unwrap().metric;
    assert!(at(16.0, &caps) > 0.8 * at(64.0, &caps));
    assert!(at(16.0, &caps) > 1.5 * at(1.0, &caps));

    // Issue window: the paper's 128 captures almost all the batching win.
    let windows = figures::ablation_issue_window(42);
    let t = |v: f64| windows.iter().find(|r| r.value == v).unwrap().time_ms;
    assert!(t(1.0) > 3.0 * t(128.0), "no-batching {} vs 128-window {}", t(1.0), t(128.0));
    assert!(t(512.0) > 0.95 * t(128.0));

    // Mapping policy: insensitive (paper's claim).
    let (low, hash) = figures::ablation_mapping(42);
    assert!((hash - low).abs() / low < 0.25, "low {low} hash {hash}");
}

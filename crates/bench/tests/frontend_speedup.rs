//! Release-scale acceptance test for the front-end raw-speed pass: on a
//! 120k-point city-block scene, the rewritten normal-estimation + FPFH
//! stages must together be at least 2× faster than verbatim frozen
//! copies of the pre-refactor implementations
//! (`tigris_bench::frontend::frozen`), with bit-identical outputs
//! (asserted inside the comparison before any timing) and zero scratch
//! growth during the warm timed runs.
//!
//! ```text
//! cargo test -p tigris-bench --release -- --ignored frontend_speedup
//! ```
//!
//! Skipped when `tigris-core` was built with the `scalar-kernels`
//! fallback feature: without the wide kernels the comparison measures
//! only the dense-scratch restructuring, not the claim under test.

use tigris_bench::frontend::run_frontend_comparison;
use tigris_core::simd::wide_kernels_selected;

#[test]
#[ignore = "release-scale workload"]
fn frontend_speedup_ne_plus_fpfh_beats_frozen_2x() {
    if !wide_kernels_selected() {
        eprintln!("skipping front-end speedup assertion: scalar-kernels fallback build");
        return;
    }

    let cmp = run_frontend_comparison(120_000, 3);
    eprintln!(
        "ne {:.4}s -> {:.4}s ({:.2}x) | fpfh {:.4}s -> {:.4}s ({:.2}x) | combined {:.2}x",
        cmp.frozen_ne_seconds,
        cmp.new_ne_seconds,
        cmp.ne_speedup(),
        cmp.frozen_fpfh_seconds,
        cmp.new_fpfh_seconds,
        cmp.fpfh_speedup(),
        cmp.combined_speedup()
    );
    assert_eq!(
        cmp.warm_scratch_bytes_grown, 0,
        "warm timed runs must not grow the preparation scratch"
    );
    assert!(
        cmp.combined_speedup() >= 2.0,
        "rewritten NE + FPFH must be ≥2x the frozen front end, got {:.2}x",
        cmp.combined_speedup()
    );
}

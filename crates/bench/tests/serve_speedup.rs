//! Release-scale acceptance: serving a frozen, `Arc`-shared map snapshot
//! must beat per-session map rebuilding by at least 3× at 4 sessions.
//!
//! The floor is structural, not incidental: the shared path builds the
//! map once for everyone while the rebuild path pays one full map
//! construction per session, so at 4 sessions the ratio approaches 4×
//! on any host (both paths run the identical localization work, and the
//! comparison asserts their poses bit-identical). Run explicitly:
//!
//! ```text
//! cargo test -p tigris-bench --release --test serve_speedup -- --ignored --nocapture
//! ```

use tigris_bench::serve::run_shared_vs_rebuild_comparison;

/// Serving must gain ≥3× from snapshot sharing at 4 sessions.
const MIN_SPEEDUP: f64 = 3.0;

#[test]
#[ignore = "release-scale acceptance benchmark; run with --ignored"]
fn shared_snapshot_beats_per_session_rebuild() {
    let sessions = 4;
    let result = run_shared_vs_rebuild_comparison(sessions, 7, 1);
    eprintln!(
        "shared {:?} vs rebuild {:?} ({} sessions x {} queries): {:.2}x",
        result.shared_time,
        result.rebuild_time,
        result.sessions,
        result.queries_per_session,
        result.speedup
    );
    assert!(
        result.speedup >= MIN_SPEEDUP,
        "snapshot sharing must beat per-session rebuild by >= {MIN_SPEEDUP}x, got {:.2}x",
        result.speedup
    );
}

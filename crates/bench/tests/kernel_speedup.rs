//! Release-scale acceptance test for the SoA + SIMD memory layout: on a
//! KITTI-scale scene, batched radius search through the cache-blocked
//! bucket KD-tree must be at least 2× faster than the frozen pre-SoA
//! pointer-chasing layout (`tigris_bench::reference`), with bit-identical
//! results.
//!
//! ```text
//! cargo test -p tigris-bench --release -- --ignored kernel_speedup
//! ```
//!
//! Skipped when `tigris-core` was built with the `scalar-kernels`
//! fallback feature: without the wide kernels the comparison measures
//! only the layout change, not the claim under test.

use std::time::{Duration, Instant};

use tigris_bench::reference::ReferenceKdTree;
use tigris_bench::workload::huge_frame_pair;
use tigris_core::simd::wide_kernels_selected;
use tigris_core::KdTree;

#[test]
#[ignore = "release-scale workload"]
fn kernel_speedup_soa_radius_beats_pointer_chasing_2x() {
    if !wide_kernels_selected() {
        eprintln!("skipping kernel speedup assertion: scalar-kernels fallback build");
        return;
    }

    let (points, queries) = huge_frame_pair(120_000, 42);
    let queries: Vec<_> = queries.into_iter().take(20_000).collect();
    let radius = 0.8; // normal-estimation-scale neighborhoods (~10 hits)

    let current = KdTree::build(&points);
    let reference = ReferenceKdTree::build(&points);

    // Correctness before speed: the layouts must agree bit for bit, or
    // the timing comparison is meaningless.
    for &q in queries.iter().step_by(97) {
        assert_eq!(current.radius(q, radius), reference.radius(q, radius));
    }

    // Warm-up, then best-of-3 for both layouts (serial loops: this gates
    // the kernel + layout win, not thread scaling — `batch_speedup`
    // already gates that separately).
    let time_best_of_3 = |run: &dyn Fn() -> usize| -> Duration {
        run();
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                let hits = run();
                let dt = t0.elapsed();
                assert!(hits > 0, "degenerate workload: no radius hits");
                dt
            })
            .min()
            .unwrap()
    };
    let soa_time =
        time_best_of_3(&|| queries.iter().map(|&q| current.radius(q, radius).len()).sum());
    let reference_time =
        time_best_of_3(&|| queries.iter().map(|&q| reference.radius(q, radius).len()).sum());

    let speedup = reference_time.as_secs_f64() / soa_time.as_secs_f64();
    eprintln!(
        "pointer-chasing {reference_time:?} | SoA+SIMD {soa_time:?} ({speedup:.2}x) \
         over {} queries, r = {radius}",
        queries.len()
    );
    assert!(
        speedup >= 2.0,
        "SoA radius search must be ≥2x the pre-SoA layout, got {speedup:.2}x \
         ({soa_time:?} vs {reference_time:?})"
    );
}

//! Release-scale acceptance test for the batch engine: on a multi-core
//! host, batched parallel two-stage search at ≥4 threads must beat the
//! serial canonical KD-tree on a ≥100k-point scene.
//!
//! ```text
//! cargo test -p tigris-bench --release -- --ignored batch_speedup
//! ```

use std::time::Instant;

use tigris_bench::workload::{height_for_leaf_size, huge_frame_pair};
use tigris_core::batch::{BatchConfig, BatchSearcher};
use tigris_core::{KdTree, SearchStats, TwoStageKdTree};

#[test]
#[ignore = "release-scale workload"]
fn batch_speedup_parallel_two_stage_beats_serial_classic() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 2 {
        // Query-level parallelism needs parallel hardware; on a single
        // core the equivalence tests still guarantee correctness, but a
        // speedup assertion would only measure scheduler overhead.
        eprintln!("skipping speedup assertion: single-core host");
        return;
    }

    let (points, queries) = huge_frame_pair(120_000, 42);
    let queries: Vec<_> = queries.into_iter().take(30_000).collect();
    assert!(points.len() >= 100_000);

    let classic = KdTree::build(&points);
    let h = height_for_leaf_size(points.len(), 128);
    let mut two_stage = TwoStageKdTree::build(&points, h);

    // Warm-up, then best-of-3 for both contenders.
    let serial = |stats: &mut SearchStats| {
        for &q in &queries {
            classic.nn_with_stats(q, stats);
        }
    };
    let mut stats = SearchStats::new();
    serial(&mut stats);
    let serial_time = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            serial(&mut stats);
            t0.elapsed()
        })
        .min()
        .unwrap();

    let mut timed_batch = |threads: usize| {
        let cfg = BatchConfig { threads, min_chunk: 64 };
        let mut stats = SearchStats::new();
        two_stage.nn_batch(&queries, &cfg, &mut stats); // warm-up
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                two_stage.nn_batch(&queries, &cfg, &mut stats);
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    let one_thread_time = timed_batch(1);
    let parallel_time = timed_batch(4);

    eprintln!(
        "serial classic {serial_time:?} | two-stage @1 thread {one_thread_time:?} | \
         two-stage @4 threads {parallel_time:?} ({:.2}x vs classic, {:.2}x thread scaling)",
        serial_time.as_secs_f64() / parallel_time.as_secs_f64(),
        one_thread_time.as_secs_f64() / parallel_time.as_secs_f64(),
    );
    assert!(
        parallel_time < serial_time,
        "batched parallel two-stage ({parallel_time:?}) should beat serial classic \
         ({serial_time:?}) on {cores} cores"
    );
    // Same structure, serial vs parallel: gates actual thread scaling, so
    // a regression that silently serializes nn_batch cannot hide behind
    // the two-stage tree's structural advantage over the classic tree.
    if cores >= 4 {
        assert!(
            parallel_time < one_thread_time,
            "4-thread batch ({parallel_time:?}) should beat the same search at 1 thread \
             ({one_thread_time:?}) on {cores} cores"
        );
    }
}

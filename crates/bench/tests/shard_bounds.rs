//! Release-scale acceptance for sharded serving: on a 10× map, tile
//! routing must be genuinely selective, concurrent sessions under a
//! tile budget far below the whole map must localize bit-identically to
//! the whole-snapshot service, an epoch hot-swap mid-stream must drop
//! no session and diverge no pose, and peak resident bytes must stay
//! bounded below the everything-resident baseline. Run explicitly:
//!
//! ```text
//! cargo test -p tigris-bench --release --test shard_bounds -- --ignored --nocapture
//! ```

use std::sync::{Arc, Barrier};

use tigris_bench::shard::{fixture_config, publish_and_freeze, trajectory_probes, PROBE_RADIUS};
use tigris_data::Sequence;
use tigris_map::{Mapper, MapperConfig};
use tigris_serve::shard::{EpochPublisher, EpochView, ShardConfig, ShardService, TilingConfig};
use tigris_serve::{LocalizationService, ServeConfig, SessionStep};

/// The 10× floor the acceptance criteria name: a 600 m circuit vs. the
/// 60 m serving fixture.
const SCALE: usize = 10;

/// Concurrent localization sessions served under the tile budget.
const SESSIONS: usize = 4;

/// Frames held back from the first publish, mapped afterwards to make
/// the hot-swapped epoch a genuine content change.
const EPOCH2_FRAMES: usize = 3;

/// Frames each session localizes: one cold start, then tracking.
const SCRIPT_LEN: usize = 3;

/// Cold-start frames spread around the circuit, proven to verify on
/// this fixture (drifted stretches of the 600 m map reject their own
/// queries at the verification gates, as they should).
const COLD_STARTS: [usize; SESSIONS] = [2, 151, 250, 449];

fn session_scripts() -> Vec<Vec<usize>> {
    COLD_STARTS.iter().map(|&start| (start..start + SCRIPT_LEN).collect()).collect()
}

fn run_scripts_sequentially(
    service: &ShardService,
    seq: &Sequence,
    scripts: &[Vec<usize>],
) -> Vec<Vec<SessionStep>> {
    scripts
        .iter()
        .map(|script| {
            let mut session = service.open_session().expect("control admission");
            script
                .iter()
                .map(|&f| session.localize(seq.frame(f)).expect("control localize"))
                .collect()
        })
        .collect()
}

#[test]
#[ignore = "release-scale acceptance benchmark; run with --ignored"]
fn sharded_serving_is_selective_bounded_and_swap_safe_at_scale() {
    let seq = Sequence::generate(&fixture_config(SCALE), 7);
    let prefix = seq.len() - EPOCH2_FRAMES;

    // The live mapper: publish epoch 1 mid-stream, keep mapping,
    // publish epoch 2 copy-on-write.
    let mut live = Mapper::new(MapperConfig::serving());
    for i in 0..prefix {
        live.push(seq.frame(i)).expect("mapping frame failed");
    }
    let mut publisher = EpochPublisher::new();
    let epoch1 = publisher.publish(&live).expect("epoch 1 publish");
    for i in prefix..seq.len() {
        live.push(seq.frame(i)).expect("mapping frame failed");
    }
    let shared_before = publisher.payloads_shared();
    let copied_before = publisher.payloads_copied();
    let epoch2 = publisher.publish(&live).expect("epoch 2 publish");
    let shared = publisher.payloads_shared() - shared_before;
    let copied = publisher.payloads_copied() - copied_before;
    assert!(
        shared > copied,
        "CoW re-publish must share most submaps at scale ({shared} shared, {copied} copied)"
    );
    drop(live);

    // The whole-snapshot oracle: an identical prefix build, frozen whole.
    let mut oracle = Mapper::new(MapperConfig::serving());
    let oracle_seq = Sequence::generate(&fixture_config(SCALE), 7);
    for i in 0..prefix {
        oracle.push(oracle_seq.frame(i)).expect("mapping frame failed");
    }
    let whole_map_bytes: usize = oracle.submaps().iter().map(|s| s.memory_bytes()).sum();
    let poses = oracle.poses().to_vec();
    let (oracle_epoch, snapshot) = publish_and_freeze(oracle);
    assert_eq!(oracle_epoch.total_points(), epoch1.total_points(), "prefix builds must agree");

    // Selectivity: at this scale the map outgrows the scanner, so
    // probes must route to strict subsets of the tiles.
    let view = EpochView::new(Arc::clone(&epoch1), &TilingConfig::default());
    let tiles = view.router().tiles().len();
    let probes = trajectory_probes(&poses, 3);
    let coverings: Vec<usize> =
        probes.iter().map(|&p| view.router().covering(p, PROBE_RADIUS).len()).collect();
    assert!(tiles >= 10, "the 10x map must cut into many tiles, got {tiles}");
    assert!(
        coverings.iter().all(|&c| c < tiles),
        "every on-trajectory probe must route to a strict subset of {tiles} tiles"
    );
    let mean_fraction = coverings.iter().sum::<usize>() as f64 / (coverings.len() * tiles) as f64;
    eprintln!("routing: {tiles} tiles, mean covering fraction {mean_fraction:.3}");
    assert!(mean_fraction < 0.8, "routing must exclude a real share of the map");

    // The budgeted service: a quarter of the everything-resident
    // baseline.
    let budget = whole_map_bytes / 4;
    let config = ShardConfig {
        serve: ServeConfig { max_sessions: SESSIONS + 1, ..ServeConfig::default() },
        tile_budget_bytes: budget,
        ..ShardConfig::default()
    };
    let service = ShardService::with_epoch(Arc::clone(&epoch1), config.clone());

    // Tile-routed answers under the budget are bit-identical to the
    // whole snapshot's.
    let batch = snapshot.registration_config().parallel;
    let expected = snapshot.query_batch(&probes, PROBE_RADIUS, &batch);
    let tiled = service.query_batch(&probes, PROBE_RADIUS).expect("tiled batch");
    for (i, (a, b)) in expected.iter().zip(&tiled).enumerate() {
        assert_eq!(a, b, "probe {i}: budgeted tile routing diverged from the whole snapshot");
    }

    // Control pose streams: the same scripts served start-to-finish by a
    // service that never swaps epochs.
    let scripts = session_scripts();
    let control_service = ShardService::with_epoch(Arc::clone(&epoch1), config);
    let control = run_scripts_sequentially(&control_service, &seq, &scripts);
    let frozen_service = LocalizationService::new(Arc::clone(&snapshot), ServeConfig::default());
    let mut frozen_session = frozen_service.open_session().expect("frozen admission");
    let frozen_steps: Vec<SessionStep> = scripts[0]
        .iter()
        .map(|&f| frozen_session.localize(seq.frame(f)).expect("frozen localize"))
        .collect();

    // The swap run: four threads localize concurrently under the
    // budget; between their first and second frames the main thread
    // hot-swaps in epoch 2. Every session must finish on its pinned
    // epoch with the control's exact poses — zero drops, zero
    // divergence.
    let barrier = Barrier::new(SESSIONS + 1);
    let swapped: Vec<Vec<SessionStep>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                let service = &service;
                let seq = &seq;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut session = service.open_session().expect("swap-run admission");
                    assert_eq!(session.epoch_version(), 1);
                    let mut steps = Vec::with_capacity(script.len());
                    steps.push(session.localize(seq.frame(script[0])).expect("cold start"));
                    barrier.wait(); // all sessions live, first frame done
                    barrier.wait(); // main thread has installed epoch 2
                    for &f in &script[1..] {
                        steps.push(session.localize(seq.frame(f)).expect("post-swap localize"));
                    }
                    assert_eq!(session.epoch_version(), 1, "sessions drain on their pinned epoch");
                    steps
                })
            })
            .collect();
        barrier.wait();
        service.install_epoch(Arc::clone(&epoch2));
        assert_eq!(service.current_epoch().expect("current").version(), 2);
        barrier.wait();
        handles.into_iter().map(|h| h.join().expect("no session thread may die")).collect()
    });

    // Zero pose divergence: swap run vs. never-swapped control, and the
    // first script vs. the frozen whole-snapshot service.
    for (s, (got, want)) in swapped.iter().zip(&control).enumerate() {
        for (f, (a, b)) in got.iter().zip(want).enumerate() {
            assert!(
                a.pose.translation == b.pose.translation && a.pose.rotation == b.pose.rotation,
                "session {s} frame {f}: hot swap diverged a pose"
            );
        }
    }
    for (f, (a, b)) in swapped[0].iter().zip(&frozen_steps).enumerate() {
        assert!(
            a.pose.translation == b.pose.translation && a.pose.rotation == b.pose.rotation,
            "frame {f}: sharded pose diverged from the frozen snapshot service"
        );
    }

    // New sessions pin the swapped-in epoch; the bounded-residency
    // claim holds over the whole run.
    let mut post = service.open_session().expect("post-swap admission");
    assert_eq!(post.epoch_version(), 2);
    post.localize(seq.frame(2)).expect("cold start on epoch 2");
    drop(post);

    let stats = service.stats();
    eprintln!(
        "budget {budget} B of {whole_map_bytes} B whole-map: peak {} B, {} loads, {} evictions, {} hits",
        stats.tiles.peak_resident_bytes, stats.tiles.loads, stats.tiles.evictions, stats.tiles.hits
    );
    assert_eq!(stats.frames, SESSIONS * SCRIPT_LEN + 1);
    assert_eq!(stats.sessions_admitted, SESSIONS + 1);
    assert_eq!(stats.sessions_active, 0, "every session released its slot");
    assert!(stats.tiles.loads > 0 && stats.tiles.hits > 0);
    assert!(
        stats.tiles.peak_resident_bytes < whole_map_bytes / 2,
        "peak residency {} must stay well below the everything-resident baseline {}",
        stats.tiles.peak_resident_bytes,
        whole_map_bytes
    );
    let end = service.stats().tiles;
    assert!(
        end.resident_bytes <= budget || end.resident_tiles == 1,
        "the budget must hold at rest ({} B resident over {budget} B)",
        end.resident_bytes
    );
}

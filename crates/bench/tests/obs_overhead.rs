//! Release-scale acceptance test for the observability layer's "free
//! when off" contract: the disabled-path cost of every instrumentation
//! site the streaming workload passes must stay within 2% of the
//! workload's wall-clock, and tracing must not change a single pose
//! bit.
//!
//! The 2% bound is computed structurally — measured nanoseconds per
//! disabled site × sites the run passes (counting every traced record
//! as a full site check, an overestimate) ÷ the run's wall-clock —
//! rather than by differencing two noisy end-to-end timings, so it
//! holds on loaded CI hosts.
//!
//! ```text
//! cargo test -p tigris-bench --release --test obs_overhead -- --ignored
//! ```

use tigris_bench::obs::run_overhead_comparison;

#[test]
#[ignore = "release-scale workload"]
fn disabled_tracing_costs_at_most_2_percent_and_changes_nothing() {
    let result = run_overhead_comparison(6, 42, 3);
    eprintln!(
        "off {:?} vs on {:?} (+{:.2}%), {} records, site {:.2} ns, disabled overhead {:.4}%",
        result.disabled_time,
        result.enabled_time,
        result.enabled_overhead * 100.0,
        result.records_per_run,
        result.site_ns,
        result.disabled_overhead * 100.0
    );
    // Structural invariants first: the traced run must actually trace.
    assert!(result.records_per_run > 0, "the traced run recorded nothing");
    assert_eq!(result.records_dropped, 0, "ring overflow would undercount sites");
    assert!(
        result.poses_identical,
        "tracing changed the pose stream — observation must not perturb results"
    );
    assert!(
        result.disabled_overhead <= 0.02,
        "disabled instrumentation costs {:.4}% of the workload, above the 2% bound \
         ({:.2} ns/site × {} sites vs {:?} wall-clock)",
        result.disabled_overhead * 100.0,
        result.site_ns,
        result.records_per_run,
        result.disabled_time
    );
}

//! Release-scale acceptance test for the observability layer's "free
//! when off" contract: the disabled-path cost of every instrumentation
//! site the streaming workload passes must stay within 2% of the
//! workload's wall-clock, the always-on flight recorder (the
//! production posture) within 3%, and neither tracing nor the recorder
//! may change a single pose bit.
//!
//! Both bounds are computed structurally — measured nanoseconds per
//! site × sites the run passes (counting every traced record as a full
//! site check, an overestimate) ÷ the run's wall-clock — rather than
//! by differencing two noisy end-to-end timings, so they hold on
//! loaded CI hosts.
//!
//! ```text
//! cargo test -p tigris-bench --release --test obs_overhead -- --ignored
//! ```

use tigris_bench::obs::run_overhead_comparison;

#[test]
#[ignore = "release-scale workload"]
fn disabled_tracing_costs_at_most_2_percent_and_changes_nothing() {
    let result = run_overhead_comparison(6, 42, 3);
    eprintln!(
        "off {:?} vs on {:?} (+{:.2}%), {} records, site {:.2} ns, disabled overhead {:.4}%",
        result.disabled_time,
        result.enabled_time,
        result.enabled_overhead * 100.0,
        result.records_per_run,
        result.site_ns,
        result.disabled_overhead * 100.0
    );
    eprintln!(
        "recorder {:?}, site {:.2} ns, overhead {:.4}%, sampler observe {:.1} ns",
        result.recorder_time,
        result.recorder_site_ns,
        result.recorder_overhead * 100.0,
        result.sampler_observe_ns
    );
    // Structural invariants first: the traced run must actually trace.
    assert!(result.records_per_run > 0, "the traced run recorded nothing");
    assert_eq!(result.records_dropped, 0, "ring overflow would undercount sites");
    assert!(
        result.poses_identical,
        "tracing changed the pose stream — observation must not perturb results"
    );
    assert!(
        result.recorder_poses_identical,
        "the flight recorder changed the pose stream — observation must not perturb results"
    );
    assert!(
        result.disabled_overhead <= 0.02,
        "disabled instrumentation costs {:.4}% of the workload, above the 2% bound \
         ({:.2} ns/site × {} sites vs {:?} wall-clock)",
        result.disabled_overhead * 100.0,
        result.site_ns,
        result.records_per_run,
        result.disabled_time
    );
    assert!(
        result.recorder_overhead <= 0.03,
        "the always-on flight recorder costs {:.4}% of the workload, above the 3% bound \
         ({:.2} ns/site × {} sites vs {:?} wall-clock)",
        result.recorder_overhead * 100.0,
        result.recorder_site_ns,
        result.records_per_run,
        result.disabled_time
    );
}

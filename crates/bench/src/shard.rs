//! Tile-routed sharded serving vs. whole-snapshot fan-out.
//!
//! The comparison answers the shard layer's existence question: on a map
//! big enough that the scanner no longer out-ranges it, what does
//! routing each map probe to its covering spatial tiles buy over the
//! frozen snapshot's fan-out across every submap? Both paths answer the
//! exact same probe stream over the *same* map image (the epoch is
//! published from the very mapper the snapshot then freezes), and the
//! comparison asserts their answers bit-identical — neighbor for
//! neighbor, in order — before any timing runs.
//!
//! The same fixture backs `benches/shard.rs` (which also emits the
//! machine-readable `BENCH_shard.json` baseline in CI) and the
//! release-scale acceptance test `tests/shard_bounds.rs` (concurrent
//! sessions under a tile budget, epoch hot-swap mid-stream, bounded
//! peak residency).

use std::sync::Arc;
use std::time::{Duration, Instant};

use tigris_data::{LidarConfig, Sequence, SequenceConfig};
use tigris_geom::Vec3;
use tigris_map::{Mapper, MapperConfig};
use tigris_serve::shard::{
    EpochPublisher, EpochView, ShardConfig, ShardService, SnapshotEpoch, TilingConfig,
};
use tigris_serve::MapSnapshot;

use crate::report::BenchReport;

/// Query radius for every map probe (meters) — the tracking
/// correspondence scale.
pub const PROBE_RADIUS: f64 = 2.0;

/// One tile-routed vs. whole-snapshot comparison.
#[derive(Debug, Clone)]
pub struct ShardBenchResult {
    /// Map probes answered per timed run.
    pub probes: usize,
    /// Spatial tiles the map partitioned into.
    pub tiles: usize,
    /// Submaps in the served map.
    pub submaps: usize,
    /// Points in the served map.
    pub map_points: usize,
    /// Mean fraction of tiles a probe routes to (the routing
    /// selectivity; 1.0 would mean tiling buys nothing).
    pub mean_covering_fraction: f64,
    /// Best-of-N wall-clock for the whole-snapshot fan-out.
    pub whole_time: Duration,
    /// Best-of-N wall-clock for the tile-routed path (warm cache).
    pub tiled_time: Duration,
    /// Per-run wall-clock samples (seconds), whole-snapshot path.
    pub whole_samples: Vec<f64>,
    /// Per-run wall-clock samples (seconds), tile-routed path.
    pub tiled_samples: Vec<f64>,
    /// Probes per second, whole-snapshot path.
    pub whole_qps: f64,
    /// Probes per second, tile-routed path.
    pub tiled_qps: f64,
    /// `whole_time / tiled_time`.
    pub speedup: f64,
}

impl ShardBenchResult {
    /// The machine-readable baseline emitted by CI (`BENCH_shard.json`),
    /// in the shared [`BenchReport`] schema.
    pub fn report(&self) -> BenchReport {
        BenchReport::new("shard_tiled_query")
            .config_int("probes", self.probes)
            .config_int("tiles", self.tiles)
            .config_int("submaps", self.submaps)
            .config_int("map_points", self.map_points)
            .samples("whole_seconds", &self.whole_samples)
            .samples("tiled_seconds", &self.tiled_samples)
            .derived_f64("mean_covering_fraction", self.mean_covering_fraction)
            .derived_f64("whole_seconds_best", self.whole_time.as_secs_f64())
            .derived_f64("tiled_seconds_best", self.tiled_time.as_secs_f64())
            .derived_f64("whole_qps", self.whole_qps)
            .derived_f64("tiled_qps", self.tiled_qps)
            .derived_f64("speedup", self.speedup)
    }
}

/// The sharding fixture: a closed circuit `scale`× the serving
/// integration fixture's 60 m, at the low-resolution scanner. At
/// `scale = 10` the circuit's diameter (~190 m) finally outgrows the
/// scanner, so spatial tiling has something to exclude.
pub fn fixture_config(scale: usize) -> SequenceConfig {
    let mut cfg = SequenceConfig::loop_circuit(60.0 * scale as f64, 6);
    cfg.lidar = LidarConfig::tiny();
    cfg
}

/// Builds the map from the sequence (the expensive write side).
pub fn build_mapper(seq: &Sequence) -> Mapper {
    let mut mapper = Mapper::new(MapperConfig::serving());
    for i in 0..seq.len() {
        mapper.push(seq.frame(i)).expect("mapping frame failed");
    }
    mapper
}

/// Probes along the mapped trajectory, one per `stride` poses, dropped
/// to just below the scanner mount — the densest part of the map.
pub fn trajectory_probes(mapper_poses: &[tigris_geom::RigidTransform], stride: usize) -> Vec<Vec3> {
    mapper_poses
        .iter()
        .step_by(stride.max(1))
        .map(|p| p.translation + Vec3::new(0.0, 0.0, -1.0))
        .collect()
}

/// Publishes an epoch and freezes a snapshot from the *same* mapper, so
/// the two serving paths answer over the identical map image.
pub fn publish_and_freeze(mapper: Mapper) -> (Arc<SnapshotEpoch>, Arc<MapSnapshot>) {
    let mut publisher = EpochPublisher::new();
    let epoch = publisher.publish(&mapper).expect("epoch publish failed");
    let snapshot = Arc::new(MapSnapshot::freeze(mapper).expect("freeze failed"));
    (epoch, snapshot)
}

/// Runs the comparison on the `scale`× fixture: `probes` trajectory
/// probes answered by both paths, answers asserted bit-identical,
/// best-of-`runs` timing per path.
pub fn run_tiled_vs_whole_comparison(scale: usize, seed: u64, runs: usize) -> ShardBenchResult {
    assert!(scale >= 1 && runs >= 1);
    let seq = Sequence::generate(&fixture_config(scale), seed);
    let mapper = build_mapper(&seq);
    let probes = trajectory_probes(mapper.poses(), 3);
    let map_points = mapper.total_points();
    let submaps = mapper.submaps().len();
    let (epoch, snapshot) = publish_and_freeze(mapper);

    let view = EpochView::new(Arc::clone(&epoch), &TilingConfig::default());
    let tiles = view.router().tiles().len();
    let mean_covering_fraction = probes
        .iter()
        .map(|&p| view.router().covering(p, PROBE_RADIUS).len() as f64 / tiles as f64)
        .sum::<f64>()
        / probes.len() as f64;

    let service = ShardService::with_epoch(Arc::clone(&epoch), ShardConfig::default());
    let batch = snapshot.registration_config().parallel;

    // Correctness first: both paths must answer every probe with the
    // bit-identical neighbor list (same points, same order).
    let expected = snapshot.query_batch(&probes, PROBE_RADIUS, &batch);
    let tiled = service.query_batch(&probes, PROBE_RADIUS).expect("tiled batch failed");
    assert_eq!(expected.len(), tiled.len());
    for (i, (a, b)) in expected.iter().zip(&tiled).enumerate() {
        assert_eq!(a, b, "probe {i}: tile-routed answer diverged from the whole snapshot");
    }

    let whole_runs: Vec<Duration> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let answers = snapshot.query_batch(&probes, PROBE_RADIUS, &batch);
            assert_eq!(answers.len(), probes.len());
            t0.elapsed()
        })
        .collect();
    let tiled_runs: Vec<Duration> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let answers = service.query_batch(&probes, PROBE_RADIUS).expect("tiled batch failed");
            assert_eq!(answers.len(), probes.len());
            t0.elapsed()
        })
        .collect();
    let whole_time = *whole_runs.iter().min().expect("runs >= 1");
    let tiled_time = *tiled_runs.iter().min().expect("runs >= 1");

    ShardBenchResult {
        probes: probes.len(),
        tiles,
        submaps,
        map_points,
        mean_covering_fraction,
        whole_time,
        tiled_time,
        whole_samples: whole_runs.iter().map(Duration::as_secs_f64).collect(),
        tiled_samples: tiled_runs.iter().map(Duration::as_secs_f64).collect(),
        whole_qps: probes.len() as f64 / whole_time.as_secs_f64(),
        tiled_qps: probes.len() as f64 / tiled_time.as_secs_f64(),
        speedup: whole_time.as_secs_f64() / tiled_time.as_secs_f64(),
    }
}

//! Observability overhead measurement: the streaming-odometry workload
//! with tracing disabled vs. enabled, plus a microbenchmark of the
//! disabled span site itself.
//!
//! The observability layer's contract is that it is free when off: a
//! disabled `span!`/`event!` site costs one relaxed atomic load and a
//! branch, and results are bit-identical with tracing on or off. This
//! module quantifies both halves:
//!
//! * **site cost** — a tight loop over a disabled span site gives
//!   nanoseconds per site; multiplied by the records one traced run
//!   emits (every record maps to an instrumentation site the disabled
//!   run also passes) and divided by the run's wall-clock, that bounds
//!   the disabled-path overhead fraction the ≤2% acceptance gates on;
//! * **macro timing** — best-of-N wall-clock for the whole stream with
//!   tracing off and on, and the pose streams of both, which must be
//!   equal to the last bit.
//!
//! The operational tier gets the same treatment:
//!
//! * **recorder site cost** — the per-site cost with only the always-on
//!   flight recorder live (circular overwrite, no drain), bounding the
//!   production-posture overhead the ≤3% acceptance gates on — again
//!   structurally (`ns/site × sites ÷ wall-clock`), so the bound holds
//!   on loaded CI hosts;
//! * **sampler fast path** — nanoseconds per
//!   [`tigris_obs::sampler::TailSampler::observe`] call on the
//!   drop-fast path, the per-request cost every completed request pays
//!   whether or not it is retained.
//!
//! The same logic backs `benches/obs.rs` (which also emits the
//! machine-readable `BENCH_obs.json` baseline in CI) and the
//! release-scale acceptance test `tests/obs_overhead.rs`.

use std::time::{Duration, Instant};

use tigris_data::Sequence;
use tigris_geom::RigidTransform;
use tigris_pipeline::{Odometer, RegistrationConfig};

use crate::report::BenchReport;
use crate::workload::short_sequence;

/// One tracing-off vs. tracing-on comparison over the same frames.
#[derive(Debug, Clone)]
pub struct ObsBenchResult {
    /// Frames streamed per run.
    pub frames: usize,
    /// Best-of-N wall-clock with tracing disabled.
    pub disabled_time: Duration,
    /// Best-of-N wall-clock with tracing enabled (spans + metrics live).
    pub enabled_time: Duration,
    /// Per-run wall-clock samples (seconds), tracing disabled.
    pub disabled_samples: Vec<f64>,
    /// Per-run wall-clock samples (seconds), tracing enabled.
    pub enabled_samples: Vec<f64>,
    /// Span-boundary/event records one traced run emits.
    pub records_per_run: usize,
    /// Records lost to ring overflow in the traced runs (must be 0).
    pub records_dropped: u64,
    /// Measured cost of one disabled span site (nanoseconds).
    pub site_ns: f64,
    /// `site_ns × records_per_run / disabled_time` — the disabled-path
    /// overhead fraction the ≤2% acceptance bound gates on. Counting
    /// every record (Begin, End and Instant each as a full site check)
    /// overstates the true cost, so the bound is conservative.
    pub disabled_overhead: f64,
    /// `enabled_time / disabled_time − 1` — what turning tracing on
    /// costs. Informational: the acceptance bound is on the disabled
    /// path, which every production run pays.
    pub enabled_overhead: f64,
    /// Best-of-N wall-clock with only the flight recorder live (the
    /// production posture: no drain sink, circular overwrite).
    pub recorder_time: Duration,
    /// Per-run wall-clock samples (seconds), recorder only.
    pub recorder_samples: Vec<f64>,
    /// Measured cost of one span site with only the recorder live
    /// (nanoseconds).
    pub recorder_site_ns: f64,
    /// `recorder_site_ns × records_per_run / disabled_time` — the
    /// always-on-recorder overhead fraction the ≤3% acceptance bound
    /// gates on, computed structurally like `disabled_overhead`.
    pub recorder_overhead: f64,
    /// Nanoseconds per [`tigris_obs::sampler::TailSampler::observe`]
    /// call on the drop-fast path (threshold check + counter bumps).
    pub sampler_observe_ns: f64,
    /// Whether the disabled and enabled pose streams are bit-identical.
    pub poses_identical: bool,
    /// Whether the recorder-only pose stream matches the disabled one.
    pub recorder_poses_identical: bool,
}

impl ObsBenchResult {
    /// The machine-readable baseline emitted by CI (`BENCH_obs.json`),
    /// in the shared [`BenchReport`] schema.
    pub fn report(&self) -> BenchReport {
        BenchReport::new("obs_overhead")
            .config_int("frames", self.frames)
            .samples("disabled_seconds", &self.disabled_samples)
            .samples("enabled_seconds", &self.enabled_samples)
            .derived_f64("disabled_seconds_best", self.disabled_time.as_secs_f64())
            .derived_f64("enabled_seconds_best", self.enabled_time.as_secs_f64())
            .derived_int("records_per_run", self.records_per_run)
            .derived_int("records_dropped", self.records_dropped as usize)
            .derived_f64("site_ns", self.site_ns)
            .derived_f64("disabled_overhead", self.disabled_overhead)
            .derived_f64("enabled_overhead", self.enabled_overhead)
            .samples("recorder_seconds", &self.recorder_samples)
            .derived_f64("recorder_seconds_best", self.recorder_time.as_secs_f64())
            .derived_f64("recorder_site_ns", self.recorder_site_ns)
            .derived_f64("recorder_overhead", self.recorder_overhead)
            .derived_f64("sampler_observe_ns", self.sampler_observe_ns)
            .derived_int("poses_identical", self.poses_identical as usize)
            .derived_int("recorder_poses_identical", self.recorder_poses_identical as usize)
    }
}

/// Streams the sequence through an [`Odometer`], returning the elapsed
/// time and the pose estimated for every registered frame.
fn stream(seq: &Sequence, cfg: &RegistrationConfig) -> (Duration, Vec<RigidTransform>) {
    let mut odo = Odometer::new(cfg.clone());
    let mut poses = Vec::with_capacity(seq.len());
    let t0 = Instant::now();
    for i in 0..seq.len() {
        if let Some(step) = odo.push(seq.frame(i)).expect("odometry step failed") {
            poses.push(step.pose);
        }
    }
    (t0.elapsed(), poses)
}

/// Times one disabled span site: open + drop a `span!` guard with
/// tracing off, in a loop long enough to resolve sub-nanosecond costs.
fn disabled_site_ns() -> f64 {
    assert!(!tigris_obs::enabled(), "site microbench needs tracing off");
    const ITERS: u64 = 4_000_000;
    let t0 = Instant::now();
    for i in 0..ITERS {
        let guard = tigris_obs::span!("bench.site", iter = i);
        std::hint::black_box(&guard);
    }
    t0.elapsed().as_nanos() as f64 / ITERS as f64
}

/// Times one span site with only the flight recorder live: open + drop
/// pays two circular-ring pushes (overwrite-oldest, no allocation once
/// the ring is full).
fn recorder_site_ns() -> f64 {
    assert!(tigris_obs::recorder_on(), "recorder microbench needs the recorder on");
    assert!(!tigris_obs::trace_on(), "recorder microbench must not pay the drain sink");
    const ITERS: u64 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..ITERS {
        let guard = tigris_obs::span!("bench.recorder_site", iter = i);
        std::hint::black_box(&guard);
    }
    t0.elapsed().as_nanos() as f64 / ITERS as f64
}

/// Times the tail sampler's drop-fast path: a fixed cutoff no request
/// reaches, so every `observe` is a threshold check plus counter bumps
/// — the per-request cost sampling adds to *every* completed request.
fn sampler_observe_ns() -> f64 {
    use tigris_obs::sampler::{RequestOutcome, TailConfig, TailSampler};
    let sampler = TailSampler::new(TailConfig::absolute(Duration::from_secs(3600)));
    const ITERS: u64 = 1_000_000;
    let latency = Duration::from_micros(50);
    let t0 = Instant::now();
    for _ in 0..ITERS {
        let decision = sampler.observe(None, latency, RequestOutcome::Completed, false);
        std::hint::black_box(&decision);
    }
    let per_call = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    assert_eq!(sampler.stats().retained, 0, "fast-path bench must never retain");
    per_call
}

/// Runs the tracing-off vs. recorder-only vs. tracing-on comparison on
/// the default synthetic scene: `frames` streamed frames,
/// best-of-`runs` timing per path, bit-identity of the three pose
/// streams, plus the sampler fast-path microbenchmark.
///
/// Toggles the **process-global** sink switches; callers sharing a
/// process with other traced work must serialize around it. All sinks
/// are always left disabled on return.
pub fn run_overhead_comparison(frames: usize, seed: u64, runs: usize) -> ObsBenchResult {
    assert!(frames >= 2, "need at least 2 frames to register anything");
    assert!(runs >= 1);
    tigris_obs::set_enabled(false);
    tigris_obs::set_recorder(false);
    let seq = short_sequence(frames, seed);
    let cfg = RegistrationConfig::default();

    // Warm up (page in the scene, stabilize the allocator), then take
    // the best of `runs` with every sink off.
    let (_, poses_off) = stream(&seq, &cfg);
    let disabled_runs: Vec<Duration> = (0..runs).map(|_| stream(&seq, &cfg).0).collect();
    let site_ns = disabled_site_ns();
    let sampler_ns = sampler_observe_ns();

    // The production posture: flight recorder on, drain sink off. The
    // circular ring absorbs every record with no drain between runs.
    tigris_obs::set_recorder(true);
    let recorder_site = recorder_site_ns();
    let (_, poses_rec) = stream(&seq, &cfg);
    let recorder_runs: Vec<Duration> = (0..runs).map(|_| stream(&seq, &cfg).0).collect();
    tigris_obs::set_recorder(false);
    tigris_obs::recorder::reset();

    // The traced side: drain between runs so the rings never overflow,
    // and count one run's records — every record is a site the disabled
    // path also passed through.
    tigris_obs::set_enabled(true);
    tigris_obs::drain();
    let (_, poses_on) = stream(&seq, &cfg);
    let trace = tigris_obs::drain();
    let enabled_runs: Vec<Duration> = (0..runs)
        .map(|_| {
            let t = stream(&seq, &cfg).0;
            tigris_obs::drain();
            t
        })
        .collect();
    tigris_obs::set_enabled(false);

    let disabled_time = *disabled_runs.iter().min().expect("runs >= 1");
    let enabled_time = *enabled_runs.iter().min().expect("runs >= 1");
    let recorder_time = *recorder_runs.iter().min().expect("runs >= 1");
    let disabled_overhead = site_ns * trace.records.len() as f64 / disabled_time.as_nanos() as f64;
    let recorder_overhead =
        recorder_site * trace.records.len() as f64 / disabled_time.as_nanos() as f64;
    ObsBenchResult {
        frames,
        disabled_time,
        enabled_time,
        disabled_samples: disabled_runs.iter().map(Duration::as_secs_f64).collect(),
        enabled_samples: enabled_runs.iter().map(Duration::as_secs_f64).collect(),
        records_per_run: trace.records.len(),
        records_dropped: trace.dropped,
        site_ns,
        disabled_overhead,
        enabled_overhead: enabled_time.as_secs_f64() / disabled_time.as_secs_f64() - 1.0,
        recorder_time,
        recorder_samples: recorder_runs.iter().map(Duration::as_secs_f64).collect(),
        recorder_site_ns: recorder_site,
        recorder_overhead,
        sampler_observe_ns: sampler_ns,
        poses_identical: poses_off == poses_on,
        recorder_poses_identical: poses_off == poses_rec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_comparison_traces_and_matches_poses() {
        let result = run_overhead_comparison(3, 42, 1);
        assert!(result.records_per_run > 0, "the traced run must record spans");
        assert_eq!(result.records_dropped, 0, "rings must not overflow");
        assert!(result.poses_identical, "tracing must not change poses");
        assert!(result.recorder_poses_identical, "the recorder must not change poses");
        assert!(result.site_ns > 0.0 && result.site_ns < 1_000.0);
        assert!(result.recorder_site_ns > 0.0);
        assert!(result.sampler_observe_ns > 0.0 && result.sampler_observe_ns < 10_000.0);
        assert!(!tigris_obs::enabled(), "every sink must be left disabled");
    }
}

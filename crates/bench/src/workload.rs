//! Shared synthetic workloads for figures and benches.

use tigris_data::{Lidar, LidarConfig, Scene, SceneConfig, Sequence, SequenceConfig};
use tigris_geom::{RigidTransform, Vec3};

/// A dense single LiDAR frame (points in the sensor frame), the substrate
/// for KD-tree–level experiments. ~30–45k points with the default scanner.
pub fn dense_frame(seed: u64) -> Vec<Vec3> {
    let scene = Scene::generate(&SceneConfig::default(), seed);
    let mut lidar = Lidar::new(LidarConfig::default(), seed ^ 0x11da5);
    let pose = RigidTransform::from_translation(Vec3::new(60.0, 0.0, 0.0));
    lidar.scan(&scene, &pose).points().to_vec()
}

/// Two dense scans of the *same* scene from nearby poses: `(target,
/// queries)`. This is the realistic KD-search workload — RPCE queries the
/// previous frame's tree with the next frame's points, which land close to
/// (but not exactly on) indexed points.
pub fn dense_frame_pair(seed: u64) -> (Vec<Vec3>, Vec<Vec3>) {
    let scene = Scene::generate(&SceneConfig::default(), seed);
    let mut lidar = Lidar::new(LidarConfig::default(), seed ^ 0x11da5);
    let target = lidar
        .scan(&scene, &RigidTransform::from_translation(Vec3::new(60.0, 0.0, 0.0)))
        .points()
        .to_vec();
    let queries = lidar
        .scan(&scene, &RigidTransform::from_translation(Vec3::new(61.0, 0.0, 0.0)))
        .points()
        .to_vec();
    (target, queries)
}

/// A consecutive frame pair with ground truth, for registration-level
/// experiments: `(source, target, gt)` where `gt` maps source → target.
pub fn frame_pair(seed: u64) -> (Vec<Vec3>, Vec<Vec3>, RigidTransform) {
    let mut cfg = SequenceConfig::medium();
    cfg.frames = 2;
    let seq = Sequence::generate(&cfg, seed);
    (seq.frame(1).points().to_vec(), seq.frame(0).points().to_vec(), seq.ground_truth_relative(0))
}

/// A short sequence for DSE / odometry experiments.
pub fn short_sequence(frames: usize, seed: u64) -> Sequence {
    let mut cfg = SequenceConfig::medium();
    cfg.frames = frames;
    Sequence::generate(&cfg, seed)
}

/// NN queries modeled on the RPCE workload: the next frame's points,
/// truncated to `n`.
pub fn nn_queries(n: usize, seed: u64) -> Vec<Vec3> {
    let (source, _, _) = frame_pair(seed);
    source.into_iter().take(n).collect()
}

/// A deterministic city-block scene of **at least** `min_points` points
/// plus an RPCE-style query stream (every point perturbed by a ~0.5 m
/// frame-to-frame motion), for scaling experiments that need more points
/// than a single simulated LiDAR scan produces (~30–45k). Ground plane,
/// building walls and scattered clutter give the KD-tree realistic
/// non-uniform density.
pub fn huge_frame_pair(min_points: usize, seed: u64) -> (Vec<Vec3>, Vec<Vec3>) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut unit = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };

    let mut points = Vec::with_capacity(min_points + min_points / 8);
    // Scale the ground grid so the target is reached with ~60% ground,
    // ~30% walls, ~10% clutter.
    let ground = min_points * 6 / 10;
    let side = (ground as f64).sqrt().ceil() as usize;
    let step = 120.0 / side as f64;
    for i in 0..side {
        for j in 0..side {
            points.push(Vec3::new(
                i as f64 * step - 60.0 + (unit() - 0.5) * 0.05,
                j as f64 * step - 60.0 + (unit() - 0.5) * 0.05,
                (unit() - 0.5) * 0.04,
            ));
        }
    }
    let walls = min_points * 3 / 10;
    let per_wall = walls / 8;
    for w in 0..8 {
        let x0 = -50.0 + 14.0 * w as f64;
        for _ in 0..per_wall {
            points.push(Vec3::new(x0 + (unit() - 0.5) * 0.1, (unit() - 0.5) * 100.0, unit() * 8.0));
        }
    }
    while points.len() < min_points {
        points.push(Vec3::new((unit() - 0.5) * 110.0, (unit() - 0.5) * 110.0, unit() * 5.0));
    }

    let queries = points
        .iter()
        .map(|&p| p + Vec3::new(0.5 + (unit() - 0.5) * 0.2, (unit() - 0.5) * 0.2, 0.0))
        .collect();
    (points, queries)
}

/// The top-tree height giving a target mean leaf-set size for `n` points
/// (paper: ~130k points + height 10 ⇒ leaf sets of ~128).
pub fn height_for_leaf_size(n_points: usize, leaf_size: usize) -> usize {
    if n_points == 0 || leaf_size == 0 {
        return 0;
    }
    let leaves = (n_points as f64 / leaf_size as f64).max(1.0);
    leaves.log2().round().max(0.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_frame_is_dense() {
        let f = dense_frame(1);
        assert!(f.len() > 10_000, "only {} points", f.len());
    }

    #[test]
    fn frame_pair_has_kitti_scale_motion() {
        let (_, _, gt) = frame_pair(2);
        let d = gt.translation_norm();
        assert!(d > 0.5 && d < 2.0, "motion {d} m");
    }

    #[test]
    fn height_for_leaf_size_inverts() {
        // 131072 points, leaf 128 → 1024 leaves → height 10 (the paper's
        // configuration).
        assert_eq!(height_for_leaf_size(131_072, 128), 10);
        assert_eq!(height_for_leaf_size(1024, 1), 10);
        assert_eq!(height_for_leaf_size(0, 8), 0);
        assert_eq!(height_for_leaf_size(100, 0), 0);
    }

    #[test]
    fn nn_queries_truncate() {
        assert_eq!(nn_queries(100, 3).len(), 100);
    }
}

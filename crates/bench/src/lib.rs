//! Benchmark harness for the Tigris reproduction.
//!
//! [`workload`] builds the shared synthetic workloads (dense LiDAR frames,
//! query streams); [`figures`] regenerates every table and figure of the
//! paper's evaluation as text tables. The `figures` binary dispatches by
//! experiment id:
//!
//! ```text
//! cargo run -p tigris-bench --release --bin figures -- fig11
//! cargo run -p tigris-bench --release --bin figures -- all
//! ```
//!
//! Criterion benches under `benches/` measure the real-host software
//! kernels (KD-tree build/search, the registration pipeline, and the
//! simulator itself).

pub mod figures;
pub mod frontend;
pub mod mapping;
pub mod obs;
pub mod odometry;
pub mod plot;
pub mod reference;
pub mod report;
pub mod serve;
pub mod shard;
pub mod workload;

/// Reads a `usize` knob from the environment, falling back to `default`
/// when unset or unparsable — the shared configuration hook of the bench
/// binaries (`TIGRIS_ODO_FRAMES`, `TIGRIS_MAP_POINTS`, …).
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

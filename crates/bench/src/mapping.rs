//! Dynamic-map-index throughput measurement: interleaved insert+query
//! streams through `tigris_core::DynamicMapIndex` against the naive
//! rebuild-per-insert baseline a mapper without it would pay.
//!
//! The same logic backs `benches/mapping.rs` (which also emits the
//! machine-readable `BENCH_mapping.json` baseline in CI) and the
//! release-scale acceptance test `tests/mapping_speedup.rs` (the dynamic
//! index must deliver ≥3× insert+query throughput).

use std::time::{Duration, Instant};

use tigris_core::{DynamicMapIndex, KdTree, Neighbor};
use tigris_geom::Vec3;

use crate::report::BenchReport;
use crate::workload::huge_frame_pair;

/// Radius used by the interleaved radius queries (meters; matches the
/// pipeline's correspondence-distance scale).
const QUERY_RADIUS: f64 = 1.5;

/// One dynamic-vs-naive insert+query comparison over the same stream.
#[derive(Debug, Clone)]
pub struct MappingBenchResult {
    /// Points inserted (one at a time, the mapping stream's shape).
    pub points: usize,
    /// Interleaved queries run (one NN + one radius each time).
    pub queries: usize,
    /// Best-of-N wall-clock for the dynamic index.
    pub dynamic_time: Duration,
    /// Best-of-N wall-clock rebuilding a KD-tree on every insert.
    pub naive_time: Duration,
    /// Per-run wall-clock samples (seconds) for the dynamic index.
    pub dynamic_samples: Vec<f64>,
    /// Per-run wall-clock samples (seconds) for the naive path.
    pub naive_samples: Vec<f64>,
    /// Insert+query operations per second, dynamic path.
    pub dynamic_ops_per_s: f64,
    /// Insert+query operations per second, naive path.
    pub naive_ops_per_s: f64,
    /// `dynamic_ops_per_s / naive_ops_per_s`.
    pub speedup: f64,
    /// Merge rebuilds the dynamic index performed (vs. `points` naive
    /// rebuilds).
    pub dynamic_rebuilds: usize,
}

impl MappingBenchResult {
    /// The machine-readable baseline emitted by CI (`BENCH_mapping.json`),
    /// in the shared [`BenchReport`] schema.
    pub fn report(&self) -> BenchReport {
        BenchReport::new("mapping_dynamic_index")
            .config_int("points", self.points)
            .config_int("queries", self.queries)
            .samples("dynamic_seconds", &self.dynamic_samples)
            .samples("naive_seconds", &self.naive_samples)
            .derived_f64("dynamic_seconds_best", self.dynamic_time.as_secs_f64())
            .derived_f64("naive_seconds_best", self.naive_time.as_secs_f64())
            .derived_f64("dynamic_ops_per_s", self.dynamic_ops_per_s)
            .derived_f64("naive_ops_per_s", self.naive_ops_per_s)
            .derived_f64("speedup", self.speedup)
            .derived_int("dynamic_rebuilds", self.dynamic_rebuilds)
    }
}

/// Answers collected along a run, for the cross-path equivalence check.
type Answers = (Vec<Option<Neighbor>>, Vec<usize>);

fn run_dynamic(stream: &[Vec3], queries: &[Vec3], every: usize) -> (Duration, usize, Answers) {
    let mut index = DynamicMapIndex::new();
    let mut nn_out = Vec::new();
    let mut radius_out = Vec::new();
    let mut qi = 0usize;
    let t0 = Instant::now();
    for (i, &p) in stream.iter().enumerate() {
        index.insert(p);
        if (i + 1).is_multiple_of(every) {
            let q = queries[qi % queries.len()];
            qi += 1;
            nn_out.push(index.nn_query(q));
            radius_out.push(index.radius_query(q, QUERY_RADIUS).len());
        }
    }
    (t0.elapsed(), index.rebuilds(), (nn_out, radius_out))
}

fn run_naive(stream: &[Vec3], queries: &[Vec3], every: usize) -> (Duration, Answers) {
    let mut points: Vec<Vec3> = Vec::with_capacity(stream.len());
    let mut nn_out = Vec::new();
    let mut radius_out = Vec::new();
    let mut qi = 0usize;
    let t0 = Instant::now();
    for (i, &p) in stream.iter().enumerate() {
        points.push(p);
        // The whole point of the dynamic index: without it, serving exact
        // queries over a growing map means rebuilding the tree per insert.
        let tree = KdTree::build(&points);
        if (i + 1).is_multiple_of(every) {
            let q = queries[qi % queries.len()];
            qi += 1;
            nn_out.push(tree.nn(q));
            radius_out.push(tree.radius(q, QUERY_RADIUS).len());
        }
    }
    (t0.elapsed(), (nn_out, radius_out))
}

/// Streams `points` single-point inserts (with one NN + one radius query
/// every `queries_every` inserts) through the dynamic index and the
/// rebuild-per-insert baseline, best-of-`runs` each, asserting the two
/// paths answer every query bit-identically.
pub fn run_insert_query_comparison(
    points: usize,
    queries_every: usize,
    seed: u64,
    runs: usize,
) -> MappingBenchResult {
    assert!(points > 0 && queries_every > 0 && runs >= 1);
    let (stream, queries) = huge_frame_pair(points, seed);
    let stream = &stream[..points];

    // Warm-up + correctness: the dynamic index must answer exactly like
    // the from-scratch rebuild at every interleaving point.
    let (_, rebuilds, dynamic_answers) = run_dynamic(stream, &queries, queries_every);
    let (_, naive_answers) = run_naive(stream, &queries, queries_every);
    assert_eq!(
        dynamic_answers, naive_answers,
        "dynamic index diverged from the rebuild-per-insert oracle"
    );

    let dynamic_runs: Vec<Duration> =
        (0..runs).map(|_| run_dynamic(stream, &queries, queries_every).0).collect();
    let naive_runs: Vec<Duration> =
        (0..runs).map(|_| run_naive(stream, &queries, queries_every).0).collect();
    let dynamic_time = *dynamic_runs.iter().min().expect("runs >= 1");
    let naive_time = *naive_runs.iter().min().expect("runs >= 1");

    let n_queries = dynamic_answers.0.len();
    let ops = (points + n_queries) as f64;
    let dynamic_ops_per_s = ops / dynamic_time.as_secs_f64();
    let naive_ops_per_s = ops / naive_time.as_secs_f64();
    MappingBenchResult {
        points,
        queries: n_queries,
        dynamic_time,
        naive_time,
        dynamic_samples: dynamic_runs.iter().map(Duration::as_secs_f64).collect(),
        naive_samples: naive_runs.iter().map(Duration::as_secs_f64).collect(),
        dynamic_ops_per_s,
        naive_ops_per_s,
        speedup: dynamic_ops_per_s / naive_ops_per_s,
        dynamic_rebuilds: rebuilds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_comparison_matches_and_reports() {
        // Small scale: correctness of the equivalence check and counters,
        // not timing.
        let result = run_insert_query_comparison(600, 7, 11, 1);
        assert_eq!(result.points, 600);
        assert_eq!(result.queries, 600 / 7);
        assert!(result.dynamic_ops_per_s > 0.0 && result.naive_ops_per_s > 0.0);
        let json = result.report().to_json();
        assert!(json.contains("\"bench\": \"mapping_dynamic_index\""), "{json}");
        assert!(json.contains("\"speedup\""), "{json}");
        assert!(json.contains("\"points\": 600"), "{json}");
        assert_eq!(result.dynamic_samples.len(), 1);
    }
}

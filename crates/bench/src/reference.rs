//! The pre-SoA pointer-chasing KD-tree, frozen as a benchmark baseline.
//!
//! This is the canonical `tigris_core::KdTree` as it existed *before* the
//! structure-of-arrays migration: one heap node per point, child links as
//! explicit indices, every visit a dependent load of a `Vec3` out of the
//! point array. It is deliberately kept here, verbatim in spirit, so the
//! kernel-speedup acceptance test (`tests/kernel_speedup.rs`) and the
//! `kernels` bench always measure the SoA + SIMD layout against the real
//! historical layout rather than against a guess.
//!
//! Do not "improve" this code: its value is that it stays exactly as slow
//! as the seed implementation. Search results remain bit-identical to the
//! current tree (same split rule, same tie-breaks, same ordering), which
//! the speedup test asserts before it times anything.

use tigris_core::Neighbor;
use tigris_geom::Vec3;

const NONE: u32 = u32::MAX;

/// One tree node: a point index, a split axis, and two optional children.
#[derive(Debug, Clone, Copy)]
struct Node {
    point: u32,
    axis: u8,
    left: u32,
    right: u32,
}

/// The frozen pointer-chasing KD-tree (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct ReferenceKdTree {
    points: Vec<Vec3>,
    nodes: Vec<Node>,
    root: u32,
}

impl ReferenceKdTree {
    /// Builds the tree by recursive median splits on the largest-extent
    /// axis — the same split rule as the current `KdTree`, so results are
    /// comparable point for point.
    pub fn build(points: &[Vec3]) -> Self {
        let mut indices: Vec<u32> = (0..points.len() as u32).collect();
        let mut nodes = Vec::with_capacity(points.len());
        let root = build_recursive(points, &mut indices[..], &mut nodes);
        ReferenceKdTree { points: points.to_vec(), nodes, root }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Nearest neighbor of `query`, or `None` for an empty tree.
    pub fn nn(&self, query: Vec3) -> Option<Neighbor> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut best = Neighbor::new(usize::MAX, f64::INFINITY);
        self.nn_recurse(self.root, query, &mut best);
        (best.index != usize::MAX).then_some(best)
    }

    fn nn_recurse(&self, node_idx: u32, query: Vec3, best: &mut Neighbor) {
        let node = &self.nodes[node_idx as usize];
        let p = self.points[node.point as usize];
        let d2 = query.distance_squared(p);
        if d2 < best.distance_squared
            || (d2 == best.distance_squared && (node.point as usize) < best.index)
        {
            *best = Neighbor::new(node.point as usize, d2);
        }

        let axis = node.axis as usize;
        let delta = query.axis(axis) - p.axis(axis);
        let (near, far) =
            if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        if near != NONE {
            self.nn_recurse(near, query, best);
        }
        if far != NONE && delta * delta <= best.distance_squared {
            self.nn_recurse(far, query, best);
        }
    }

    /// All points within `radius` of `query`, sorted ascending by
    /// distance (ties by index) — the same output contract as the
    /// current tree.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn radius(&self, query: Vec3, radius: f64) -> Vec<Neighbor> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        self.radius_recurse(self.root, query, radius * radius, radius, &mut out);
        out.sort();
        out
    }

    fn radius_recurse(&self, node_idx: u32, query: Vec3, r2: f64, r: f64, out: &mut Vec<Neighbor>) {
        let node = &self.nodes[node_idx as usize];
        let p = self.points[node.point as usize];
        let d2 = query.distance_squared(p);
        if d2 <= r2 {
            out.push(Neighbor::new(node.point as usize, d2));
        }

        let axis = node.axis as usize;
        let delta = query.axis(axis) - p.axis(axis);
        let (near, far) =
            if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        if near != NONE {
            self.radius_recurse(near, query, r2, r, out);
        }
        if far != NONE && delta.abs() <= r {
            self.radius_recurse(far, query, r2, r, out);
        }
    }
}

fn build_recursive(points: &[Vec3], indices: &mut [u32], nodes: &mut Vec<Node>) -> u32 {
    if indices.is_empty() {
        return NONE;
    }
    let mut lo = Vec3::splat(f64::INFINITY);
    let mut hi = Vec3::splat(f64::NEG_INFINITY);
    for &i in indices.iter() {
        lo = lo.min(points[i as usize]);
        hi = hi.max(points[i as usize]);
    }
    let ext = hi - lo;
    let axis = if ext.x >= ext.y && ext.x >= ext.z {
        0
    } else if ext.y >= ext.z {
        1
    } else {
        2
    };

    let mid = indices.len() / 2;
    indices.select_nth_unstable_by(mid, |&a, &b| {
        let va = points[a as usize].axis(axis);
        let vb = points[b as usize].axis(axis);
        va.partial_cmp(&vb).unwrap().then(a.cmp(&b))
    });
    let point = indices[mid];

    let node_idx = nodes.len() as u32;
    nodes.push(Node { point, axis: axis as u8, left: NONE, right: NONE });

    let (left_slice, rest) = indices.split_at_mut(mid);
    let right_slice = &mut rest[1..];
    let left = build_recursive(points, left_slice, nodes);
    let right = build_recursive(points, right_slice, nodes);
    nodes[node_idx as usize].left = left;
    nodes[node_idx as usize].right = right;
    node_idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigris_core::{nn_brute_force, radius_brute_force, KdTree};

    fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 20.0 - 10.0
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn frozen_tree_matches_brute_force_and_current_tree() {
        let pts = cloud(700, 5);
        let reference = ReferenceKdTree::build(&pts);
        let current = KdTree::build(&pts);
        for q in cloud(60, 6) {
            let nn = reference.nn(q).unwrap();
            let oracle = nn_brute_force(&pts, q).unwrap();
            assert_eq!((nn.index, nn.distance_squared), (oracle.index, oracle.distance_squared));
            assert_eq!(reference.nn(q), current.nn(q));
            for r in [0.0, 1.5, 6.0] {
                assert_eq!(reference.radius(q, r), radius_brute_force(&pts, q, r));
                assert_eq!(reference.radius(q, r), current.radius(q, r));
            }
        }
    }

    #[test]
    fn empty_tree_is_well_behaved() {
        let t = ReferenceKdTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.nn(Vec3::ZERO).is_none());
        assert!(t.radius(Vec3::ZERO, 1.0).is_empty());
    }
}

//! The one machine-readable baseline writer every `BENCH_*.json` emitter
//! shares.
//!
//! Each throughput bench (`benches/odometry.rs`, `benches/mapping.rs`,
//! `benches/serve.rs`, …) archives a JSON baseline per CI run so
//! regressions show up as diffable numbers. Before this module each
//! bench hand-formatted its own flat JSON; now they all emit the same
//! four-part schema:
//!
//! ```json
//! {
//!   "bench": "<name>",
//!   "config": { "<knob>": <value>, ... },
//!   "samples": { "<series>": [<per-run seconds>, ...], ... },
//!   "derived": { "<stat>": <value>, ... }
//! }
//! ```
//!
//! `config` holds the workload knobs the run was shaped by, `samples`
//! the raw per-run measurements (so a reader can recompute any
//! statistic), and `derived` the headline numbers (throughput, speedup)
//! the acceptance tests gate on. Keys keep insertion order; the writer
//! is `std`-only (the workspace builds offline, so no serde).

use std::fmt::Write as _;
use std::path::PathBuf;

/// One bench run's machine-readable baseline; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    config: Vec<(String, JsonValue)>,
    samples: Vec<(String, Vec<f64>)>,
    derived: Vec<(String, JsonValue)>,
}

/// The scalar value kinds a report field can hold.
#[derive(Debug, Clone)]
enum JsonValue {
    Int(i64),
    Float(f64),
    Str(String),
}

impl JsonValue {
    fn render(&self, out: &mut String) {
        match self {
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            // Finite floats only (asserted on insert); fixed notation
            // keeps diffs readable.
            JsonValue::Float(v) => {
                let _ = write!(out, "{v:.6}");
            }
            JsonValue::Str(v) => {
                let _ = write!(out, "\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""));
            }
        }
    }
}

impl BenchReport {
    /// A new, empty report for the bench `name`.
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            config: Vec::new(),
            samples: Vec::new(),
            derived: Vec::new(),
        }
    }

    /// Records an integer workload knob.
    pub fn config_int(mut self, key: impl Into<String>, value: usize) -> Self {
        self.config.push((key.into(), JsonValue::Int(value as i64)));
        self
    }

    /// Records a textual workload knob.
    pub fn config_str(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.config.push((key.into(), JsonValue::Str(value.into())));
        self
    }

    /// Records one measurement series (raw per-run values, e.g. seconds
    /// per run).
    ///
    /// # Panics
    ///
    /// Panics when a value is not finite.
    pub fn samples(mut self, key: impl Into<String>, values: &[f64]) -> Self {
        assert!(values.iter().all(|v| v.is_finite()), "samples must be finite");
        self.samples.push((key.into(), values.to_vec()));
        self
    }

    /// Records a derived headline statistic (throughput, speedup, …).
    ///
    /// # Panics
    ///
    /// Panics when the value is not finite.
    pub fn derived_f64(mut self, key: impl Into<String>, value: f64) -> Self {
        assert!(value.is_finite(), "derived stat {value} must be finite");
        self.derived.push((key.into(), JsonValue::Float(value)));
        self
    }

    /// Records a derived integer statistic.
    pub fn derived_int(mut self, key: impl Into<String>, value: usize) -> Self {
        self.derived.push((key.into(), JsonValue::Int(value as i64)));
        self
    }

    /// The report as pretty-printed JSON (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = write!(out, "  \"bench\": ");
        JsonValue::Str(self.name.clone()).render(&mut out);
        out.push_str(",\n  \"config\": {");
        for (i, (key, value)) in self.config.iter().enumerate() {
            let _ = write!(out, "{}\n    \"{key}\": ", if i > 0 { "," } else { "" });
            value.render(&mut out);
        }
        out.push_str("\n  },\n  \"samples\": {");
        for (i, (key, values)) in self.samples.iter().enumerate() {
            let _ = write!(out, "{}\n    \"{key}\": [", if i > 0 { "," } else { "" });
            for (j, v) in values.iter().enumerate() {
                let _ = write!(out, "{}{v:.6}", if j > 0 { ", " } else { "" });
            }
            out.push(']');
        }
        out.push_str("\n  },\n  \"derived\": {");
        for (i, (key, value)) in self.derived.iter().enumerate() {
            let _ = write!(out, "{}\n    \"{key}\": ", if i > 0 { "," } else { "" });
            value.render(&mut out);
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Writes the report where CI expects it: the path in `$env_var`
    /// when set, else `default_path`. Returns the path written.
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be written (a bench baseline that
    /// silently fails to archive is worse than a loud failure).
    pub fn write_env(&self, env_var: &str, default_path: &str) -> PathBuf {
        let path = PathBuf::from(std::env::var(env_var).unwrap_or_else(|_| default_path.into()));
        std::fs::write(&path, self.to_json()).unwrap_or_else(|e| {
            panic!("writing the JSON baseline to {} failed: {e}", path.display())
        });
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_renders_all_four_parts_in_order() {
        let json = BenchReport::new("probe")
            .config_int("items", 42)
            .config_str("mode", "fast \"quoted\"")
            .samples("elapsed_seconds", &[0.25, 0.5])
            .derived_f64("speedup", 2.0)
            .derived_int("rebuilds", 3)
            .to_json();
        let bench_at = json.find("\"bench\": \"probe\"").expect("bench name");
        let config_at = json.find("\"config\"").expect("config part");
        let samples_at = json.find("\"samples\"").expect("samples part");
        let derived_at = json.find("\"derived\"").expect("derived part");
        assert!(bench_at < config_at && config_at < samples_at && samples_at < derived_at);
        assert!(json.contains("\"items\": 42"));
        assert!(json.contains("\"mode\": \"fast \\\"quoted\\\"\""));
        assert!(json.contains("\"elapsed_seconds\": [0.250000, 0.500000]"));
        assert!(json.contains("\"speedup\": 2.000000"));
        assert!(json.contains("\"rebuilds\": 3"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn empty_parts_render_as_empty_objects() {
        let json = BenchReport::new("empty").to_json();
        assert!(json.contains("\"config\": {\n  }"));
        assert!(json.contains("\"samples\": {\n  }"));
        assert!(json.contains("\"derived\": {\n  }"));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_samples_are_rejected() {
        let _ = BenchReport::new("bad").samples("x", &[f64::NAN]);
    }
}

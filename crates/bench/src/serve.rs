//! Shared-map serving throughput: one frozen [`MapSnapshot`] serving
//! every session vs. each session rebuilding the map for itself.
//!
//! The comparison answers the serving layer's existence question: what
//! does freezing + sharing buy over the naive architecture where every
//! localization client constructs its own `Mapper` from the same
//! recorded sequence before it can answer "where am I"? Both paths run
//! the exact same localization scripts and must produce bit-identical
//! poses (the shared snapshot and each rebuilt map are deterministic
//! images of the same stream); only the map-construction work differs.
//!
//! The same logic backs `benches/serve.rs` (which also emits the
//! machine-readable `BENCH_serve.json` baseline in CI) and the
//! release-scale acceptance test `tests/serve_speedup.rs` (snapshot
//! sharing must deliver ≥3× over per-session rebuild at 4 sessions).

use std::sync::Arc;
use std::time::{Duration, Instant};

use tigris_data::{LidarConfig, Sequence, SequenceConfig};
use tigris_geom::RigidTransform;
use tigris_map::{Mapper, MapperConfig};
use tigris_serve::{LocalizationService, MapSnapshot, ServeConfig};

use crate::report::BenchReport;

/// Cold-start frames proven to verify on the benchmark fixture (the
/// serving integration test's script heads), cycled across sessions.
const COLD_STARTS: [usize; 4] = [2, 58, 61, 63];

/// Tracked frames following each session's cold start.
const TRACK_STEPS: usize = 2;

/// One shared-snapshot vs. rebuild-per-session comparison.
#[derive(Debug, Clone)]
pub struct ServeBenchResult {
    /// Concurrent localization sessions served.
    pub sessions: usize,
    /// Frames localized per session (1 cold start + tracked frames).
    pub queries_per_session: usize,
    /// Frames in the mapping sequence each map build consumes.
    pub map_frames: usize,
    /// Best-of-N wall-clock for build-once + freeze + serve-everyone.
    pub shared_time: Duration,
    /// Best-of-N wall-clock for rebuild-the-map-per-session + serve.
    pub rebuild_time: Duration,
    /// Per-run wall-clock samples (seconds), shared path.
    pub shared_samples: Vec<f64>,
    /// Per-run wall-clock samples (seconds), rebuild path.
    pub rebuild_samples: Vec<f64>,
    /// Localized frames per second, shared path (whole workload).
    pub shared_fps: f64,
    /// Localized frames per second, rebuild path.
    pub rebuild_fps: f64,
    /// `rebuild_time / shared_time`.
    pub speedup: f64,
}

impl ServeBenchResult {
    /// The machine-readable baseline emitted by CI (`BENCH_serve.json`),
    /// in the shared [`BenchReport`] schema.
    pub fn report(&self) -> BenchReport {
        BenchReport::new("serve_shared_snapshot")
            .config_int("sessions", self.sessions)
            .config_int("queries_per_session", self.queries_per_session)
            .config_int("map_frames", self.map_frames)
            .samples("shared_seconds", &self.shared_samples)
            .samples("rebuild_seconds", &self.rebuild_samples)
            .derived_f64("shared_seconds_best", self.shared_time.as_secs_f64())
            .derived_f64("rebuild_seconds_best", self.rebuild_time.as_secs_f64())
            .derived_f64("shared_fps", self.shared_fps)
            .derived_f64("rebuild_fps", self.rebuild_fps)
            .derived_f64("speedup", self.speedup)
    }
}

/// The benchmark fixture: the serving integration test's 60 m closed
/// circuit at the low-resolution scanner.
fn fixture_config() -> SequenceConfig {
    let mut cfg = SequenceConfig::loop_circuit(60.0, 6);
    cfg.lidar = LidarConfig::tiny();
    cfg
}

/// Per-session localization scripts: session `s` cold-starts at a proven
/// seam frame and tracks the next frames.
fn scripts(sessions: usize) -> Vec<Vec<usize>> {
    (0..sessions)
        .map(|s| {
            let start = COLD_STARTS[s % COLD_STARTS.len()];
            (start..=start + TRACK_STEPS).collect()
        })
        .collect()
}

/// Builds the map from the sequence (the expensive write side).
fn build_mapper(seq: &Sequence) -> Mapper {
    let mut mapper = Mapper::new(MapperConfig::serving());
    for i in 0..seq.len() {
        mapper.push(seq.frame(i)).expect("mapping frame failed");
    }
    mapper
}

/// Serves every script against one snapshot, returning the localized
/// poses in script order.
fn serve_scripts(
    snapshot: &Arc<MapSnapshot>,
    seq: &Sequence,
    scripts: &[Vec<usize>],
) -> Vec<RigidTransform> {
    let service = LocalizationService::new(Arc::clone(snapshot), ServeConfig::default());
    let mut poses = Vec::new();
    for script in scripts {
        let mut session = service.open_session().expect("session admission");
        for &frame in script {
            let step = session.localize(seq.frame(frame)).expect("localization failed");
            poses.push(step.pose);
        }
    }
    poses
}

/// Shared path: build the map once, freeze once, serve every session
/// from the `Arc`-shared snapshot.
fn run_shared(seq: &Sequence, scripts: &[Vec<usize>]) -> (Duration, Vec<RigidTransform>) {
    let t0 = Instant::now();
    let snapshot = Arc::new(MapSnapshot::freeze(build_mapper(seq)).expect("freeze failed"));
    let poses = serve_scripts(&snapshot, seq, scripts);
    (t0.elapsed(), poses)
}

/// Rebuild path: every session constructs its own map from the same
/// sequence before localizing — the architecture the snapshot replaces.
fn run_rebuild(seq: &Sequence, scripts: &[Vec<usize>]) -> (Duration, Vec<RigidTransform>) {
    let t0 = Instant::now();
    let mut poses = Vec::new();
    for script in scripts {
        let snapshot = Arc::new(MapSnapshot::freeze(build_mapper(seq)).expect("freeze failed"));
        poses.extend(serve_scripts(&snapshot, seq, std::slice::from_ref(script)));
    }
    (t0.elapsed(), poses)
}

/// Runs the comparison: `sessions` scripts served both ways,
/// best-of-`runs` timing per path, poses asserted bit-identical across
/// paths.
pub fn run_shared_vs_rebuild_comparison(
    sessions: usize,
    seed: u64,
    runs: usize,
) -> ServeBenchResult {
    assert!(sessions >= 1 && runs >= 1);
    let seq = Sequence::generate(&fixture_config(), seed);
    let scripts = scripts(sessions);
    let queries_per_session = TRACK_STEPS + 1;

    // Correctness first: the shared snapshot and every per-session
    // rebuild are deterministic images of the same stream, so both
    // paths must localize every frame to the bit-identical pose.
    let (_, shared_poses) = run_shared(&seq, &scripts);
    let (_, rebuild_poses) = run_rebuild(&seq, &scripts);
    assert_eq!(shared_poses.len(), rebuild_poses.len());
    for (i, (a, b)) in shared_poses.iter().zip(&rebuild_poses).enumerate() {
        assert!(
            a.translation == b.translation && a.rotation == b.rotation,
            "pose {i} diverged between shared and rebuild paths"
        );
    }

    let shared_runs: Vec<Duration> = (0..runs).map(|_| run_shared(&seq, &scripts).0).collect();
    let rebuild_runs: Vec<Duration> = (0..runs).map(|_| run_rebuild(&seq, &scripts).0).collect();
    let shared_time = *shared_runs.iter().min().expect("runs >= 1");
    let rebuild_time = *rebuild_runs.iter().min().expect("runs >= 1");

    let total_queries = (sessions * queries_per_session) as f64;
    ServeBenchResult {
        sessions,
        queries_per_session,
        map_frames: seq.len(),
        shared_time,
        rebuild_time,
        shared_samples: shared_runs.iter().map(Duration::as_secs_f64).collect(),
        rebuild_samples: rebuild_runs.iter().map(Duration::as_secs_f64).collect(),
        shared_fps: total_queries / shared_time.as_secs_f64(),
        rebuild_fps: total_queries / rebuild_time.as_secs_f64(),
        speedup: rebuild_time.as_secs_f64() / shared_time.as_secs_f64(),
    }
}

//! Shared-map serving throughput: one frozen [`MapSnapshot`] serving
//! every session vs. each session rebuilding the map for itself.
//!
//! The comparison answers the serving layer's existence question: what
//! does freezing + sharing buy over the naive architecture where every
//! localization client constructs its own `Mapper` from the same
//! recorded sequence before it can answer "where am I"? Both paths run
//! the exact same localization scripts and must produce bit-identical
//! poses (the shared snapshot and each rebuilt map are deterministic
//! images of the same stream); only the map-construction work differs.
//!
//! The same logic backs `benches/serve.rs` (which also emits the
//! machine-readable `BENCH_serve.json` baseline in CI) and the
//! release-scale acceptance test `tests/serve_speedup.rs` (snapshot
//! sharing must deliver ≥3× over per-session rebuild at 4 sessions).

use std::sync::Arc;
use std::time::{Duration, Instant};

use tigris_data::{LidarConfig, Sequence, SequenceConfig};
use tigris_geom::RigidTransform;
use tigris_map::{Mapper, MapperConfig};
use tigris_serve::{LocalizationService, MapSnapshot, ServeConfig};

use crate::report::BenchReport;

/// Cold-start frames proven to verify on the benchmark fixture (the
/// serving integration test's script heads), cycled across sessions.
const COLD_STARTS: [usize; 4] = [2, 58, 61, 63];

/// Tracked frames following each session's cold start.
const TRACK_STEPS: usize = 2;

/// One shared-snapshot vs. rebuild-per-session comparison.
#[derive(Debug, Clone)]
pub struct ServeBenchResult {
    /// Concurrent localization sessions served.
    pub sessions: usize,
    /// Frames localized per session (1 cold start + tracked frames).
    pub queries_per_session: usize,
    /// Frames in the mapping sequence each map build consumes.
    pub map_frames: usize,
    /// Best-of-N wall-clock for build-once + freeze + serve-everyone.
    pub shared_time: Duration,
    /// Best-of-N wall-clock for rebuild-the-map-per-session + serve.
    pub rebuild_time: Duration,
    /// Per-run wall-clock samples (seconds), shared path.
    pub shared_samples: Vec<f64>,
    /// Per-run wall-clock samples (seconds), rebuild path.
    pub rebuild_samples: Vec<f64>,
    /// Localized frames per second, shared path (whole workload).
    pub shared_fps: f64,
    /// Localized frames per second, rebuild path.
    pub rebuild_fps: f64,
    /// `rebuild_time / shared_time`.
    pub speedup: f64,
    /// Per-session cold-start relocalization latencies (seconds) from
    /// the timed shared-path runs — the "how long until a new client
    /// has a pose" number the front-end raw-speed pass targets.
    pub cold_start_samples: Vec<f64>,
    /// Wall-clock in the normal-estimation stage across one shared-path
    /// run's front ends (query-frame preparations).
    pub ne_seconds: f64,
    /// Wall-clock in the descriptor stage across the same run.
    pub descriptor_seconds: f64,
    /// Front-end scratch growth (bytes) across the same run — flat once
    /// each session's scratch is warm.
    pub scratch_bytes_grown: u64,
    /// Allocation-free frame preparations across the same run.
    pub scratch_reuses: u64,
}

impl ServeBenchResult {
    /// The machine-readable baseline emitted by CI (`BENCH_serve.json`),
    /// in the shared [`BenchReport`] schema.
    pub fn report(&self) -> BenchReport {
        BenchReport::new("serve_shared_snapshot")
            .config_int("sessions", self.sessions)
            .config_int("queries_per_session", self.queries_per_session)
            .config_int("map_frames", self.map_frames)
            .samples("shared_seconds", &self.shared_samples)
            .samples("rebuild_seconds", &self.rebuild_samples)
            .samples("cold_start_seconds", &self.cold_start_samples)
            .derived_f64("shared_seconds_best", self.shared_time.as_secs_f64())
            .derived_f64("rebuild_seconds_best", self.rebuild_time.as_secs_f64())
            .derived_f64("shared_fps", self.shared_fps)
            .derived_f64("rebuild_fps", self.rebuild_fps)
            .derived_f64("speedup", self.speedup)
            .derived_f64("cold_start_seconds_best", self.cold_start_best())
            .derived_f64("frontend_ne_seconds", self.ne_seconds)
            .derived_f64("frontend_descriptor_seconds", self.descriptor_seconds)
            .derived_int("frontend_scratch_bytes_grown", self.scratch_bytes_grown as usize)
            .derived_int("frontend_scratch_reuses", self.scratch_reuses as usize)
    }

    /// Fastest observed cold-start relocalization (seconds), `0.0` when
    /// no samples were recorded.
    pub fn cold_start_best(&self) -> f64 {
        if self.cold_start_samples.is_empty() {
            return 0.0;
        }
        self.cold_start_samples.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// The benchmark fixture: the serving integration test's 60 m closed
/// circuit at the low-resolution scanner.
fn fixture_config() -> SequenceConfig {
    let mut cfg = SequenceConfig::loop_circuit(60.0, 6);
    cfg.lidar = LidarConfig::tiny();
    cfg
}

/// Per-session localization scripts: session `s` cold-starts at a proven
/// seam frame and tracks the next frames.
fn scripts(sessions: usize) -> Vec<Vec<usize>> {
    (0..sessions)
        .map(|s| {
            let start = COLD_STARTS[s % COLD_STARTS.len()];
            (start..=start + TRACK_STEPS).collect()
        })
        .collect()
}

/// Builds the map from the sequence (the expensive write side).
fn build_mapper(seq: &Sequence) -> Mapper {
    let mut mapper = Mapper::new(MapperConfig::serving());
    for i in 0..seq.len() {
        mapper.push(seq.frame(i)).expect("mapping frame failed");
    }
    mapper
}

/// What one pass over the localization scripts observed beyond its
/// poses: per-session cold-start latencies and the service's stats.
struct ServeObservations {
    cold_start_seconds: Vec<f64>,
    stats: tigris_serve::ServeStats,
}

/// Serves every script against one snapshot, returning the localized
/// poses in script order plus the per-session cold-start latencies
/// (each script's first `localize` — the relocalization request) and
/// the service-wide stats.
fn serve_scripts(
    snapshot: &Arc<MapSnapshot>,
    seq: &Sequence,
    scripts: &[Vec<usize>],
) -> (Vec<RigidTransform>, ServeObservations) {
    let service = LocalizationService::new(Arc::clone(snapshot), ServeConfig::default());
    let mut poses = Vec::new();
    let mut cold_start_seconds = Vec::with_capacity(scripts.len());
    for script in scripts {
        let mut session = service.open_session().expect("session admission");
        for (i, &frame) in script.iter().enumerate() {
            let t0 = Instant::now();
            let step = session.localize(seq.frame(frame)).expect("localization failed");
            if i == 0 {
                cold_start_seconds.push(t0.elapsed().as_secs_f64());
            }
            poses.push(step.pose);
        }
    }
    let stats = service.stats();
    (poses, ServeObservations { cold_start_seconds, stats })
}

/// Shared path: build the map once, freeze once, serve every session
/// from the `Arc`-shared snapshot.
fn run_shared(
    seq: &Sequence,
    scripts: &[Vec<usize>],
) -> (Duration, Vec<RigidTransform>, ServeObservations) {
    let t0 = Instant::now();
    let snapshot = Arc::new(MapSnapshot::freeze(build_mapper(seq)).expect("freeze failed"));
    let (poses, obs) = serve_scripts(&snapshot, seq, scripts);
    (t0.elapsed(), poses, obs)
}

/// Rebuild path: every session constructs its own map from the same
/// sequence before localizing — the architecture the snapshot replaces.
fn run_rebuild(seq: &Sequence, scripts: &[Vec<usize>]) -> (Duration, Vec<RigidTransform>) {
    let t0 = Instant::now();
    let mut poses = Vec::new();
    for script in scripts {
        let snapshot = Arc::new(MapSnapshot::freeze(build_mapper(seq)).expect("freeze failed"));
        poses.extend(serve_scripts(&snapshot, seq, std::slice::from_ref(script)).0);
    }
    (t0.elapsed(), poses)
}

/// Runs the comparison: `sessions` scripts served both ways,
/// best-of-`runs` timing per path, poses asserted bit-identical across
/// paths.
pub fn run_shared_vs_rebuild_comparison(
    sessions: usize,
    seed: u64,
    runs: usize,
) -> ServeBenchResult {
    assert!(sessions >= 1 && runs >= 1);
    let seq = Sequence::generate(&fixture_config(), seed);
    let scripts = scripts(sessions);
    let queries_per_session = TRACK_STEPS + 1;

    // Correctness first: the shared snapshot and every per-session
    // rebuild are deterministic images of the same stream, so both
    // paths must localize every frame to the bit-identical pose.
    let (_, shared_poses, _) = run_shared(&seq, &scripts);
    let (_, rebuild_poses) = run_rebuild(&seq, &scripts);
    assert_eq!(shared_poses.len(), rebuild_poses.len());
    for (i, (a, b)) in shared_poses.iter().zip(&rebuild_poses).enumerate() {
        assert!(
            a.translation == b.translation && a.rotation == b.rotation,
            "pose {i} diverged between shared and rebuild paths"
        );
    }

    let mut cold_start_samples = Vec::with_capacity(runs * sessions);
    let mut last_stats = None;
    let shared_runs: Vec<Duration> = (0..runs)
        .map(|_| {
            let (t, _, obs) = run_shared(&seq, &scripts);
            cold_start_samples.extend(obs.cold_start_seconds);
            last_stats = Some(obs.stats);
            t
        })
        .collect();
    let rebuild_runs: Vec<Duration> = (0..runs).map(|_| run_rebuild(&seq, &scripts).0).collect();
    let shared_time = *shared_runs.iter().min().expect("runs >= 1");
    let rebuild_time = *rebuild_runs.iter().min().expect("runs >= 1");
    let stats = last_stats.expect("runs >= 1");

    let total_queries = (sessions * queries_per_session) as f64;
    ServeBenchResult {
        sessions,
        queries_per_session,
        map_frames: seq.len(),
        shared_time,
        rebuild_time,
        shared_samples: shared_runs.iter().map(Duration::as_secs_f64).collect(),
        rebuild_samples: rebuild_runs.iter().map(Duration::as_secs_f64).collect(),
        shared_fps: total_queries / shared_time.as_secs_f64(),
        rebuild_fps: total_queries / rebuild_time.as_secs_f64(),
        speedup: rebuild_time.as_secs_f64() / shared_time.as_secs_f64(),
        cold_start_samples,
        ne_seconds: stats.normal_estimation_time.as_secs_f64(),
        descriptor_seconds: stats.descriptor_time.as_secs_f64(),
        scratch_bytes_grown: stats.prepare_scratch_bytes_grown,
        scratch_reuses: stats.prepare_scratch_reuses,
    }
}

//! CLI regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run -p tigris-bench --release --bin figures -- <experiment id>|all [--seed N]
//! ```
//!
//! Experiment ids: fig3, fig4, fig6, fig7, area, fig11, approx, fig12,
//! fig13, fig14, fig15, end2end.

use tigris_bench::figures::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut svg_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--seed" {
            seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--seed needs an integer");
                std::process::exit(2);
            });
        } else if a == "--svg" {
            svg_dir = Some(it.next().unwrap_or_else(|| {
                eprintln!("--svg needs a directory");
                std::process::exit(2);
            }));
        } else {
            ids.push(a);
        }
    }

    if let Some(dir) = svg_dir {
        let written = tigris_bench::figures::render_svgs(std::path::Path::new(&dir), seed);
        for p in &written {
            println!("wrote {}", p.display());
        }
        if ids.is_empty() {
            return;
        }
    }
    if ids.is_empty() {
        eprintln!("usage: figures <experiment id>|all [--seed N]");
        eprintln!("experiments: {} end2end", ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }

    for id in ids {
        if id == "all" {
            for exp in ALL_EXPERIMENTS {
                println!();
                run_experiment(exp, seed);
            }
            continue;
        }
        println!();
        if !run_experiment(&id, seed) {
            eprintln!("unknown experiment '{id}'; known: {} end2end", ALL_EXPERIMENTS.join(" "));
            std::process::exit(2);
        }
    }
}

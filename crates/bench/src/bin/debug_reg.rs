//! Scratch harness for tuning registration quality on synthetic frames.

use tigris_bench::workload::frame_pair;
use tigris_geom::{PointCloud, RigidTransform};
use tigris_pipeline::{
    register, ErrorMetric, KeypointAlgorithm, RegistrationConfig, SolverAlgorithm,
};

/// Step through the initial-estimation phase and report the quality of
/// each stage's output against ground truth.
fn diagnose_frontend(
    source: &PointCloud,
    target: &PointCloud,
    gt: &RigidTransform,
    cfg: &RegistrationConfig,
) {
    use tigris_pipeline::correspond::kpce;
    use tigris_pipeline::descriptor::compute_descriptors;
    use tigris_pipeline::keypoint::detect_keypoints;
    use tigris_pipeline::normal::estimate_normals;
    use tigris_pipeline::Searcher3;
    let src = source.voxel_downsample(cfg.voxel_size);
    let tgt = target.voxel_downsample(cfg.voxel_size);
    let mut ss = Searcher3::classic(src.points());
    let mut ts = Searcher3::classic(tgt.points());
    let sn = estimate_normals(&mut ss, cfg.normal_radius, cfg.normal_algorithm);
    let tn = estimate_normals(&mut ts, cfg.normal_radius, cfg.normal_algorithm);
    let sk = detect_keypoints(&mut ss, &sn, cfg.keypoint);
    let tk = detect_keypoints(&mut ts, &tn, cfg.keypoint);
    println!("keypoints: {} src, {} tgt", sk.len(), tk.len());
    let ranges: Vec<f64> = sk.iter().map(|&i| src.points()[i].norm()).collect();
    let mut sorted = ranges.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "keypoint range: min {:.1} med {:.1} max {:.1} m; first 5: {:?}",
        sorted[0],
        sorted[sorted.len() / 2],
        sorted[sorted.len() - 1],
        &sk[..5.min(sk.len())].iter().map(|&i| src.points()[i]).collect::<Vec<_>>()
    );

    // How repeatable are the key-points? For each source key-point, is
    // there a target key-point within 0.4 m after the GT transform?
    let tk_pts: Vec<_> = tk.iter().map(|&i| tgt.points()[i]).collect();
    let repeat = sk
        .iter()
        .filter(|&&i| {
            let p = gt.apply(src.points()[i]);
            tk_pts.iter().any(|&t| t.distance(p) < 0.4)
        })
        .count();
    println!("keypoint repeatability: {repeat}/{} within 0.4 m", sk.len());

    let sd = compute_descriptors(&mut ss, &sn, &sk, cfg.descriptor);
    let td = compute_descriptors(&mut ts, &tn, &tk, cfg.descriptor);
    for recip in [false, true] {
        let matches = kpce(&sd, &td, recip, None);
        let good = matches
            .iter()
            .filter(|m| {
                gt.apply(src.points()[sk[m.source]]).distance(tgt.points()[tk[m.target]]) < 0.5
            })
            .count();
        println!(
            "kpce(reciprocal={recip}): {} matches, {} geometrically correct",
            matches.len(),
            good
        );
    }
}

/// Control experiment: descriptors on a rigidly transformed copy of the
/// same cloud (no resampling). If matching fails here the descriptor
/// implementation is broken; if it succeeds, the pipeline's difficulty is
/// resampling sensitivity.
fn control_same_cloud(target: &PointCloud) {
    use tigris_pipeline::correspond::kpce;
    use tigris_pipeline::descriptor::compute_descriptors;
    use tigris_pipeline::keypoint::detect_keypoints;
    use tigris_pipeline::normal::estimate_normals;
    use tigris_pipeline::Searcher3;

    let cfg = RegistrationConfig::default();
    let gt = RigidTransform::from_axis_angle(
        tigris_geom::Vec3::Z,
        0.3,
        tigris_geom::Vec3::new(5.0, 2.0, 0.0),
    );
    let tgt = target.voxel_downsample(cfg.voxel_size);
    let src = tgt.transformed(&gt.inverse());
    let mut ss = Searcher3::classic(src.points());
    let mut ts = Searcher3::classic(tgt.points());
    let sn = estimate_normals(&mut ss, cfg.normal_radius, cfg.normal_algorithm);
    let tn = estimate_normals(&mut ts, cfg.normal_radius, cfg.normal_algorithm);
    let sk = detect_keypoints(&mut ss, &sn, cfg.keypoint);
    let tk = detect_keypoints(&mut ts, &tn, cfg.keypoint);
    let sd = compute_descriptors(&mut ss, &sn, &sk, cfg.descriptor);
    let td = compute_descriptors(&mut ts, &tn, &tk, cfg.descriptor);
    let matches = kpce(&sd, &td, false, None);
    let good = matches
        .iter()
        .filter(|m| gt.apply(src.points()[sk[m.source]]).distance(tgt.points()[tk[m.target]]) < 0.5)
        .count();
    println!(
        "CONTROL same-cloud rigid: {} kp, {} matches, {} correct",
        sk.len(),
        matches.len(),
        good
    );
}

fn main() {
    let (source, target, gt) = frame_pair(42);
    let source = PointCloud::from_points(source);
    let target = PointCloud::from_points(target);
    println!("gt: {gt}");

    control_same_cloud(&target);

    for (vox, kp_r, d_r) in
        [(0.3, 1.0, 1.0), (0.3, 1.0, 1.8), (0.25, 0.8, 1.8), (0.2, 0.8, 1.5), (0.3, 1.5, 2.5)]
    {
        println!("\n--- voxel {vox}, ISS r {kp_r}, FPFH r {d_r} ---");
        let cfg = RegistrationConfig {
            voxel_size: vox,
            keypoint: KeypointAlgorithm::Iss { radius: kp_r },
            descriptor: tigris_pipeline::DescriptorAlgorithm::Fpfh { radius: d_r },
            ..RegistrationConfig::default()
        };
        diagnose_frontend(&source, &target, &gt, &cfg);
    }

    let variants: Vec<(&str, RegistrationConfig)> = vec![
        ("default", RegistrationConfig::default()),
        (
            "p2plane",
            RegistrationConfig {
                error_metric: ErrorMetric::PointToPlane,
                ..RegistrationConfig::default()
            },
        ),
        (
            "p2plane-more-iters",
            RegistrationConfig {
                error_metric: ErrorMetric::PointToPlane,
                convergence: tigris_pipeline::ConvergenceCriteria {
                    max_iterations: 60,
                    mse_relative_epsilon: 1e-6,
                    ..Default::default()
                },
                ..RegistrationConfig::default()
            },
        ),
        (
            "bigger-corr-dist",
            RegistrationConfig {
                max_correspondence_distance: 3.0,
                error_metric: ErrorMetric::PointToPlane,
                convergence: tigris_pipeline::ConvergenceCriteria {
                    max_iterations: 60,
                    mse_relative_epsilon: 1e-6,
                    ..Default::default()
                },
                ..RegistrationConfig::default()
            },
        ),
        (
            "harris-keypoints",
            RegistrationConfig {
                keypoint: KeypointAlgorithm::Harris { radius: 1.0 },
                error_metric: ErrorMetric::PointToPlane,
                ..RegistrationConfig::default()
            },
        ),
        (
            "lm",
            RegistrationConfig {
                error_metric: ErrorMetric::PointToPlane,
                solver: SolverAlgorithm::LevenbergMarquardt,
                convergence: tigris_pipeline::ConvergenceCriteria {
                    max_iterations: 60,
                    mse_relative_epsilon: 1e-6,
                    ..Default::default()
                },
                ..RegistrationConfig::default()
            },
        ),
    ];

    for (name, cfg) in variants {
        match register(&source, &target, &cfg) {
            Ok(r) => {
                let residual = gt.inverse() * r.transform;
                let init_residual = gt.inverse() * r.initial_transform;
                println!(
                    "{name:20} t-err {:.3} m  r-err {:.3}°  init-t-err {:.2} m  init-angle {:.1}°  kp {}/{} inliers {}  iters {}",
                    residual.translation_norm(),
                    residual.rotation_angle().to_degrees(),
                    init_residual.translation_norm(),
                    r.initial_transform.rotation_angle().to_degrees(),
                    r.keypoints.0,
                    r.keypoints.1,
                    r.inlier_correspondences,
                    r.icp_iterations
                );
            }
            Err(e) => println!("{name:20} FAILED: {e}"),
        }
    }
}

//! Minimal SVG plotting for the figure harness: scatter, line and bar
//! charts rendered without any external dependency, so `figures --svg`
//! can emit the paper's plots as actual graphics next to the text tables.

use std::fmt::Write as _;

/// One named data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, y) samples.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { label: label.into(), points }
    }
}

/// Chart flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChartKind {
    /// Markers only (DSE tradeoff clouds).
    Scatter,
    /// Markers joined by polylines (sweeps).
    Line,
    /// Vertical bars, one group per x (distributions, ablations).
    Bar,
}

/// A chart under construction.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    kind: ChartKind,
    series: Vec<Series>,
    log_y: bool,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;
const PALETTE: [&str; 6] = ["#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"];

impl Chart {
    /// Starts a chart.
    pub fn new(kind: ChartKind, title: impl Into<String>) -> Self {
        Chart {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            kind,
            series: Vec::new(),
            log_y: false,
        }
    }

    /// Sets the axis labels.
    pub fn axes(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Plots y on a log₁₀ scale (values must be positive; non-positive
    /// samples are dropped).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a data series.
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Renders the chart as a standalone SVG document.
    ///
    /// Returns a minimal empty chart when no finite data is present.
    pub fn to_svg(&self) -> String {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                let y = if self.log_y {
                    if y <= 0.0 {
                        continue;
                    }
                    y.log10()
                } else {
                    y
                };
                if x.is_finite() && y.is_finite() {
                    xs.push(x);
                    ys.push(y);
                }
            }
        }
        let (x_min, x_max) = bounds(&xs);
        let (y_min, y_max) = bounds(&ys);
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min).max(1e-300) * plot_w;
        let sy = |y: f64| {
            let y = if self.log_y { y.log10() } else { y };
            MARGIN_T + plot_h - (y - y_min) / (y_max - y_min).max(1e-300) * plot_h
        };

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
        );
        let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
        // Frame.
        let _ = writeln!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333"/>"##
        );
        // Title + axis labels.
        let _ = writeln!(
            svg,
            r#"<text x="{:.0}" y="24" text-anchor="middle" font-family="sans-serif" font-size="15" font-weight="bold">{}</text>"#,
            WIDTH / 2.0,
            escape(&self.title)
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.0}" y="{:.0}" text-anchor="middle" font-family="sans-serif" font-size="12">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            svg,
            r#"<text x="16" y="{:.0}" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 16 {:.0})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Ticks (4 per axis).
        for i in 0..=4 {
            let fx = x_min + (x_max - x_min) * i as f64 / 4.0;
            let px = sx(fx);
            let _ = writeln!(
                svg,
                r#"<text x="{px:.0}" y="{:.0}" text-anchor="middle" font-family="sans-serif" font-size="10">{}</text>"#,
                MARGIN_T + plot_h + 16.0,
                tick_label(fx)
            );
            let fy_plot = y_min + (y_max - y_min) * i as f64 / 4.0;
            let py = MARGIN_T + plot_h - plot_h * i as f64 / 4.0;
            let shown = if self.log_y { 10f64.powf(fy_plot) } else { fy_plot };
            let _ = writeln!(
                svg,
                r#"<text x="{:.0}" y="{py:.0}" text-anchor="end" font-family="sans-serif" font-size="10">{}</text>"#,
                MARGIN_L - 6.0,
                tick_label(shown)
            );
        }

        // Series.
        let n_series = self.series.len().max(1);
        for (si, s) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            match self.kind {
                ChartKind::Bar => {
                    let group_w = plot_w / s.points.len().max(1) as f64;
                    let bar_w = (group_w / n_series as f64 * 0.8).max(1.0);
                    for (pi, &(_, y)) in s.points.iter().enumerate() {
                        let x0 = MARGIN_L + pi as f64 * group_w + si as f64 * bar_w + group_w * 0.1;
                        let y_px = sy(if self.log_y { y.max(1e-12) } else { y });
                        let base = sy(if self.log_y {
                            10f64.powf(y_min)
                        } else {
                            y_min.min(0.0).max(y_min)
                        });
                        let (top, h) =
                            if y_px <= base { (y_px, base - y_px) } else { (base, y_px - base) };
                        let _ = writeln!(
                            svg,
                            r#"<rect x="{x0:.1}" y="{top:.1}" width="{bar_w:.1}" height="{h:.1}" fill="{color}" opacity="0.85"/>"#
                        );
                    }
                }
                ChartKind::Line | ChartKind::Scatter => {
                    if self.kind == ChartKind::Line && s.points.len() > 1 {
                        let path: Vec<String> = s
                            .points
                            .iter()
                            .filter(|(x, y)| x.is_finite() && (!self.log_y || *y > 0.0))
                            .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                            .collect();
                        let _ = writeln!(
                            svg,
                            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.5"/>"#,
                            path.join(" ")
                        );
                    }
                    for &(x, y) in &s.points {
                        if !x.is_finite() || (self.log_y && y <= 0.0) {
                            continue;
                        }
                        let _ = writeln!(
                            svg,
                            r#"<circle cx="{:.1}" cy="{:.1}" r="3.2" fill="{color}"/>"#,
                            sx(x),
                            sy(y)
                        );
                    }
                }
            }
            // Legend.
            let lx = MARGIN_L + 10.0;
            let ly = MARGIN_T + 14.0 + si as f64 * 16.0;
            let _ = writeln!(
                svg,
                r#"<rect x="{lx:.0}" y="{:.0}" width="10" height="10" fill="{color}"/><text x="{:.0}" y="{ly:.0}" font-family="sans-serif" font-size="11">{}</text>"#,
                ly - 9.0,
                lx + 14.0,
                escape(&s.label)
            );
        }

        svg.push_str("</svg>\n");
        svg
    }

    /// Writes the SVG to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_svg())
    }
}

fn bounds(vals: &[f64]) -> (f64, f64) {
    if vals.is_empty() {
        return (0.0, 1.0);
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in vals {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if (hi - lo).abs() < 1e-12 {
        (lo - 0.5, hi + 0.5)
    } else {
        let pad = (hi - lo) * 0.05;
        (lo - pad, hi + pad)
    }
}

fn tick_label(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.1e}")
    } else if v.abs() >= 10.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart(kind: ChartKind) -> Chart {
        Chart::new(kind, "test chart")
            .axes("x", "y")
            .series(Series::new("a", vec![(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)]))
            .series(Series::new("b", vec![(0.0, 3.0), (1.0, 0.5)]))
    }

    #[test]
    fn svg_is_well_formed_ish() {
        for kind in [ChartKind::Scatter, ChartKind::Line, ChartKind::Bar] {
            let svg = sample_chart(kind).to_svg();
            assert!(svg.starts_with("<svg"));
            assert!(svg.trim_end().ends_with("</svg>"));
            assert_eq!(svg.matches("<svg").count(), 1);
            assert!(svg.contains("test chart"));
            assert!(svg.contains("polyline") == (kind == ChartKind::Line));
            assert!(svg.contains("<rect") || kind != ChartKind::Bar);
        }
    }

    #[test]
    fn log_scale_drops_nonpositive() {
        let svg = Chart::new(ChartKind::Line, "log")
            .log_y()
            .series(Series::new("s", vec![(0.0, 0.0), (1.0, 10.0), (2.0, 100.0)]))
            .to_svg();
        // Two valid points → two circles.
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn empty_chart_does_not_panic() {
        let svg = Chart::new(ChartKind::Scatter, "empty").to_svg();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn titles_are_escaped() {
        let svg = Chart::new(ChartKind::Scatter, "a < b & c").to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn save_writes_file() {
        let path = std::env::temp_dir().join(format!("tigris_plot_{}.svg", std::process::id()));
        sample_chart(ChartKind::Line).save(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("</svg>"));
        std::fs::remove_file(path).unwrap();
    }
}

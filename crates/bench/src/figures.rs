//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each `figN` function runs the experiment and returns structured rows
//! (so tests can assert the paper's qualitative shape) while printing the
//! same table the paper plots. See DESIGN.md §4 for the experiment index
//! and EXPERIMENTS.md for recorded paper-vs-measured comparisons.

use std::time::Instant;

use tigris_accel::area::SramSizing;
use tigris_accel::baseline::Workload;
use tigris_accel::{
    area_report, AcceleratorConfig, AcceleratorSim, BackendPolicy, BaselineModel, SearchKind,
};
use tigris_core::{ApproxConfig, KdTree, SearchStats, TwoStageKdTree};
use tigris_geom::{PointCloud, RigidTransform, Vec3};
use tigris_pipeline::dse::{evaluate_design_points, pareto_frontier, DsePoint};
use tigris_pipeline::{DesignPoint, Injection, RegistrationConfig, Stage};

use crate::workload::{frame_pair, height_for_leaf_size, short_sequence};

// ---------------------------------------------------------------------------
// Fig. 3: DSE accuracy/time tradeoff + Pareto frontier
// ---------------------------------------------------------------------------

/// Fig. 3a/3b: evaluates DP1–DP8 on a synthetic sequence; returns the DSE
/// points and the indices of the Pareto frontier (translational axis).
pub fn fig3(frames: usize, seed: u64) -> (Vec<DsePoint>, Vec<usize>) {
    let seq = short_sequence(frames, seed);
    let gts: Vec<RigidTransform> =
        (0..seq.len() - 1).map(|i| seq.ground_truth_relative(i)).collect();
    let points = evaluate_design_points(seq.frames(), &gts);

    let tradeoff: Vec<(f64, f64)> =
        points.iter().map(|p| (p.translational_percent, p.time_per_pair.as_secs_f64())).collect();
    let pareto = pareto_frontier(&tradeoff);

    println!("== Fig. 3: accuracy vs. time (DP1-DP8) ==");
    println!(
        "{:<6} {:>11} {:>13} {:>11} {:>7}",
        "DP", "t-err (%)", "r-err (°/m)", "time (ms)", "Pareto"
    );
    for (i, p) in points.iter().enumerate() {
        println!(
            "{:<6} {:>11.2} {:>13.4} {:>11.1} {:>7}",
            p.label,
            p.translational_percent,
            p.rotational_deg_per_m,
            p.time_per_pair.as_secs_f64() * 1e3,
            if pareto.contains(&i) { "*" } else { "" }
        );
    }
    (points, pareto)
}

// ---------------------------------------------------------------------------
// Fig. 4: stage and kernel time distributions
// ---------------------------------------------------------------------------

/// Fig. 4a/4b rows for one design point.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Design-point label.
    pub label: String,
    /// Fraction of time per stage, in [`Stage::ALL`] order.
    pub stage_fractions: [f64; 7],
    /// Fraction of time in KD-tree search.
    pub kd_search_fraction: f64,
    /// Fraction of time in KD-tree construction.
    pub kd_build_fraction: f64,
}

/// Fig. 4a/4b: per-stage and per-kernel time distribution across DP1–DP8.
pub fn fig4(frames: usize, seed: u64) -> Vec<Fig4Row> {
    let points = fig3(frames, seed).0;
    println!("\n== Fig. 4a: stage time distribution ==");
    print!("{:<6}", "DP");
    for s in Stage::ALL {
        print!(" {:>8.8}", s.name());
    }
    println!();
    let mut rows = Vec::new();
    for p in &points {
        let mut fr = [0.0; 7];
        print!("{:<6}", p.label);
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            fr[i] = p.profile.fraction(s);
            print!(" {:>7.1}%", fr[i] * 100.0);
        }
        println!();
        rows.push(Fig4Row {
            label: p.label.clone(),
            stage_fractions: fr,
            kd_search_fraction: p.profile.kd_search_fraction(),
            kd_build_fraction: p.profile.kd_build_fraction(),
        });
    }
    println!("\n== Fig. 4b: KD-tree search vs. build vs. other ==");
    println!("{:<6} {:>10} {:>10} {:>10}", "DP", "search", "build", "other");
    for r in &rows {
        println!(
            "{:<6} {:>9.1}% {:>9.1}% {:>9.1}%",
            r.label,
            r.kd_search_fraction * 100.0,
            r.kd_build_fraction * 100.0,
            (1.0 - r.kd_search_fraction - r.kd_build_fraction) * 100.0
        );
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 6: two-stage redundancy vs. leaf-set size
// ---------------------------------------------------------------------------

/// One leaf-set-size sample of Fig. 6.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Mean leaf-set size.
    pub leaf_size: usize,
    /// Top-tree height used.
    pub top_height: usize,
    /// Redundancy ratio vs. the classic tree, NN search.
    pub nn_redundancy: f64,
    /// Redundancy ratio vs. the classic tree, radius search.
    pub radius_redundancy: f64,
    /// Absolute nodes visited, NN.
    pub nn_nodes: u64,
    /// Absolute nodes visited, radius.
    pub radius_nodes: u64,
}

/// Fig. 6a/6b: redundancy and total node visits as the leaf-set size grows
/// 1 → 32 (the paper's x-axis).
pub fn fig6(seed: u64) -> Vec<Fig6Row> {
    let (points, all_queries) = crate::workload::dense_frame_pair(seed);
    let queries: Vec<Vec3> = all_queries.into_iter().step_by(16).collect();
    let radius = 0.6;

    let classic = KdTree::build(&points);
    let mut base_nn = SearchStats::new();
    let mut base_radius = SearchStats::new();
    for &q in &queries {
        classic.nn_with_stats(q, &mut base_nn);
        classic.radius_with_stats(q, radius, &mut base_radius);
    }

    println!(
        "== Fig. 6: two-stage KD-tree redundancy (n = {}, {} queries) ==",
        points.len(),
        queries.len()
    );
    println!(
        "{:>9} {:>7} {:>12} {:>12} {:>14} {:>14}",
        "leaf-set", "height", "NN redund.", "rad redund.", "NN nodes", "rad nodes"
    );
    let mut rows = Vec::new();
    for leaf_size in [1usize, 2, 4, 8, 16, 32] {
        let h = height_for_leaf_size(points.len(), leaf_size);
        let tree = TwoStageKdTree::build(&points, h);
        let mut nn = SearchStats::new();
        let mut rad = SearchStats::new();
        for &q in &queries {
            // The decoupled traversal is what exposes query-level
            // parallelism — and what the paper's redundancy numbers count.
            tree.nn_decoupled_with_stats(q, &mut nn);
            tree.radius_with_stats(q, radius, &mut rad);
        }
        let row = Fig6Row {
            leaf_size,
            top_height: h,
            nn_redundancy: nn.redundancy_vs(&base_nn),
            radius_redundancy: rad.redundancy_vs(&base_radius),
            nn_nodes: nn.total_nodes_visited(),
            radius_nodes: rad.total_nodes_visited(),
        };
        println!(
            "{:>9} {:>7} {:>11.1}x {:>11.1}x {:>14} {:>14}",
            row.leaf_size,
            row.top_height,
            row.nn_redundancy,
            row.radius_redundancy,
            row.nn_nodes,
            row.radius_nodes
        );
        rows.push(row);
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 7: error-injection sensitivity
// ---------------------------------------------------------------------------

/// One injection sample of Fig. 7.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Which curve ("RPCE (dense)", "KPCE (sparse)" or "NE (dense)").
    pub curve: &'static str,
    /// The injection parameter (k for NN curves, r1 in meters for NE).
    pub parameter: f64,
    /// Resulting translational error, percent.
    pub translational_percent: f64,
}

/// Fig. 7a/7b: end-to-end registration error as errors are injected into
/// the RPCE and KPCE NN searches (k-th neighbor) and the NE radius search
/// (`<r1, r2>` shell).
pub fn fig7(seed: u64) -> Vec<Fig7Row> {
    let (source, target, gt) = frame_pair(seed);
    let source = PointCloud::from_points(source);
    let target = PointCloud::from_points(target);
    let base_cfg = RegistrationConfig::default();

    // Returns (final error %, initial-estimate error %).
    let eval = |cfg: &RegistrationConfig| -> (f64, f64) {
        match tigris_pipeline::register(&source, &target, cfg) {
            Ok(result) => {
                let dist = gt.translation_norm().max(0.01);
                let residual = gt.inverse() * result.transform;
                let init_residual = gt.inverse() * result.initial_transform;
                (
                    residual.translation_norm() / dist * 100.0,
                    init_residual.translation_norm() / dist * 100.0,
                )
            }
            Err(_) => (f64::NAN, f64::NAN),
        }
    };

    let mut rows = Vec::new();
    println!("== Fig. 7a: k-th-NN injection (RPCE dense vs. KPCE sparse) ==");
    println!(
        "{:>3} {:>16} {:>16}   (KPCE column = initial-estimate error: our ICP\n{:>41}",
        "k",
        "RPCE t-err (%)",
        "KPCE t-err (%)",
        "often rescues a bad init that the paper's cannot)"
    );
    for k in [1usize, 2, 3, 5, 7, 9] {
        let mut rpce_cfg = base_cfg.clone();
        rpce_cfg.inject_rpce = (k > 1).then_some(Injection::NnKth(k));
        let (rpce_err, _) = eval(&rpce_cfg);
        let mut kpce_cfg = base_cfg.clone();
        kpce_cfg.inject_kpce_kth = (k > 1).then_some(k);
        // The sparse stage's damage lands on the initial estimate; disable
        // the motion-prior gate so it is visible rather than clamped.
        kpce_cfg.max_initial_rotation = f64::INFINITY;
        kpce_cfg.max_initial_translation = f64::INFINITY;
        let (_, kpce_err) = eval(&kpce_cfg);
        println!("{:>3} {:>16.2} {:>16.2}", k, rpce_err, kpce_err);
        rows.push(Fig7Row {
            curve: "RPCE (dense)",
            parameter: k as f64,
            translational_percent: rpce_err,
        });
        rows.push(Fig7Row {
            curve: "KPCE (sparse)",
            parameter: k as f64,
            translational_percent: kpce_err,
        });
    }

    println!(
        "\n== Fig. 7b: <r1, r2> shell injection into NE (r = {:.2} m) ==",
        base_cfg.normal_radius
    );
    println!("{:>10} {:>16}", "r1 (m)", "NE t-err (%)");
    // Outer radius fixed at 1.25 r, inner swept upward (paper sweeps r1
    // with r2 above r).
    for r1_frac in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let mut cfg = base_cfg.clone();
        cfg.inject_ne = Some(Injection::RadiusShell { inner_frac: r1_frac, outer_frac: 1.25 });
        let (err, _) = eval(&cfg);
        println!("{:>10.2} {:>16.2}", r1_frac * base_cfg.normal_radius, err);
        rows.push(Fig7Row {
            curve: "NE (dense)",
            parameter: r1_frac * base_cfg.normal_radius,
            translational_percent: err,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Sec. 6.2: area analysis
// ---------------------------------------------------------------------------

/// Sec. 6.2 area table. Returns `(sram_mm2, logic_mm2)`.
pub fn area() -> (f64, f64) {
    let report = area_report(&AcceleratorConfig::paper(), &SramSizing::default());
    println!("== Sec. 6.2: area (64 RU / 32 SU / 32 PE per SU, 16 nm) ==");
    println!("SRAM:  {:>6.2} mm²  ({:.1}%)", report.sram_mm2, report.sram_fraction() * 100.0);
    println!(
        "Logic: {:>6.2} mm²  ({:.1}%)",
        report.logic_mm2,
        (1.0 - report.sram_fraction()) * 100.0
    );
    println!(
        "Total: {:>6.2} mm²   (paper: 8.38 SRAM / 7.19 logic, 53.8%/46.2%)",
        report.total_mm2()
    );
    (report.sram_mm2, report.logic_mm2)
}

// ---------------------------------------------------------------------------
// Fig. 11 workload plumbing
// ---------------------------------------------------------------------------

/// The KD-search workload of one design point: the NE radius queries and
/// RPCE NN queries of a frame pair.
pub struct DpSearchWorkload {
    /// Target (searched) points.
    pub points: Vec<Vec3>,
    /// NN queries (RPCE, one per source point per ICP iteration modeled).
    pub nn_queries: Vec<Vec3>,
    /// Radius queries (NE, one per target point).
    pub radius_queries: Vec<Vec3>,
    /// NE search radius for this design point.
    pub radius: f64,
}

/// Builds the per-DP search workload (DP4 uses a 0.30 m NE radius, DP7
/// 0.75 m — Sec. 6.3).
///
/// The NN stream models RPCE across several ICP iterations: the same
/// source points re-queried under a slowly converging transform. This
/// repetition is what the leader/follower approximation exploits (leader
/// buffers persist across iterations within a frame).
pub fn dp_workload(dp: DesignPoint, seed: u64) -> DpSearchWorkload {
    let (source, target, _) = frame_pair(seed);
    let cfg = dp.config();
    // Downsample as the pipeline would.
    let tgt = PointCloud::from_points(target).voxel_downsample(cfg.voxel_size.max(0.05));
    let src = PointCloud::from_points(source).voxel_downsample(cfg.voxel_size.max(0.05));
    let icp_iterations = 4usize;
    let mut nn_queries = Vec::with_capacity(src.len() * icp_iterations);
    for it in 0..icp_iterations {
        // Successive iterations move the source by a shrinking correction.
        let shift = Vec3::new(0.08 / (it + 1) as f64, -0.03 / (it + 1) as f64, 0.0);
        let moved = src.transformed(&RigidTransform::from_translation(shift * it as f64));
        nn_queries.extend_from_slice(moved.points());
    }
    DpSearchWorkload {
        points: tgt.points().to_vec(),
        nn_queries,
        radius_queries: tgt.points().to_vec(),
        radius: cfg.normal_radius,
    }
}

/// One system's measurement in the Fig. 11 comparison.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Row {
    /// System label ("Base-KD", "Base-2SKD", "Acc-KD", "Acc-2SKD").
    pub system: &'static str,
    /// KD-search time, seconds.
    pub seconds: f64,
    /// Speedup over Base-KD.
    pub speedup: f64,
    /// Power, watts.
    pub power_watts: f64,
    /// Power reduction vs. Base-KD.
    pub power_reduction: f64,
}

/// Fig. 11: KD-search speedup and power for the four systems on one design
/// point's workload.
pub fn fig11_for(dp: DesignPoint, seed: u64) -> Vec<Fig11Row> {
    let w = dp_workload(dp, seed);
    let baseline = BaselineModel::default();

    // --- GPU baselines: characterize software search work.
    let classic = KdTree::build(&w.points);
    let mut classic_stats = SearchStats::new();
    for &q in &w.nn_queries {
        classic.nn_with_stats(q, &mut classic_stats);
    }
    for &q in &w.radius_queries {
        classic.radius_with_stats(q, w.radius, &mut classic_stats);
    }
    let base_kd = baseline.gpu(&Workload::from_stats(&classic_stats));

    let h = height_for_leaf_size(w.points.len(), 128);
    let two_stage = TwoStageKdTree::build(&w.points, h);
    let mut ts_stats = SearchStats::new();
    for &q in &w.nn_queries {
        two_stage.nn_with_stats(q, &mut ts_stats);
    }
    for &q in &w.radius_queries {
        two_stage.radius_with_stats(q, w.radius, &mut ts_stats);
    }
    let base_2skd = baseline.gpu(&Workload::from_stats(&ts_stats));

    // --- Accelerator on the original KD-tree: a top-tree deep enough that
    // leaf sets are ~1 (Acc-KD), vs. the co-designed height (Acc-2SKD).
    let deep_h = height_for_leaf_size(w.points.len(), 1);
    let deep_tree = TwoStageKdTree::build(&w.points, deep_h);
    let acc = |tree: &TwoStageKdTree| -> (f64, f64) {
        let mut sim = AcceleratorSim::new(tree, AcceleratorConfig::paper());
        let nn = sim.run(&w.nn_queries, SearchKind::Nn);
        sim.reset_leaders();
        let rad = sim.run(&w.radius_queries, SearchKind::Radius(w.radius));
        let secs = nn.seconds + rad.seconds;
        let energy = nn.energy.total_joules() + rad.energy.total_joules();
        (secs, energy / secs)
    };
    let (acc_kd_s, acc_kd_w) = acc(&deep_tree);
    let (acc_2skd_s, acc_2skd_w) = acc(&two_stage);

    let cpu = baseline.cpu(&Workload::from_stats(&classic_stats));
    let rows = vec![
        Fig11Row {
            system: "CPU",
            seconds: cpu.seconds,
            speedup: base_kd.seconds / cpu.seconds,
            power_watts: cpu.power_watts,
            power_reduction: base_kd.power_watts / cpu.power_watts,
        },
        Fig11Row {
            system: "Base-KD",
            seconds: base_kd.seconds,
            speedup: 1.0,
            power_watts: base_kd.power_watts,
            power_reduction: 1.0,
        },
        Fig11Row {
            system: "Base-2SKD",
            seconds: base_2skd.seconds,
            speedup: base_kd.seconds / base_2skd.seconds,
            power_watts: base_2skd.power_watts,
            power_reduction: base_kd.power_watts / base_2skd.power_watts,
        },
        Fig11Row {
            system: "Acc-KD",
            seconds: acc_kd_s,
            speedup: base_kd.seconds / acc_kd_s,
            power_watts: acc_kd_w,
            power_reduction: base_kd.power_watts / acc_kd_w,
        },
        Fig11Row {
            system: "Acc-2SKD",
            seconds: acc_2skd_s,
            speedup: base_kd.seconds / acc_2skd_s,
            power_watts: acc_2skd_w,
            power_reduction: base_kd.power_watts / acc_2skd_w,
        },
    ];

    println!(
        "== Fig. 11 ({}, {}): KD-search speedup & power ==",
        dp.name(),
        if dp == DesignPoint::Dp7 { "accuracy-oriented" } else { "performance-oriented" }
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>12}",
        "system", "time (ms)", "speedup", "power (W)", "power red."
    );
    for r in &rows {
        println!(
            "{:<10} {:>12.3} {:>9.1}x {:>10.1} {:>11.1}x",
            r.system,
            r.seconds * 1e3,
            r.speedup,
            r.power_watts,
            r.power_reduction
        );
    }
    rows
}

/// Fig. 11a + 11b: both design points.
pub fn fig11(seed: u64) -> (Vec<Fig11Row>, Vec<Fig11Row>) {
    let dp7 = fig11_for(DesignPoint::Dp7, seed);
    println!();
    let dp4 = fig11_for(DesignPoint::Dp4, seed);
    (dp7, dp4)
}

// ---------------------------------------------------------------------------
// Sec. 6.3: approximate search
// ---------------------------------------------------------------------------

/// Approximate-search results (Sec. 6.3 text).
#[derive(Debug, Clone, Copy)]
pub struct ApproxRow {
    /// Speedup of approximate over exact Acc-2SKD.
    pub speedup: f64,
    /// Fractional reduction in nodes visited.
    pub node_visit_reduction: f64,
    /// Follower rate (fraction of queries on the approximate path).
    pub follower_rate: f64,
    /// Mean absolute NN-distance inflation vs. exact, meters.
    pub mean_distance_inflation: f64,
}

/// Sec. 6.3: the approximate KD-tree search on the accelerator —
/// performance gain and accuracy cost vs. exact Acc-2SKD.
pub fn approx(seed: u64) -> ApproxRow {
    let w = dp_workload(DesignPoint::Dp7, seed);
    let h = height_for_leaf_size(w.points.len(), 128);
    let tree = TwoStageKdTree::build(&w.points, h);

    let mut exact_sim = AcceleratorSim::new(&tree, AcceleratorConfig::paper());
    let exact_nn = exact_sim.run(&w.nn_queries, SearchKind::Nn);
    exact_sim.reset_leaders();
    let exact_rad = exact_sim.run(&w.radius_queries, SearchKind::Radius(w.radius));

    let approx_cfg =
        AcceleratorConfig { approx: Some(ApproxConfig::default()), ..AcceleratorConfig::paper() };
    let mut approx_sim = AcceleratorSim::new(&tree, approx_cfg);
    let approx_nn = approx_sim.run(&w.nn_queries, SearchKind::Nn);
    approx_sim.reset_leaders();
    let approx_rad = approx_sim.run(&w.radius_queries, SearchKind::Radius(w.radius));

    let exact_s = exact_nn.seconds + exact_rad.seconds;
    let approx_s = approx_nn.seconds + approx_rad.seconds;
    let exact_visits = exact_nn.leaf_points_scanned
        + exact_rad.leaf_points_scanned
        + exact_nn.nodes_expanded
        + exact_rad.nodes_expanded;
    let approx_visits = approx_nn.leaf_points_scanned
        + approx_rad.leaf_points_scanned
        + approx_nn.nodes_expanded
        + approx_rad.nodes_expanded;

    let mut inflation = 0.0;
    let mut n = 0usize;
    for (e, a) in exact_nn.nn_results.iter().zip(&approx_nn.nn_results) {
        if let (Some(e), Some(a)) = (e, a) {
            inflation += (a.distance() - e.distance()).max(0.0);
            n += 1;
        }
    }
    let row = ApproxRow {
        speedup: exact_s / approx_s,
        node_visit_reduction: 1.0 - approx_visits as f64 / exact_visits as f64,
        follower_rate: (approx_nn.follower_hits + approx_rad.follower_hits) as f64
            / (w.nn_queries.len() + w.radius_queries.len()) as f64,
        mean_distance_inflation: inflation / n.max(1) as f64,
    };

    println!("== Sec. 6.3: approximate KD-tree search (thd = 1.2 m NN / 40% radius) ==");
    println!("speedup over exact Acc-2SKD:   {:.1}x   (paper: ~11.1x)", row.speedup);
    println!(
        "node-visit reduction:          {:.1}%  (paper: 72.8%)",
        row.node_visit_reduction * 100.0
    );
    println!("follower rate:                 {:.1}%", row.follower_rate * 100.0);
    println!("mean NN distance inflation:    {:.4} m", row.mean_distance_inflation);
    row
}

// ---------------------------------------------------------------------------
// Fig. 12: optimization ablation
// ---------------------------------------------------------------------------

/// One ablation variant of Fig. 12.
#[derive(Debug, Clone, Copy)]
pub struct Fig12Row {
    /// Variant label.
    pub variant: &'static str,
    /// Speedup over Base-KD (GPU).
    pub speedup: f64,
    /// Power reduction vs. Base-KD.
    pub power_reduction: f64,
}

/// Fig. 12: No-Opt / +Bypass / +Forward (MQSN) / MQMN, as speedup and
/// power reduction over the GPU Base-KD.
pub fn fig12(seed: u64) -> Vec<Fig12Row> {
    let w = dp_workload(DesignPoint::Dp7, seed);
    let h = height_for_leaf_size(w.points.len(), 128);
    let tree = TwoStageKdTree::build(&w.points, h);

    // GPU reference.
    let classic = KdTree::build(&w.points);
    let mut stats = SearchStats::new();
    for &q in &w.nn_queries {
        classic.nn_with_stats(q, &mut stats);
    }
    for &q in &w.radius_queries {
        classic.radius_with_stats(q, w.radius, &mut stats);
    }
    let base = BaselineModel::default().gpu(&Workload::from_stats(&stats));

    let variants: [(&'static str, AcceleratorConfig); 4] = [
        (
            "No-Opt",
            AcceleratorConfig { forwarding: false, bypassing: false, ..AcceleratorConfig::paper() },
        ),
        (
            "Bypass",
            AcceleratorConfig { forwarding: false, bypassing: true, ..AcceleratorConfig::paper() },
        ),
        ("+Forward", AcceleratorConfig::paper()),
        ("MQMN", AcceleratorConfig { backend: BackendPolicy::Mqmn, ..AcceleratorConfig::paper() }),
    ];

    println!("== Fig. 12: architectural optimization ablation (DP7 workload) ==");
    println!("{:<10} {:>10} {:>12}", "variant", "speedup", "power red.");
    let mut rows = Vec::new();
    for (name, cfg) in variants {
        let mut sim = AcceleratorSim::new(&tree, cfg);
        let nn = sim.run(&w.nn_queries, SearchKind::Nn);
        sim.reset_leaders();
        let rad = sim.run(&w.radius_queries, SearchKind::Radius(w.radius));
        let secs = nn.seconds + rad.seconds;
        let power = (nn.energy.total_joules() + rad.energy.total_joules()) / secs;
        let row = Fig12Row {
            variant: name,
            speedup: base.seconds / secs,
            power_reduction: base.power_watts / power,
        };
        println!("{:<10} {:>9.1}x {:>11.1}x", row.variant, row.speedup, row.power_reduction);
        rows.push(row);
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 13: memory traffic distribution
// ---------------------------------------------------------------------------

/// Traffic distribution of one configuration (fractions summing to 1).
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Configuration label ("ACC-2SKD" / "ACC-KD").
    pub label: &'static str,
    /// (buffer name, fraction) pairs.
    pub fractions: Vec<(&'static str, f64)>,
}

/// Fig. 13: memory traffic distribution for Acc-2SKD vs. Acc-KD.
pub fn fig13(seed: u64) -> Vec<Fig13Row> {
    let w = dp_workload(DesignPoint::Dp7, seed);
    let mut rows = Vec::new();
    println!("== Fig. 13: memory traffic distribution ==");
    for (label, leaf) in [("ACC-2SKD", 128usize), ("ACC-KD", 1usize)] {
        let h = height_for_leaf_size(w.points.len(), leaf);
        let tree = TwoStageKdTree::build(&w.points, h);
        let mut sim = AcceleratorSim::new(&tree, AcceleratorConfig::paper());
        let nn = sim.run(&w.nn_queries, SearchKind::Nn);
        sim.reset_leaders();
        let rad = sim.run(&w.radius_queries, SearchKind::Radius(w.radius));
        let traffic = nn.traffic + rad.traffic;
        let total = traffic.total_sram().max(1) as f64;
        let fractions: Vec<(&'static str, f64)> =
            traffic.rows().iter().map(|&(name, bytes)| (name, bytes as f64 / total)).collect();
        println!("{label}:");
        for (name, f) in &fractions {
            println!("  {:<14} {:>6.1}%", name, f * 100.0);
        }
        rows.push(Fig13Row { label, fractions });
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 14: hardware sensitivity sweep
// ---------------------------------------------------------------------------

/// One hardware configuration sample of Fig. 14.
#[derive(Debug, Clone, Copy)]
pub struct Fig14Row {
    /// RU count.
    pub rus: usize,
    /// SU count.
    pub sus: usize,
    /// PEs per SU.
    pub pes: usize,
    /// KD-search time, milliseconds.
    pub time_ms: f64,
    /// Average power, watts.
    pub power_w: f64,
}

/// Fig. 14a/14b: sweep RU, SU and PE counts over {16, 32, 64, 128}.
pub fn fig14(seed: u64) -> Vec<Fig14Row> {
    let w = dp_workload(DesignPoint::Dp7, seed);
    let h = height_for_leaf_size(w.points.len(), 128);
    let tree = TwoStageKdTree::build(&w.points, h);

    println!("== Fig. 14: sensitivity to RU / SU / PE counts ==");
    println!("{:>5} {:>5} {:>5} {:>12} {:>10}", "RU", "SU", "PE", "time (ms)", "power (W)");
    let mut rows = Vec::new();
    for rus in [16usize, 32, 64, 128] {
        for sus in [16usize, 32, 64, 128] {
            for pes in [16usize, 32, 64, 128] {
                let cfg = AcceleratorConfig {
                    num_rus: rus,
                    num_sus: sus,
                    pes_per_su: pes,
                    ..AcceleratorConfig::paper()
                };
                let mut sim = AcceleratorSim::new(&tree, cfg);
                let nn = sim.run(&w.nn_queries, SearchKind::Nn);
                sim.reset_leaders();
                let rad = sim.run(&w.radius_queries, SearchKind::Radius(w.radius));
                let secs = nn.seconds + rad.seconds;
                let power = (nn.energy.total_joules() + rad.energy.total_joules()) / secs;
                let row = Fig14Row { rus, sus, pes, time_ms: secs * 1e3, power_w: power };
                println!(
                    "{:>5} {:>5} {:>5} {:>12.3} {:>10.1}",
                    row.rus, row.sus, row.pes, row.time_ms, row.power_w
                );
                rows.push(row);
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 15: top-tree height sweep
// ---------------------------------------------------------------------------

/// One height sample of Fig. 15.
#[derive(Debug, Clone, Copy)]
pub struct Fig15Row {
    /// Top-tree height.
    pub height: usize,
    /// KD-search time, milliseconds.
    pub time_ms: f64,
    /// Energy, joules.
    pub energy_j: f64,
}

/// Fig. 15: search time and energy vs. top-tree height.
pub fn fig15(seed: u64) -> Vec<Fig15Row> {
    let w = dp_workload(DesignPoint::Dp7, seed);
    println!("== Fig. 15: top-tree height sweep ==");
    println!("{:>7} {:>12} {:>12}", "height", "time (ms)", "energy (mJ)");
    let mut rows = Vec::new();
    for height in 4..=15usize {
        let tree = TwoStageKdTree::build(&w.points, height);
        let mut sim = AcceleratorSim::new(&tree, AcceleratorConfig::paper());
        let nn = sim.run(&w.nn_queries, SearchKind::Nn);
        sim.reset_leaders();
        let rad = sim.run(&w.radius_queries, SearchKind::Radius(w.radius));
        let row = Fig15Row {
            height,
            time_ms: (nn.seconds + rad.seconds) * 1e3,
            energy_j: nn.energy.total_joules() + rad.energy.total_joules(),
        };
        println!("{:>7} {:>12.3} {:>12.4}", row.height, row.time_ms, row.energy_j * 1e3);
        rows.push(row);
    }
    rows
}

// ---------------------------------------------------------------------------
// End-to-end: the paper's headline numbers
// ---------------------------------------------------------------------------

/// End-to-end registration improvement when the KD search runs on the
/// accelerator (the paper's 41.7% / 13.6% numbers): returns
/// `(dp7_improvement, dp4_improvement)` as fractions.
///
/// Methodology: run a *real* registration with query logging enabled, then
/// replay the exact query stream (every NE radius search, every RPCE NN of
/// every ICP iteration) through the cycle-level accelerator model and the
/// GPU baseline model, and compare end-to-end totals under Amdahl's law.
pub fn end_to_end(seed: u64) -> (f64, f64) {
    use tigris_accel::baseline::Workload;
    use tigris_pipeline::register_with_searchers;
    use tigris_pipeline::Searcher3;

    println!("== End-to-end registration improvement (query-log replay) ==");
    let mut out = [0.0f64; 2];
    let seq = short_sequence(2, seed);
    for (slot, dp) in [DesignPoint::Dp7, DesignPoint::Dp4].into_iter().enumerate() {
        let cfg = dp.config();
        // Registration with logging on both frames' searchers.
        let src_pts = seq.frame(1).voxel_downsample(cfg.voxel_size).points().to_vec();
        let tgt_pts = seq.frame(0).voxel_downsample(cfg.voxel_size).points().to_vec();
        let mut src_searcher = Searcher3::classic(&src_pts);
        let mut tgt_searcher = Searcher3::classic(&tgt_pts);
        src_searcher.enable_query_logging();
        tgt_searcher.enable_query_logging();
        let t0 = std::time::Instant::now();
        let result = register_with_searchers(&mut src_searcher, &mut tgt_searcher, &cfg)
            .expect("registration failed");
        let total = t0.elapsed().as_secs_f64();
        let kd_cpu = result.profile.kd_search_time.as_secs_f64();
        let other = total - kd_cpu;

        // Replay each frame's exact query stream on its own accelerator.
        let h_src = height_for_leaf_size(src_pts.len(), 128);
        let h_tgt = height_for_leaf_size(tgt_pts.len(), 128);
        let src_tree = TwoStageKdTree::build(&src_pts, h_src);
        let tgt_tree = TwoStageKdTree::build(&tgt_pts, h_tgt);
        let src_log = src_searcher.take_query_log().unwrap();
        let tgt_log = tgt_searcher.take_query_log().unwrap();
        let mut src_sim = AcceleratorSim::new(&src_tree, AcceleratorConfig::paper());
        let mut tgt_sim = AcceleratorSim::new(&tgt_tree, AcceleratorConfig::paper());
        let kd_acc = src_sim.replay(&src_log).seconds + tgt_sim.replay(&tgt_log).seconds;

        // GPU baseline on the same measured workload.
        let gpu = BaselineModel::default().gpu(&Workload::from_stats(&result.profile.search_stats));
        let kd_gpu = gpu.seconds;

        let improvement = 1.0 - (other + kd_acc) / (other + kd_gpu);
        println!(
            "{}: other {:.1} ms + kd: cpu {:.1} / gpu {:.2} / accel {:.4} ms ({} queries) \
             -> {:.1}% end-to-end improvement over the CPU+GPU baseline",
            dp.name(),
            other * 1e3,
            kd_cpu * 1e3,
            kd_gpu * 1e3,
            kd_acc * 1e3,
            src_log.len() + tgt_log.len(),
            improvement * 100.0
        );
        out[slot] = improvement;
    }
    println!("(paper: 41.7% on DP7 vs. its GPU baseline, 13.6% on DP4)");
    (out[0], out[1])
}

// ---------------------------------------------------------------------------
// Parametric DSE sweep (the paper's "exhaustive exploration" flavor)
// ---------------------------------------------------------------------------

/// One point of the parametric sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Knob summary label.
    pub label: String,
    /// Translational error, percent.
    pub translational_percent: f64,
    /// Wall-clock per pair, milliseconds.
    pub time_ms: f64,
    /// On the Pareto frontier?
    pub pareto: bool,
}

/// Parametric design-space sweep: normal radius × descriptor radius ×
/// convergence budget, on one frame pair (the paper's Fig. 3 methodology
/// beyond the eight presets). Returns all points with Pareto marks.
pub fn dse_sweep(seed: u64) -> Vec<SweepPoint> {
    use tigris_pipeline::dse::evaluate_config;
    let seq = short_sequence(2, seed);
    let gts = vec![seq.ground_truth_relative(0)];

    let mut configs = Vec::new();
    for &normal_radius in &[0.3, 0.6, 1.0] {
        for &desc_radius in &[0.8, 1.8] {
            for &iters in &[8usize, 30] {
                let label = format!("ne{normal_radius}/d{desc_radius}/i{iters}");
                let cfg = RegistrationConfig {
                    normal_radius,
                    descriptor: tigris_pipeline::DescriptorAlgorithm::Fpfh { radius: desc_radius },
                    convergence: tigris_pipeline::ConvergenceCriteria {
                        max_iterations: iters,
                        ..Default::default()
                    },
                    ..RegistrationConfig::default()
                };
                configs.push((label, cfg));
            }
        }
    }

    let evaluated: Vec<_> = configs
        .iter()
        .map(|(label, cfg)| evaluate_config(label, cfg, seq.frames(), &gts))
        .collect();
    let tradeoff: Vec<(f64, f64)> = evaluated
        .iter()
        .map(|p| (p.translational_percent, p.time_per_pair.as_secs_f64()))
        .collect();
    let pareto = pareto_frontier(&tradeoff);

    println!("== Parametric DSE sweep (normal radius × FPFH radius × ICP budget) ==");
    println!("{:<18} {:>11} {:>11} {:>7}", "knobs", "t-err (%)", "time (ms)", "Pareto");
    let mut rows = Vec::new();
    for (i, p) in evaluated.iter().enumerate() {
        let on_frontier = pareto.contains(&i);
        println!(
            "{:<18} {:>11.2} {:>11.1} {:>7}",
            p.label,
            p.translational_percent,
            p.time_per_pair.as_secs_f64() * 1e3,
            if on_frontier { "*" } else { "" }
        );
        rows.push(SweepPoint {
            label: p.label.clone(),
            translational_percent: p.translational_percent,
            time_ms: p.time_per_pair.as_secs_f64() * 1e3,
            pareto: on_frontier,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Extra ablations (DESIGN.md §5, beyond the paper's own)
// ---------------------------------------------------------------------------

/// One row of an ablation sweep: parameter value → (time ms, metric).
#[derive(Debug, Clone, Copy)]
pub struct AblationRow {
    /// The swept parameter's value.
    pub value: f64,
    /// KD-search time, milliseconds.
    pub time_ms: f64,
    /// Sweep-specific secondary metric (hit rate, follower rate, …).
    pub metric: f64,
}

fn run_dp7_sim(
    cfg: AcceleratorConfig,
    w: &DpSearchWorkload,
    tree: &TwoStageKdTree,
) -> (f64, crate::figures::SimPair) {
    let mut sim = AcceleratorSim::new(tree, cfg);
    let nn = sim.run(&w.nn_queries, SearchKind::Nn);
    sim.reset_leaders();
    let rad = sim.run(&w.radius_queries, SearchKind::Radius(w.radius));
    ((nn.seconds + rad.seconds) * 1e3, SimPair { nn, rad })
}

/// The pair of reports an ablation run produces.
pub struct SimPair {
    /// NN-batch report.
    pub nn: tigris_accel::SimReport,
    /// Radius-batch report.
    pub rad: tigris_accel::SimReport,
}

/// Ablation: leader-buffer capacity sweep (paper caps at 16). Metric =
/// follower rate.
pub fn ablation_leader_cap(seed: u64) -> Vec<AblationRow> {
    let w = dp_workload(DesignPoint::Dp7, seed);
    let h = height_for_leaf_size(w.points.len(), 128);
    let tree = TwoStageKdTree::build(&w.points, h);
    println!("== Ablation: leader-buffer capacity (approximate search) ==");
    println!("{:>5} {:>12} {:>14}", "cap", "time (ms)", "follower rate");
    let mut rows = Vec::new();
    for cap in [1usize, 4, 8, 16, 32, 64] {
        let cfg = AcceleratorConfig {
            approx: Some(ApproxConfig { leader_cap: cap, ..Default::default() }),
            ..AcceleratorConfig::paper()
        };
        let (time_ms, pair) = run_dp7_sim(cfg, &w, &tree);
        let followers = pair.nn.follower_hits + pair.rad.follower_hits;
        let rate = followers as f64 / (w.nn_queries.len() + w.radius_queries.len()) as f64;
        println!("{:>5} {:>12.3} {:>13.1}%", cap, time_ms, rate * 100.0);
        rows.push(AblationRow { value: cap as f64, time_ms, metric: rate });
    }
    rows
}

/// Ablation: node-cache capacity sweep (paper: 128 KB = 8192 points).
/// Metric = cache hit fraction of node-set loads.
pub fn ablation_node_cache(seed: u64) -> Vec<AblationRow> {
    let w = dp_workload(DesignPoint::Dp7, seed);
    let h = height_for_leaf_size(w.points.len(), 128);
    let tree = TwoStageKdTree::build(&w.points, h);
    println!("== Ablation: node-cache capacity ==");
    println!("{:>9} {:>12} {:>12} {:>16}", "points", "time (ms)", "hit rate", "PointsBuf bytes");
    let mut rows = Vec::new();
    for points in [0usize, 1024, 4096, 8192, 32768, 131072] {
        let cfg = AcceleratorConfig { node_cache_points: points, ..AcceleratorConfig::paper() };
        let (time_ms, pair) = run_dp7_sim(cfg, &w, &tree);
        let traffic = pair.nn.traffic + pair.rad.traffic;
        let node_bytes = traffic.node_cache + traffic.points_buffer;
        let hit_rate =
            if node_bytes == 0 { 0.0 } else { traffic.node_cache as f64 / node_bytes as f64 };
        println!(
            "{:>9} {:>12.3} {:>11.1}% {:>16}",
            points,
            time_ms,
            hit_rate * 100.0,
            traffic.points_buffer
        );
        rows.push(AblationRow { value: points as f64, time_ms, metric: hit_rate });
    }
    rows
}

/// Ablation: MQSN issue-window sweep (paper: associative search in groups
/// of 32 over a 128-entry BQB). Metric = PE utilization.
pub fn ablation_issue_window(seed: u64) -> Vec<AblationRow> {
    let w = dp_workload(DesignPoint::Dp7, seed);
    let h = height_for_leaf_size(w.points.len(), 128);
    let tree = TwoStageKdTree::build(&w.points, h);
    println!("== Ablation: MQSN issue-window size ==");
    println!("{:>7} {:>12} {:>14}", "window", "time (ms)", "PE util.");
    let mut rows = Vec::new();
    for window in [1usize, 8, 32, 128, 512] {
        let cfg = AcceleratorConfig { issue_window: window, ..AcceleratorConfig::paper() };
        let (time_ms, pair) = run_dp7_sim(cfg, &w, &tree);
        let util = (pair.nn.pe_utilization + pair.rad.pe_utilization) / 2.0;
        println!("{:>7} {:>12.3} {:>13.1}%", window, time_ms, util * 100.0);
        rows.push(AblationRow { value: window as f64, time_ms, metric: util });
    }
    rows
}

/// Ablation: leaf-to-SU mapping policy (paper claims insensitivity).
/// Returns `(low_order_ms, hash_ms)`.
pub fn ablation_mapping(seed: u64) -> (f64, f64) {
    let w = dp_workload(DesignPoint::Dp7, seed);
    let h = height_for_leaf_size(w.points.len(), 128);
    let tree = TwoStageKdTree::build(&w.points, h);
    println!("== Ablation: leaf-to-SU mapping policy ==");
    let (low, _) = run_dp7_sim(
        AcceleratorConfig {
            mapping: tigris_accel::MappingPolicy::LowOrderBits,
            ..AcceleratorConfig::paper()
        },
        &w,
        &tree,
    );
    let (hash, _) = run_dp7_sim(
        AcceleratorConfig {
            mapping: tigris_accel::MappingPolicy::Hash,
            ..AcceleratorConfig::paper()
        },
        &w,
        &tree,
    );
    println!("low-order bits: {low:.3} ms");
    println!("hash:           {hash:.3} ms");
    println!(
        "difference: {:.1}% (paper: \"relatively insensitive\")",
        ((hash - low) / low * 100.0).abs()
    );
    (low, hash)
}

// ---------------------------------------------------------------------------
// Multi-sequence odometry table (the paper's 11-sequence methodology)
// ---------------------------------------------------------------------------

/// One sequence's odometry errors.
#[derive(Debug, Clone)]
pub struct SequenceRow {
    /// Sequence id (seed).
    pub sequence: u64,
    /// Environment label ("urban" / "highway").
    pub environment: &'static str,
    /// Mean translational error, percent.
    pub translational_percent: f64,
    /// Mean rotational error, °/m.
    pub rotational_deg_per_m: f64,
    /// Frame pairs registered.
    pub pairs: usize,
}

/// Runs odometry over `n_sequences` independent synthetic sequences (the
/// paper evaluates the 11 ground-truthed KITTI sequences and reports
/// averages across all frames), alternating urban and highway
/// environments, and prints the per-sequence error table.
pub fn sequence_table(n_sequences: u64, frames: usize, seed: u64) -> Vec<SequenceRow> {
    use tigris_data::{sequence_error, SceneConfig, Sequence, SequenceConfig};
    use tigris_pipeline::Odometer;

    println!("== Odometry over {n_sequences} synthetic sequences ({frames} frames each) ==");
    println!(
        "{:>9} {:>9} {:>12} {:>14} {:>7}",
        "sequence", "env", "t-err (%)", "r-err (°/m)", "pairs"
    );
    let mut rows = Vec::new();
    for s in 0..n_sequences {
        let highway = s % 2 == 1;
        let mut cfg = SequenceConfig::medium();
        cfg.frames = frames;
        if highway {
            cfg.scene = SceneConfig::highway();
        }
        let seq = Sequence::generate(&cfg, seed.wrapping_add(s * 1000));
        let environment = if highway { "highway" } else { "urban" };
        let mut odo = Odometer::new(RegistrationConfig::default());
        let mut estimates = Vec::new();
        let mut gts = Vec::new();
        for i in 0..seq.len() {
            if let Ok(Some(step)) = odo.push(seq.frame(i)) {
                estimates.push(step.relative);
                gts.push(seq.ground_truth_relative(i - 1));
            }
        }
        let err = sequence_error(&estimates, &gts);
        println!(
            "{:>9} {:>9} {:>12.2} {:>14.4} {:>7}",
            s, environment, err.translational_percent, err.rotational_deg_per_m, err.pairs
        );
        rows.push(SequenceRow {
            sequence: s,
            environment,
            translational_percent: err.translational_percent,
            rotational_deg_per_m: err.rotational_deg_per_m,
            pairs: err.pairs,
        });
    }
    let mean_t =
        rows.iter().map(|r| r.translational_percent).sum::<f64>() / rows.len().max(1) as f64;
    let mean_r =
        rows.iter().map(|r| r.rotational_deg_per_m).sum::<f64>() / rows.len().max(1) as f64;
    println!("{:>9} {:>12.2} {:>14.4}", "mean", mean_t, mean_r);
    rows
}

// ---------------------------------------------------------------------------
// SVG rendering
// ---------------------------------------------------------------------------

/// Renders the headline figures as SVG files into `dir` (created if
/// missing). Returns the written paths.
///
/// # Panics
///
/// Panics on I/O failure (this is a CLI-facing convenience).
pub fn render_svgs(dir: &std::path::Path, seed: u64) -> Vec<std::path::PathBuf> {
    use crate::plot::{Chart, ChartKind, Series};
    std::fs::create_dir_all(dir).expect("create svg dir");
    let mut written = Vec::new();
    let mut save = |name: &str, chart: Chart| {
        let path = dir.join(name);
        chart.save(&path).expect("write svg");
        written.push(path);
    };

    // Fig. 6: redundancy vs leaf-set size.
    let f6 = fig6(seed);
    save(
        "fig6_redundancy.svg",
        Chart::new(ChartKind::Line, "Fig. 6a: two-stage redundancy vs leaf-set size")
            .axes("leaf-set size", "redundancy (x)")
            .series(Series::new(
                "NN search",
                f6.iter().map(|r| (r.leaf_size as f64, r.nn_redundancy)).collect(),
            ))
            .series(Series::new(
                "radius search",
                f6.iter().map(|r| (r.leaf_size as f64, r.radius_redundancy)).collect(),
            )),
    );
    save(
        "fig6b_nodes.svg",
        Chart::new(ChartKind::Line, "Fig. 6b: total nodes visited")
            .axes("leaf-set size", "nodes visited")
            .series(Series::new(
                "NN search",
                f6.iter().map(|r| (r.leaf_size as f64, r.nn_nodes as f64)).collect(),
            ))
            .series(Series::new(
                "radius search",
                f6.iter().map(|r| (r.leaf_size as f64, r.radius_nodes as f64)).collect(),
            )),
    );

    // Fig. 11: speedups (log scale).
    let (dp7, dp4) = fig11(seed);
    let bars = |rows: &[Fig11Row]| {
        rows.iter()
            .filter(|r| r.system != "CPU")
            .enumerate()
            .map(|(i, r)| (i as f64, r.speedup))
            .collect::<Vec<_>>()
    };
    save(
        "fig11_speedup.svg",
        Chart::new(ChartKind::Bar, "Fig. 11: KD-search speedup over Base-KD (log)")
            .axes("Base-KD | Base-2SKD | Acc-KD | Acc-2SKD", "speedup (x)")
            .log_y()
            .series(Series::new("DP7 (accuracy)", bars(&dp7)))
            .series(Series::new("DP4 (performance)", bars(&dp4))),
    );

    // Fig. 14: time vs power cloud.
    let f14 = fig14(seed);
    save(
        "fig14_sensitivity.svg",
        Chart::new(ChartKind::Scatter, "Fig. 14a: performance vs power (RU/SU/PE sweep)")
            .axes("search time (ms)", "power (W)")
            .series(Series::new(
                "configurations",
                f14.iter().map(|r| (r.time_ms, r.power_w)).collect(),
            ))
            .series(Series::new(
                "paper design point (64/32/32)",
                f14.iter()
                    .filter(|r| r.rus == 64 && r.sus == 32 && r.pes == 32)
                    .map(|r| (r.time_ms, r.power_w))
                    .collect(),
            )),
    );

    // Fig. 15: height sweep.
    let f15 = fig15(seed);
    save(
        "fig15_height.svg",
        Chart::new(ChartKind::Line, "Fig. 15: top-tree height sweep")
            .axes("top-tree height", "search time (ms) / energy (mJ)")
            .series(Series::new(
                "time (ms)",
                f15.iter().map(|r| (r.height as f64, r.time_ms)).collect(),
            ))
            .series(Series::new(
                "energy (mJ)",
                f15.iter().map(|r| (r.height as f64, r.energy_j * 1e3)).collect(),
            )),
    );

    // Fig. 12 ablation bars.
    let f12 = fig12(seed);
    save(
        "fig12_ablation.svg",
        Chart::new(ChartKind::Bar, "Fig. 12: No-Opt | Bypass | +Forward | MQMN")
            .axes("variant", "speedup over Base-KD (x)")
            .series(Series::new(
                "speedup",
                f12.iter().enumerate().map(|(i, r)| (i as f64, r.speedup)).collect(),
            ))
            .series(Series::new(
                "power reduction",
                f12.iter().enumerate().map(|(i, r)| (i as f64, r.power_reduction)).collect(),
            )),
    );
    written
}

/// Runs one experiment by id; returns `false` for an unknown id.
pub fn run_experiment(id: &str, seed: u64) -> bool {
    let t0 = Instant::now();
    match id {
        "fig3" => {
            fig3(3, seed);
        }
        "fig4" | "fig4a" | "fig4b" => {
            fig4(3, seed);
        }
        "fig6" => {
            fig6(seed);
        }
        "fig7" => {
            fig7(seed);
        }
        "area" => {
            area();
        }
        "fig11" => {
            fig11(seed);
        }
        "approx" => {
            approx(seed);
        }
        "fig12" => {
            fig12(seed);
        }
        "fig13" => {
            fig13(seed);
        }
        "fig14" => {
            fig14(seed);
        }
        "fig15" => {
            fig15(seed);
        }
        "end2end" => {
            end_to_end(seed);
        }
        "sequences" => {
            sequence_table(4, 4, seed);
        }
        "dse-sweep" => {
            dse_sweep(seed);
        }
        "ablation-leaders" => {
            ablation_leader_cap(seed);
        }
        "ablation-cache" => {
            ablation_node_cache(seed);
        }
        "ablation-window" => {
            ablation_issue_window(seed);
        }
        "ablation-mapping" => {
            ablation_mapping(seed);
        }
        "ablations" => {
            ablation_leader_cap(seed);
            println!();
            ablation_node_cache(seed);
            println!();
            ablation_issue_window(seed);
            println!();
            ablation_mapping(seed);
        }
        _ => return false,
    }
    println!("\n[{} completed in {:.1?}]", id, t0.elapsed());
    true
}

/// All experiment ids in paper order (plus the repo's extra ablations).
pub const ALL_EXPERIMENTS: [&str; 12] = [
    "fig3",
    "fig4",
    "fig6",
    "fig7",
    "area",
    "fig11",
    "approx",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "ablations",
];

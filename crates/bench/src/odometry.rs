//! Streaming-odometry throughput measurement: frames-per-second with the
//! odometer's [`PreparedFrame`](tigris_pipeline::PreparedFrame) reuse
//! against a recompute-everything baseline.
//!
//! The same logic backs `benches/odometry.rs` (which also emits the
//! machine-readable `BENCH_odometry.json` baseline in CI) and the
//! release-scale acceptance test `tests/odometry_speedup.rs` (reuse must
//! deliver ≥1.3× frames-per-second on the default scene).

use std::time::{Duration, Instant};

use tigris_data::Sequence;
use tigris_geom::RigidTransform;
use tigris_pipeline::{
    prepare_frame, register_prepared_with_prior, Odometer, RegistrationConfig,
};

use crate::workload::short_sequence;

/// One reuse-on vs. reuse-off streaming comparison over the same frames.
#[derive(Debug, Clone)]
pub struct OdometryBenchResult {
    /// Frames streamed per run.
    pub frames: usize,
    /// Mean raw points per frame (before downsampling).
    pub mean_points_per_frame: f64,
    /// Best-of-N wall-clock for the whole stream with preparation reuse.
    pub reuse_time: Duration,
    /// Best-of-N wall-clock recomputing every frame's front end per pair.
    pub no_reuse_time: Duration,
    /// Frames per second with reuse.
    pub reuse_fps: f64,
    /// Frames per second without reuse.
    pub no_reuse_fps: f64,
    /// `reuse_fps / no_reuse_fps`.
    pub speedup: f64,
    /// Front-end preparations billed across the reuse run (must equal
    /// `frames`: each frame prepared exactly once).
    pub frames_prepared: usize,
    /// Preparations served from the carried frame (must equal
    /// `frames - 2`).
    pub frames_reused: usize,
}

impl OdometryBenchResult {
    /// The machine-readable baseline emitted by CI (`BENCH_odometry.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"odometry_streaming\",\n  \"frames\": {},\n  \
             \"mean_points_per_frame\": {:.1},\n  \"reuse_seconds\": {:.6},\n  \
             \"no_reuse_seconds\": {:.6},\n  \"reuse_fps\": {:.3},\n  \
             \"no_reuse_fps\": {:.3},\n  \"speedup\": {:.3},\n  \
             \"frames_prepared\": {},\n  \"frames_reused\": {}\n}}\n",
            self.frames,
            self.mean_points_per_frame,
            self.reuse_time.as_secs_f64(),
            self.no_reuse_time.as_secs_f64(),
            self.reuse_fps,
            self.no_reuse_fps,
            self.speedup,
            self.frames_prepared,
            self.frames_reused,
        )
    }
}

/// Streams the sequence through an [`Odometer`] (preparation reuse on),
/// returning elapsed time and the run's reuse counters.
fn run_with_reuse(seq: &Sequence, cfg: &RegistrationConfig) -> (Duration, usize, usize) {
    let mut odo = Odometer::new(cfg.clone());
    let mut prepared = 0;
    let mut reused = 0;
    let t0 = Instant::now();
    for i in 0..seq.len() {
        if let Some(step) = odo.push(seq.frame(i)).expect("odometry step failed") {
            prepared += step.registration.profile.frames_prepared;
            reused += step.registration.profile.frames_reused;
        }
    }
    (t0.elapsed(), prepared, reused)
}

/// Streams the same pairs with both frames' front ends recomputed per
/// pair — identical matching logic (including the constant-velocity
/// prior), zero reuse.
fn run_without_reuse(seq: &Sequence, cfg: &RegistrationConfig) -> Duration {
    let mut velocity: Option<RigidTransform> = None;
    let t0 = Instant::now();
    for i in 1..seq.len() {
        let mut source = prepare_frame(seq.frame(i), cfg).expect("prepare failed");
        let mut target = prepare_frame(seq.frame(i - 1), cfg).expect("prepare failed");
        let result =
            register_prepared_with_prior(&mut source, &mut target, cfg, velocity.as_ref())
                .expect("registration failed");
        velocity = Some(result.transform);
    }
    t0.elapsed()
}

/// Runs the reuse-on vs. reuse-off comparison on the default synthetic
/// scene: `frames` streamed frames, best-of-`runs` timing per path.
pub fn run_streaming_comparison(frames: usize, seed: u64, runs: usize) -> OdometryBenchResult {
    assert!(frames >= 3, "need at least 3 frames for a reuse to happen");
    assert!(runs >= 1);
    let seq = short_sequence(frames, seed);
    let cfg = RegistrationConfig::default();
    let mean_points =
        seq.frames().iter().map(|f| f.points().len()).sum::<usize>() as f64 / seq.len() as f64;

    // Warm up both paths once (page in the scene, stabilize allocator),
    // then take the best of `runs` for each.
    let (_, prepared, reused) = run_with_reuse(&seq, &cfg);
    run_without_reuse(&seq, &cfg);
    let reuse_time =
        (0..runs).map(|_| run_with_reuse(&seq, &cfg).0).min().expect("runs >= 1");
    let no_reuse_time =
        (0..runs).map(|_| run_without_reuse(&seq, &cfg)).min().expect("runs >= 1");

    let reuse_fps = frames as f64 / reuse_time.as_secs_f64();
    let no_reuse_fps = frames as f64 / no_reuse_time.as_secs_f64();
    OdometryBenchResult {
        frames,
        mean_points_per_frame: mean_points,
        reuse_time,
        no_reuse_time,
        reuse_fps,
        no_reuse_fps,
        speedup: reuse_fps / no_reuse_fps,
        frames_prepared: prepared,
        frames_reused: reused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_comparison_runs_and_counts_reuse() {
        // Small frame count; correctness of the counters, not timing.
        let result = run_streaming_comparison(3, 11, 1);
        assert_eq!(result.frames, 3);
        assert_eq!(result.frames_prepared, 3);
        assert_eq!(result.frames_reused, 1);
        assert!(result.reuse_fps > 0.0 && result.no_reuse_fps > 0.0);
        let json = result.to_json();
        assert!(json.contains("\"speedup\""), "{json}");
        assert!(json.contains("\"frames\": 3"), "{json}");
    }
}

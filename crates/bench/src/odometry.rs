//! Streaming-odometry throughput measurement: frames-per-second with the
//! odometer's [`PreparedFrame`](tigris_pipeline::PreparedFrame) reuse
//! against a recompute-everything baseline.
//!
//! The same logic backs `benches/odometry.rs` (which also emits the
//! machine-readable `BENCH_odometry.json` baseline in CI) and the
//! release-scale acceptance test `tests/odometry_speedup.rs` (reuse must
//! deliver ≥1.3× frames-per-second on the default scene).

use std::time::{Duration, Instant};

use tigris_data::Sequence;
use tigris_geom::RigidTransform;
use tigris_pipeline::{prepare_frame, register_prepared_with_prior, Odometer, RegistrationConfig};

use crate::report::BenchReport;
use crate::workload::short_sequence;

/// One reuse-on vs. reuse-off streaming comparison over the same frames.
#[derive(Debug, Clone)]
pub struct OdometryBenchResult {
    /// Frames streamed per run.
    pub frames: usize,
    /// Mean raw points per frame (before downsampling).
    pub mean_points_per_frame: f64,
    /// Best-of-N wall-clock for the whole stream with preparation reuse.
    pub reuse_time: Duration,
    /// Best-of-N wall-clock recomputing every frame's front end per pair.
    pub no_reuse_time: Duration,
    /// Per-run wall-clock samples (seconds) for the reuse path.
    pub reuse_samples: Vec<f64>,
    /// Per-run wall-clock samples (seconds) for the recompute path.
    pub no_reuse_samples: Vec<f64>,
    /// Frames per second with reuse.
    pub reuse_fps: f64,
    /// Frames per second without reuse.
    pub no_reuse_fps: f64,
    /// `reuse_fps / no_reuse_fps`.
    pub speedup: f64,
    /// Front-end preparations billed across the reuse run (must equal
    /// `frames`: each frame prepared exactly once).
    pub frames_prepared: usize,
    /// Preparations served from the carried frame (must equal
    /// `frames - 2`).
    pub frames_reused: usize,
}

impl OdometryBenchResult {
    /// The machine-readable baseline emitted by CI (`BENCH_odometry.json`),
    /// in the shared [`BenchReport`] schema.
    pub fn report(&self) -> BenchReport {
        BenchReport::new("odometry_streaming")
            .config_int("frames", self.frames)
            .config_int("mean_points_per_frame", self.mean_points_per_frame as usize)
            .samples("reuse_seconds", &self.reuse_samples)
            .samples("no_reuse_seconds", &self.no_reuse_samples)
            .derived_f64("reuse_seconds_best", self.reuse_time.as_secs_f64())
            .derived_f64("no_reuse_seconds_best", self.no_reuse_time.as_secs_f64())
            .derived_f64("reuse_fps", self.reuse_fps)
            .derived_f64("no_reuse_fps", self.no_reuse_fps)
            .derived_f64("speedup", self.speedup)
            .derived_int("frames_prepared", self.frames_prepared)
            .derived_int("frames_reused", self.frames_reused)
    }
}

/// Streams the sequence through an [`Odometer`] (preparation reuse on),
/// returning elapsed time and the run's reuse counters.
fn run_with_reuse(seq: &Sequence, cfg: &RegistrationConfig) -> (Duration, usize, usize) {
    let mut odo = Odometer::new(cfg.clone());
    let mut prepared = 0;
    let mut reused = 0;
    let t0 = Instant::now();
    for i in 0..seq.len() {
        if let Some(step) = odo.push(seq.frame(i)).expect("odometry step failed") {
            prepared += step.registration.profile.frames_prepared;
            reused += step.registration.profile.frames_reused;
        }
    }
    (t0.elapsed(), prepared, reused)
}

/// Streams the same pairs with both frames' front ends recomputed per
/// pair — identical matching logic (including the constant-velocity
/// prior), zero reuse.
fn run_without_reuse(seq: &Sequence, cfg: &RegistrationConfig) -> Duration {
    let mut velocity: Option<RigidTransform> = None;
    let t0 = Instant::now();
    for i in 1..seq.len() {
        let mut source = prepare_frame(seq.frame(i), cfg).expect("prepare failed");
        let mut target = prepare_frame(seq.frame(i - 1), cfg).expect("prepare failed");
        let result = register_prepared_with_prior(&mut source, &mut target, cfg, velocity.as_ref())
            .expect("registration failed");
        velocity = Some(result.transform);
    }
    t0.elapsed()
}

/// Runs the reuse-on vs. reuse-off comparison on the default synthetic
/// scene: `frames` streamed frames, best-of-`runs` timing per path.
pub fn run_streaming_comparison(frames: usize, seed: u64, runs: usize) -> OdometryBenchResult {
    assert!(frames >= 3, "need at least 3 frames for a reuse to happen");
    assert!(runs >= 1);
    let seq = short_sequence(frames, seed);
    let cfg = RegistrationConfig::default();
    let mean_points =
        seq.frames().iter().map(|f| f.points().len()).sum::<usize>() as f64 / seq.len() as f64;

    // Warm up both paths once (page in the scene, stabilize allocator),
    // then take the best of `runs` for each.
    let (_, prepared, reused) = run_with_reuse(&seq, &cfg);
    run_without_reuse(&seq, &cfg);
    let reuse_runs: Vec<Duration> = (0..runs).map(|_| run_with_reuse(&seq, &cfg).0).collect();
    let no_reuse_runs: Vec<Duration> = (0..runs).map(|_| run_without_reuse(&seq, &cfg)).collect();
    let reuse_time = *reuse_runs.iter().min().expect("runs >= 1");
    let no_reuse_time = *no_reuse_runs.iter().min().expect("runs >= 1");

    let reuse_fps = frames as f64 / reuse_time.as_secs_f64();
    let no_reuse_fps = frames as f64 / no_reuse_time.as_secs_f64();
    OdometryBenchResult {
        frames,
        mean_points_per_frame: mean_points,
        reuse_time,
        no_reuse_time,
        reuse_samples: reuse_runs.iter().map(Duration::as_secs_f64).collect(),
        no_reuse_samples: no_reuse_runs.iter().map(Duration::as_secs_f64).collect(),
        reuse_fps,
        no_reuse_fps,
        speedup: reuse_fps / no_reuse_fps,
        frames_prepared: prepared,
        frames_reused: reused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_comparison_runs_and_counts_reuse() {
        // Small frame count; correctness of the counters, not timing.
        let result = run_streaming_comparison(3, 11, 1);
        assert_eq!(result.frames, 3);
        assert_eq!(result.frames_prepared, 3);
        assert_eq!(result.frames_reused, 1);
        assert!(result.reuse_fps > 0.0 && result.no_reuse_fps > 0.0);
        let json = result.report().to_json();
        assert!(json.contains("\"bench\": \"odometry_streaming\""), "{json}");
        assert!(json.contains("\"speedup\""), "{json}");
        assert!(json.contains("\"frames\": 3"), "{json}");
        assert_eq!(result.reuse_samples.len(), 1);
    }
}

//! Front-end raw-speed comparison: the SIMD + dense-scratch rewrite of
//! normal estimation and FPFH vs. verbatim frozen copies of the
//! pre-refactor implementations, on the shared city-block scene.
//!
//! The comparison asserts bit-identical outputs *before* any timing —
//! a speedup over code that computes something else is not a speedup —
//! then times both generations (best-of-`runs`, serial, warm scratch
//! for the new path so it measures the allocation-free steady state).

use std::time::Instant;

use tigris_geom::Vec3;
use tigris_pipeline::descriptor::{compute_descriptors_with, Descriptors};
use tigris_pipeline::normal::estimate_normals_with;
use tigris_pipeline::{DescriptorAlgorithm, NormalAlgorithm, PrepareScratch, Searcher3};

use crate::report::BenchReport;
use crate::workload::huge_frame_pair;

/// Normal-estimation radius on the city-block scene (~0.45 m ground
/// spacing). The default pipeline runs NE at `normal_radius / voxel =
/// 0.6 / 0.25` — 2.4 spacings, ~18 ground neighbors — so the bench uses
/// the same ratio: `2.4 × 0.45 ≈ 1.1`.
pub const NE_RADIUS: f64 = 1.1;
/// FPFH radius at the default pipeline's neighborhood density:
/// `descriptor radius / voxel = 1.8 / 0.25` — 7.2 spacings, ~160 ground
/// neighbors — mapped to the bench scene's spacing: `7.2 × 0.45 ≈ 3.2`.
pub const FPFH_RADIUS: f64 = 3.2;
/// Every `KEYPOINT_STRIDE`-th point is a key-point.
pub const KEYPOINT_STRIDE: usize = 16;

/// Frozen pre-refactor front end, verbatim (modulo import paths) from
/// the revision preceding the SIMD/dense rewrite. Kept here — not in
/// `tigris-pipeline` — so the production crate carries exactly one
/// implementation.
pub mod frozen {
    use std::collections::{HashMap, HashSet};

    use tigris_geom::{symmetric_eigen3, Mat3, Vec3};
    use tigris_pipeline::descriptor::{Descriptors, FPFH_DIM};
    use tigris_pipeline::{NormalAlgorithm, Searcher3};

    /// The pre-refactor `estimate_normals`: chunked `to_vec` query
    /// copies, per-neighborhood `Vec3` accumulation loops.
    pub fn estimate_normals(
        searcher: &mut Searcher3,
        radius: f64,
        algorithm: NormalAlgorithm,
    ) -> Vec<Vec3> {
        assert!(radius > 0.0, "normal-estimation radius must be positive");
        let n = searcher.len();
        let parallel = searcher.parallel();
        const CHUNK: usize = 16 * 1024;
        let mut normals = Vec::with_capacity(n);
        let mut start = 0;
        while start < n {
            let end = (start + CHUNK).min(n);
            let chunk: Vec<Vec3> = searcher.points()[start..end].to_vec();
            let neighborhoods = searcher.radius_batch(&chunk, radius);
            let points = searcher.points();
            normals.extend(tigris_core::batch::parallel_map_indexed(chunk.len(), &parallel, |i| {
                let p = chunk[i];
                let neighbors = &neighborhoods[i];
                let normal = match algorithm {
                    NormalAlgorithm::PlaneSvd => plane_svd_normal(points, neighbors, p),
                    NormalAlgorithm::AreaWeighted => unimplemented!("not benched"),
                };
                if normal.dot(-p) < 0.0 {
                    -normal
                } else {
                    normal
                }
            }));
            start = end;
        }
        normals
    }

    fn plane_svd_normal(
        points: &[Vec3],
        neighbors: &[tigris_core::Neighbor],
        _fallback_at: Vec3,
    ) -> Vec3 {
        if neighbors.len() < 3 {
            return Vec3::Z;
        }
        let mut centroid = Vec3::ZERO;
        for n in neighbors {
            centroid += points[n.index];
        }
        centroid = centroid / neighbors.len() as f64;
        let mut cov = Mat3::ZERO;
        for n in neighbors {
            let d = points[n.index] - centroid;
            cov = cov + Mat3::outer(d, d);
        }
        let eig = symmetric_eigen3(&cov);
        eig.smallest_vector().normalized().unwrap_or(Vec3::Z)
    }

    const FPFH_BINS: usize = 11;

    fn pair_features(ps: Vec3, ns: Vec3, pt: Vec3, nt: Vec3) -> Option<(f64, f64, f64)> {
        let d = pt - ps;
        let dist = d.norm();
        if dist < 1e-9 {
            return None;
        }
        let du = d / dist;
        let (n1, n2, du) =
            if ns.dot(du).abs() >= nt.dot(-du).abs() { (ns, nt, du) } else { (nt, ns, -du) };
        let u = n1;
        let v = du.cross(u).normalized()?;
        let w = u.cross(v);
        Some((v.dot(n2), u.dot(du), w.dot(n2).atan2(u.dot(n2))))
    }

    fn bin_index(value: f64, lo: f64, hi: f64) -> usize {
        let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((t * FPFH_BINS as f64) as usize).min(FPFH_BINS - 1)
    }

    fn spfh(
        points: &[Vec3],
        normals: &[Vec3],
        center: usize,
        neighbors: &[usize],
    ) -> [f64; FPFH_DIM] {
        let mut hist = [0.0f64; FPFH_DIM];
        let mut count = 0.0;
        for &j in neighbors {
            if j == center {
                continue;
            }
            if let Some((alpha, phi, theta)) =
                pair_features(points[center], normals[center], points[j], normals[j])
            {
                hist[bin_index(alpha, -1.0, 1.0)] += 1.0;
                hist[FPFH_BINS + bin_index(phi, -1.0, 1.0)] += 1.0;
                hist[2 * FPFH_BINS
                    + bin_index(theta, -std::f64::consts::PI, std::f64::consts::PI)] += 1.0;
                count += 1.0;
            }
        }
        if count > 0.0 {
            for h in &mut hist {
                *h *= 100.0 / count;
            }
        }
        hist
    }

    /// The pre-refactor `fpfh`: `HashMap`/`HashSet` SPFH plumbing, every
    /// SPFH pair evaluated from both endpoints.
    pub fn fpfh(
        searcher: &mut Searcher3,
        normals: &[Vec3],
        keypoints: &[usize],
        radius: f64,
    ) -> Descriptors {
        let parallel = searcher.parallel();

        let kp_pts: Vec<Vec3> = {
            let pts = searcher.points();
            keypoints.iter().map(|&k| pts[k]).collect()
        };
        let kp_neigh: Vec<Vec<usize>> = searcher
            .radius_batch(&kp_pts, radius)
            .into_iter()
            .map(|ns| ns.into_iter().map(|n| n.index).collect())
            .collect();

        let mut needed: Vec<usize> = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();
        for (&k, neigh) in keypoints.iter().zip(&kp_neigh) {
            if seen.insert(k) {
                needed.push(k);
            }
            for &j in neigh {
                if seen.insert(j) {
                    needed.push(j);
                }
            }
        }
        let mut neigh_of: HashMap<usize, Vec<usize>> = HashMap::new();
        for (&k, neigh) in keypoints.iter().zip(&kp_neigh) {
            neigh_of.entry(k).or_insert_with(|| neigh.clone());
        }
        let missing: Vec<usize> =
            needed.iter().copied().filter(|i| !neigh_of.contains_key(i)).collect();
        let missing_pts: Vec<Vec3> = {
            let pts = searcher.points();
            missing.iter().map(|&i| pts[i]).collect()
        };
        let missing_neigh = searcher.radius_batch(&missing_pts, radius);
        for (&i, ns) in missing.iter().zip(missing_neigh) {
            neigh_of.insert(i, ns.into_iter().map(|n| n.index).collect());
        }

        let points = searcher.points();
        let spfh_rows = tigris_core::batch::parallel_map(&needed, &parallel, |&i| {
            spfh(points, normals, i, &neigh_of[&i])
        });
        let spfh_of: HashMap<usize, &[f64; FPFH_DIM]> =
            needed.iter().zip(spfh_rows.iter()).map(|(&i, h)| (i, h)).collect();

        let rows = tigris_core::batch::parallel_map_indexed(keypoints.len(), &parallel, |ki| {
            let k = keypoints[ki];
            let neighbors = &kp_neigh[ki];
            let mut out = *spfh_of[&k];
            let mut weight_total = 0.0;
            let mut acc = [0.0f64; FPFH_DIM];
            for &j in neighbors {
                if j == k {
                    continue;
                }
                let d = points[k].distance(points[j]);
                if d < 1e-9 {
                    continue;
                }
                let h = spfh_of[&j];
                let w = 1.0 / d;
                for (a, v) in acc.iter_mut().zip(h.iter()) {
                    *a += w * v;
                }
                weight_total += w;
            }
            if weight_total > 0.0 {
                for (o, a) in out.iter_mut().zip(acc.iter()) {
                    *o += a / weight_total;
                }
            }
            out
        });

        let mut data = Vec::with_capacity(keypoints.len() * FPFH_DIM);
        for row in rows {
            data.extend_from_slice(&row);
        }
        Descriptors { dim: FPFH_DIM, data }
    }
}

/// Results of one front-end generation comparison.
#[derive(Debug, Clone)]
pub struct FrontendComparison {
    /// Scene size.
    pub n_points: usize,
    /// Key-points descriptors were computed for.
    pub n_keypoints: usize,
    /// Best-of-`runs` seconds, frozen normal estimation.
    pub frozen_ne_seconds: f64,
    /// Best-of-`runs` seconds, rewritten normal estimation.
    pub new_ne_seconds: f64,
    /// Best-of-`runs` seconds, frozen FPFH.
    pub frozen_fpfh_seconds: f64,
    /// Best-of-`runs` seconds, rewritten FPFH (warm scratch).
    pub new_fpfh_seconds: f64,
    /// Scratch bytes grown during the *timed* (post-warm-up) runs —
    /// non-zero would falsify the allocation-free steady-state claim.
    pub warm_scratch_bytes_grown: u64,
}

impl FrontendComparison {
    /// Frozen NE time over new NE time.
    pub fn ne_speedup(&self) -> f64 {
        self.frozen_ne_seconds / self.new_ne_seconds
    }

    /// Frozen FPFH time over new FPFH time.
    pub fn fpfh_speedup(&self) -> f64 {
        self.frozen_fpfh_seconds / self.new_fpfh_seconds
    }

    /// Combined NE + FPFH speedup — the tentpole's ≥2x acceptance gate.
    pub fn combined_speedup(&self) -> f64 {
        (self.frozen_ne_seconds + self.frozen_fpfh_seconds)
            / (self.new_ne_seconds + self.new_fpfh_seconds)
    }

    /// The comparison as a machine-readable [`BenchReport`].
    pub fn report(&self, runs: usize) -> BenchReport {
        BenchReport::new("frontend")
            .config_int("points", self.n_points)
            .config_int("keypoints", self.n_keypoints)
            .config_int("runs", runs)
            .config_str(
                "wide_kernels",
                if tigris_core::simd::wide_kernels_selected() { "on" } else { "off" },
            )
            .samples("frozen_ne_seconds", &[self.frozen_ne_seconds])
            .samples("new_ne_seconds", &[self.new_ne_seconds])
            .samples("frozen_fpfh_seconds", &[self.frozen_fpfh_seconds])
            .samples("new_fpfh_seconds", &[self.new_fpfh_seconds])
            .derived_f64("ne_speedup", self.ne_speedup())
            .derived_f64("fpfh_speedup", self.fpfh_speedup())
            .derived_f64("combined_speedup", self.combined_speedup())
            .derived_int("warm_scratch_bytes_grown", self.warm_scratch_bytes_grown as usize)
    }
}

fn best_seconds<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        let result = f();
        best = best.min(t0.elapsed().as_secs_f64());
        drop(result);
    }
    best
}

/// Builds the `min_points` city-block scene, proves the rewritten front
/// end bit-identical to the frozen one on it, then times both
/// generations' NE and FPFH (serial, best of `runs`).
///
/// # Panics
///
/// Panics when any rewritten output differs from the frozen one by even
/// one bit — the timing never runs against divergent code.
pub fn run_frontend_comparison(min_points: usize, runs: usize) -> FrontendComparison {
    let (points, _) = huge_frame_pair(min_points, 42);
    let keypoints: Vec<usize> = (0..points.len()).step_by(KEYPOINT_STRIDE).collect();
    let mut searcher = Searcher3::classic(&points);
    let mut scratch = PrepareScratch::new();

    // -- Correctness before speed: bit-identity on the full scene. --
    let frozen_normals =
        frozen::estimate_normals(&mut searcher, NE_RADIUS, NormalAlgorithm::PlaneSvd);
    let new_normals =
        estimate_normals_with(&mut searcher, NE_RADIUS, NormalAlgorithm::PlaneSvd, &mut scratch);
    assert_eq!(frozen_normals.len(), new_normals.len());
    for (i, (a, b)) in new_normals.iter().zip(&frozen_normals).enumerate() {
        assert!(
            a.x.to_bits() == b.x.to_bits()
                && a.y.to_bits() == b.y.to_bits()
                && a.z.to_bits() == b.z.to_bits(),
            "normal {i} diverged: new {a} vs frozen {b}"
        );
    }
    let frozen_desc = frozen::fpfh(&mut searcher, &frozen_normals, &keypoints, FPFH_RADIUS);
    let new_desc = fpfh_with(&mut searcher, &new_normals, &keypoints, &mut scratch);
    assert_eq!(frozen_desc.data.len(), new_desc.data.len());
    for (i, (a, b)) in new_desc.data.iter().zip(&frozen_desc.data).enumerate() {
        assert!(a.to_bits() == b.to_bits(), "fpfh value {i} diverged: new {a} vs frozen {b}");
    }

    // -- Timing: the scratch is warm from the identity pass, so the new
    //    path's timed runs measure the allocation-free steady state. --
    let bytes_before = scratch.capacity_bytes();
    let new_ne_seconds = best_seconds(runs, || {
        estimate_normals_with(&mut searcher, NE_RADIUS, NormalAlgorithm::PlaneSvd, &mut scratch)
    });
    let new_fpfh_seconds =
        best_seconds(runs, || fpfh_with(&mut searcher, &new_normals, &keypoints, &mut scratch));
    let warm_scratch_bytes_grown = (scratch.capacity_bytes() - bytes_before) as u64;

    let frozen_ne_seconds = best_seconds(runs, || {
        frozen::estimate_normals(&mut searcher, NE_RADIUS, NormalAlgorithm::PlaneSvd)
    });
    let frozen_fpfh_seconds = best_seconds(runs, || {
        frozen::fpfh(&mut searcher, &frozen_normals, &keypoints, FPFH_RADIUS)
    });

    FrontendComparison {
        n_points: points.len(),
        n_keypoints: keypoints.len(),
        frozen_ne_seconds,
        new_ne_seconds,
        frozen_fpfh_seconds,
        new_fpfh_seconds,
        warm_scratch_bytes_grown,
    }
}

fn fpfh_with(
    searcher: &mut Searcher3,
    normals: &[Vec3],
    keypoints: &[usize],
    scratch: &mut PrepareScratch,
) -> Descriptors {
    compute_descriptors_with(
        searcher,
        normals,
        keypoints,
        DescriptorAlgorithm::Fpfh { radius: FPFH_RADIUS },
        scratch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_comparison_is_bit_identical_and_reports() {
        // Debug-scale smoke: the identity assertions inside the run are
        // the test; release-scale speedups are gated in
        // `tests/frontend_speedup.rs`.
        let cmp = run_frontend_comparison(2_000, 1);
        assert!(cmp.n_points >= 2_000);
        assert!(cmp.n_keypoints > 0);
        assert_eq!(cmp.warm_scratch_bytes_grown, 0, "warm runs must not grow scratch");
        let json = cmp.report(1).to_json();
        assert!(json.contains("combined_speedup"));
    }
}

//! One workload, every selectable backend — the benchmark the
//! `SearchIndex` registry makes possible without per-backend copy-paste.
//!
//! The same NN and radius query streams run against every backend the
//! registry knows: the five built-ins (`classic`, `two-stage`,
//! `two-stage-approx`, `brute-force`, `dynamic`) plus the accelerator
//! registered by `tigris-accel`. Adding a backend to the registry adds it
//! to this matrix automatically.
//!
//! ```text
//! cargo bench -p tigris-bench --bench backend_matrix
//! ```
//!
//! The workload is deliberately smaller than `benches/batch.rs` (the
//! brute-force oracle is quadratic and the accelerator traces every query
//! at cycle granularity); use `batch.rs` for large-scale thread-scaling
//! numbers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tigris_bench::workload::huge_frame_pair;
use tigris_core::{backend_names, build_backend, BatchConfig, SearchStats};

const SCENE_POINTS: usize = 20_000;
const NN_QUERIES: usize = 2_000;
const RADIUS_QUERIES: usize = 500;

fn bench_backend_matrix(c: &mut Criterion) {
    // Make the accelerator selectable alongside the built-ins.
    tigris_accel::register_accelerator_backend();

    let (points, queries) = huge_frame_pair(SCENE_POINTS, 42);
    let nn_queries: Vec<_> = queries.iter().copied().take(NN_QUERIES).collect();
    let radius_queries: Vec<_> = queries.into_iter().take(RADIUS_QUERIES).collect();
    let cfg = BatchConfig { threads: 4, min_chunk: 64 };

    let mut group = c.benchmark_group("backend_matrix");
    group.sample_size(10);

    for name in backend_names() {
        // Index build outside the timing loop — the matrix compares query
        // cost, not construction; reset() per sample so stateful backends
        // (leader books / leader buffers) measure the cold pass each time.
        let mut index = build_backend(&name, &points).expect("registered backend");
        group.bench_function(BenchmarkId::new("nn", &name), |b| {
            b.iter(|| {
                index.reset();
                let mut stats = SearchStats::new();
                black_box(index.nn_batch(&nn_queries, &cfg, &mut stats).len())
            });
        });

        group.bench_function(BenchmarkId::new("radius", &name), |b| {
            b.iter(|| {
                index.reset();
                let mut stats = SearchStats::new();
                black_box(index.radius_batch(&radius_queries, 0.8, &cfg, &mut stats).len())
            });
        });
    }
    group.finish();
}

criterion_group!(backend_matrix, bench_backend_matrix);
criterion_main!(backend_matrix);

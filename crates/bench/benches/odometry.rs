//! Streaming-odometry throughput: frames-per-second with `PreparedFrame`
//! reuse on vs. off, on the default synthetic scene.
//!
//! Besides the human-readable comparison, the run emits a
//! machine-readable baseline (`BENCH_odometry.json` by default, or the
//! path in `$BENCH_ODOMETRY_JSON`) that CI archives per commit, so
//! streaming-throughput regressions show up as a diffable number.
//!
//! ```text
//! cargo bench -p tigris-bench --bench odometry
//! TIGRIS_ODO_FRAMES=10 cargo bench -p tigris-bench --bench odometry
//! ```

use tigris_bench::env_usize;
use tigris_bench::odometry::run_streaming_comparison;

fn main() {
    let frames = env_usize("TIGRIS_ODO_FRAMES", 6);
    let runs = env_usize("TIGRIS_ODO_RUNS", 3);
    println!("== streaming odometry: {frames} frames, best of {runs} runs ==");

    let result = run_streaming_comparison(frames, 42, runs);
    println!(
        "frames/s with reuse    {:>8.3}  ({:?} total, {} preparations, {} reuses)",
        result.reuse_fps, result.reuse_time, result.frames_prepared, result.frames_reused
    );
    println!(
        "frames/s without reuse {:>8.3}  ({:?} total, front end recomputed per pair)",
        result.no_reuse_fps, result.no_reuse_time
    );
    println!("speedup                {:>8.3}x", result.speedup);

    let path = result.report().write_env("BENCH_ODOMETRY_JSON", "BENCH_odometry.json");
    println!("baseline written to {}", path.display());
}

//! Batched-parallel vs. serial neighbor search on a ≥100k-point scene —
//! the software demonstration of the query-level parallelism the paper's
//! two-stage KD-tree exposes (Sec. 4.1) and the acceptance benchmark for
//! the batch engine: batched parallel two-stage search at ≥4 threads must
//! beat the serial canonical KD-tree.
//!
//! ```text
//! cargo bench -p tigris-bench --bench batch
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tigris_bench::workload::{height_for_leaf_size, huge_frame_pair};
use tigris_core::batch::{BatchConfig, BatchSearcher};
use tigris_core::{ApproxConfig, ApproxSearcher, KdTree, SearchStats, TwoStageKdTree};

const SCENE_POINTS: usize = 120_000;
const NN_QUERIES: usize = 30_000;
const RADIUS_QUERIES: usize = 6_000;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_nn(c: &mut Criterion) {
    let (points, queries) = huge_frame_pair(SCENE_POINTS, 42);
    let queries: Vec<_> = queries.into_iter().take(NN_QUERIES).collect();
    let classic = KdTree::build(&points);
    let h = height_for_leaf_size(points.len(), 128);
    let mut two_stage = TwoStageKdTree::build(&points, h);

    let mut group = c.benchmark_group("nn_120k");
    group.sample_size(10);

    group.bench_function("classic_serial", |b| {
        b.iter(|| {
            let mut stats = SearchStats::new();
            let mut acc = 0usize;
            for &q in &queries {
                if let Some(n) = classic.nn_with_stats(q, &mut stats) {
                    acc ^= n.index;
                }
            }
            black_box(acc)
        });
    });

    let mut classic_batched = KdTree::build(&points);
    for t in THREADS {
        group.bench_with_input(BenchmarkId::new("classic_batched", t), &t, |b, &t| {
            let cfg = BatchConfig { threads: t, min_chunk: 64 };
            b.iter(|| {
                let mut stats = SearchStats::new();
                black_box(classic_batched.nn_batch(&queries, &cfg, &mut stats).len())
            });
        });
    }

    for t in THREADS {
        group.bench_with_input(BenchmarkId::new("two_stage_batched", t), &t, |b, &t| {
            let cfg = BatchConfig { threads: t, min_chunk: 64 };
            b.iter(|| {
                let mut stats = SearchStats::new();
                black_box(two_stage.nn_batch(&queries, &cfg, &mut stats).len())
            });
        });
    }

    for t in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("approx_batched", t), &t, |b, &t| {
            let cfg = BatchConfig { threads: t, min_chunk: 64 };
            b.iter(|| {
                // Fresh leader books per sample: the cold RPCE iteration.
                let mut approx = ApproxSearcher::new(&two_stage, ApproxConfig::default());
                let mut stats = SearchStats::new();
                black_box(approx.nn_batch(&queries, &cfg, &mut stats).len())
            });
        });
    }
    group.finish();
}

fn bench_radius(c: &mut Criterion) {
    let (points, queries) = huge_frame_pair(SCENE_POINTS, 7);
    let queries: Vec<_> = queries.into_iter().take(RADIUS_QUERIES).collect();
    let radius = 0.8;
    let classic = KdTree::build(&points);
    let h = height_for_leaf_size(points.len(), 128);
    let mut two_stage = TwoStageKdTree::build(&points, h);

    let mut group = c.benchmark_group("radius_120k");
    group.sample_size(10);

    group.bench_function("classic_serial", |b| {
        b.iter(|| {
            let mut stats = SearchStats::new();
            let mut total = 0usize;
            for &q in &queries {
                total += classic.radius_with_stats(q, radius, &mut stats).len();
            }
            black_box(total)
        });
    });

    for t in THREADS {
        group.bench_with_input(BenchmarkId::new("two_stage_batched", t), &t, |b, &t| {
            let cfg = BatchConfig { threads: t, min_chunk: 16 };
            b.iter(|| {
                let mut stats = SearchStats::new();
                black_box(two_stage.radius_batch(&queries, radius, &cfg, &mut stats).len())
            });
        });
    }
    group.finish();
}

criterion_group!(batch, bench_nn, bench_radius);
criterion_main!(batch);

//! End-to-end registration benchmarks: one frame pair at the
//! performance-oriented (DP4) and accuracy-oriented (DP7) design points,
//! plus the individual front-end stages at the default configuration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tigris_bench::workload::frame_pair;
use tigris_geom::PointCloud;
use tigris_pipeline::keypoint::detect_keypoints;
use tigris_pipeline::normal::estimate_normals;
use tigris_pipeline::{register, DesignPoint, RegistrationConfig, Searcher3};

fn bench_register(c: &mut Criterion) {
    let (source, target, _) = frame_pair(42);
    let source = PointCloud::from_points(source);
    let target = PointCloud::from_points(target);

    let mut group = c.benchmark_group("register");
    group.sample_size(10);
    for dp in [DesignPoint::Dp4, DesignPoint::Dp7] {
        group.bench_function(dp.name(), |b| {
            let cfg = dp.config();
            b.iter(|| black_box(register(&source, &target, &cfg).unwrap().icp_iterations));
        });
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let (_, target, _) = frame_pair(42);
    let cfg = RegistrationConfig::default();
    let cloud = PointCloud::from_points(target).voxel_downsample(cfg.voxel_size);

    let mut group = c.benchmark_group("stages");
    group.sample_size(10);
    group.bench_function("normal_estimation", |b| {
        b.iter(|| {
            let mut s = Searcher3::classic(cloud.points());
            black_box(estimate_normals(&mut s, cfg.normal_radius, cfg.normal_algorithm).len())
        });
    });
    group.bench_function("keypoint_detection", |b| {
        let mut s = Searcher3::classic(cloud.points());
        let normals = estimate_normals(&mut s, cfg.normal_radius, cfg.normal_algorithm);
        b.iter(|| {
            let mut s = Searcher3::classic(cloud.points());
            black_box(detect_keypoints(&mut s, &normals, cfg.keypoint).len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_register, bench_stages);
criterion_main!(benches);

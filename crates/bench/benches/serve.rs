//! Shared-map serving: one frozen snapshot serving every session vs.
//! each session rebuilding the map for itself.
//!
//! Besides the human-readable comparison, the run emits a
//! machine-readable baseline (`BENCH_serve.json` by default, or the path
//! in `$BENCH_SERVE_JSON`) that CI archives per commit, so serving-layer
//! regressions show up as a diffable number.
//!
//! ```text
//! cargo bench -p tigris-bench --bench serve
//! TIGRIS_SERVE_SESSIONS=8 cargo bench -p tigris-bench --bench serve
//! ```

use tigris_bench::env_usize;
use tigris_bench::serve::run_shared_vs_rebuild_comparison;

fn main() {
    let sessions = env_usize("TIGRIS_SERVE_SESSIONS", 4);
    let runs = env_usize("TIGRIS_SERVE_RUNS", 1);
    println!("== shared-map serving: {sessions} sessions, best of {runs} runs ==");

    let result = run_shared_vs_rebuild_comparison(sessions, 7, runs);
    println!(
        "shared snapshot   {:>8.3} frames/s  ({:?} total: 1 map build + {} sessions)",
        result.shared_fps, result.shared_time, result.sessions
    );
    println!(
        "rebuild/session   {:>8.3} frames/s  ({:?} total: {} map builds)",
        result.rebuild_fps, result.rebuild_time, result.sessions
    );
    println!("speedup           {:>8.3}x  (poses verified bit-identical)", result.speedup);
    println!(
        "cold start        {:>8.4}s best of {} relocalizations  (front end: NE {:.4}s + descriptors {:.4}s per run, {} alloc-free preparations, {} scratch bytes grown)",
        result.cold_start_best(),
        result.cold_start_samples.len(),
        result.ne_seconds,
        result.descriptor_seconds,
        result.scratch_reuses,
        result.scratch_bytes_grown,
    );

    let path = result.report().write_env("BENCH_SERVE_JSON", "BENCH_serve.json");
    println!("baseline written to {}", path.display());
}

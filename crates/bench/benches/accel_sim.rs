//! Accelerator-simulator benchmarks: how fast the cycle model itself runs
//! (simulation throughput, not simulated time), across the Fig. 12
//! ablation variants and both back-end policies.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tigris_accel::{AcceleratorConfig, AcceleratorSim, BackendPolicy, SearchKind};
use tigris_bench::workload::{dense_frame_pair, height_for_leaf_size};
use tigris_core::{ApproxConfig, TwoStageKdTree};
use tigris_geom::Vec3;

fn bench_sim(c: &mut Criterion) {
    let (points, queries) = dense_frame_pair(42);
    let queries: Vec<Vec3> = queries.into_iter().step_by(16).collect();
    let h = height_for_leaf_size(points.len(), 128);
    let tree = TwoStageKdTree::build(&points, h);

    let mut group = c.benchmark_group("accel_sim");
    group.sample_size(10);

    group.bench_function("nn_exact_mqsn", |b| {
        b.iter(|| {
            let mut sim = AcceleratorSim::new(&tree, AcceleratorConfig::paper());
            black_box(sim.run(&queries, SearchKind::Nn).cycles)
        });
    });
    group.bench_function("nn_no_opt", |b| {
        b.iter(|| {
            let mut sim = AcceleratorSim::new(&tree, AcceleratorConfig::no_opt());
            black_box(sim.run(&queries, SearchKind::Nn).cycles)
        });
    });
    group.bench_function("nn_mqmn", |b| {
        b.iter(|| {
            let cfg =
                AcceleratorConfig { backend: BackendPolicy::Mqmn, ..AcceleratorConfig::paper() };
            let mut sim = AcceleratorSim::new(&tree, cfg);
            black_box(sim.run(&queries, SearchKind::Nn).cycles)
        });
    });
    group.bench_function("nn_approx", |b| {
        b.iter(|| {
            let cfg = AcceleratorConfig {
                approx: Some(ApproxConfig::default()),
                ..AcceleratorConfig::paper()
            };
            let mut sim = AcceleratorSim::new(&tree, cfg);
            black_box(sim.run(&queries, SearchKind::Nn).cycles)
        });
    });
    group.bench_function("radius_exact", |b| {
        b.iter(|| {
            let mut sim = AcceleratorSim::new(&tree, AcceleratorConfig::paper());
            black_box(sim.run(&queries, SearchKind::Radius(0.6)).cycles)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);

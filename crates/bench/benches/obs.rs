//! Observability overhead: the streaming-odometry workload with tracing
//! off vs. on, plus the disabled span-site microbenchmark backing the
//! ≤2% disabled-overhead acceptance bound.
//!
//! Besides the human-readable comparison, the run emits a
//! machine-readable baseline (`BENCH_obs.json` by default, or the path
//! in `$BENCH_OBS_JSON`) that CI archives per commit, so tracing-cost
//! regressions show up as a diffable number.
//!
//! ```text
//! cargo bench -p tigris-bench --bench obs
//! TIGRIS_OBS_FRAMES=10 cargo bench -p tigris-bench --bench obs
//! ```

use tigris_bench::env_usize;
use tigris_bench::obs::run_overhead_comparison;

fn main() {
    let frames = env_usize("TIGRIS_OBS_FRAMES", 6);
    let runs = env_usize("TIGRIS_OBS_RUNS", 3);
    println!("== observability overhead: {frames} frames, best of {runs} runs ==");

    let result = run_overhead_comparison(frames, 42, runs);
    println!("tracing off  {:>10.3?}  (workload wall-clock)", result.disabled_time);
    println!(
        "tracing on   {:>10.3?}  ({} records, {} dropped, +{:.2}%)",
        result.enabled_time,
        result.records_per_run,
        result.records_dropped,
        result.enabled_overhead * 100.0
    );
    println!(
        "recorder     {:>10.3?}  (flight ring only, site {:.2} ns)",
        result.recorder_time, result.recorder_site_ns
    );
    println!(
        "disabled site {:>8.2} ns  → {:.4}% of the disabled run (bound: 2%)",
        result.site_ns,
        result.disabled_overhead * 100.0
    );
    println!(
        "recorder site {:>8.2} ns  → {:.4}% of the disabled run (bound: 3%)",
        result.recorder_site_ns,
        result.recorder_overhead * 100.0
    );
    println!(
        "sampler observe {:>6.1} ns  (drop-fast path, per completed request)",
        result.sampler_observe_ns
    );
    println!(
        "poses identical: traced {} / recorder {}",
        result.poses_identical, result.recorder_poses_identical
    );

    let path = result.report().write_env("BENCH_OBS_JSON", "BENCH_obs.json");
    println!("baseline written to {}", path.display());
}

//! SoA + SIMD kernel layout vs. the frozen pre-SoA pointer-chasing
//! KD-tree: nearest-neighbor and radius throughput on the shared
//! city-block scene.
//!
//! Besides the human-readable comparison, the run emits a
//! machine-readable baseline (`BENCH_kernels.json` by default, or the
//! path in `$BENCH_KERNELS_JSON`) that CI archives per commit, so
//! memory-layout regressions show up as a diffable number. The
//! acceptance gate on the same comparison is
//! `tests/kernel_speedup.rs` (≥2x on batched radius).
//!
//! ```text
//! cargo bench -p tigris-bench --bench kernels
//! TIGRIS_KERNEL_POINTS=60000 cargo bench -p tigris-bench --bench kernels
//! ```

use std::time::Instant;

use tigris_bench::env_usize;
use tigris_bench::reference::ReferenceKdTree;
use tigris_bench::report::BenchReport;
use tigris_bench::workload::huge_frame_pair;
use tigris_core::simd::wide_kernels_selected;
use tigris_core::KdTree;

fn best_seconds(runs: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut hits = f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        hits = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, hits)
}

fn main() {
    let n_points = env_usize("TIGRIS_KERNEL_POINTS", 120_000);
    let n_queries = env_usize("TIGRIS_KERNEL_QUERIES", 20_000);
    let runs = env_usize("TIGRIS_KERNEL_RUNS", 3);
    let radius = 0.8;

    println!(
        "== kernel layouts: {n_points} points, {n_queries} queries, best of {runs} \
         (wide kernels: {}) ==",
        wide_kernels_selected()
    );
    let (points, queries) = huge_frame_pair(n_points, 42);
    let queries: Vec<_> = queries.into_iter().take(n_queries).collect();

    let soa = KdTree::build(&points);
    let reference = ReferenceKdTree::build(&points);

    let (soa_nn, _) = best_seconds(runs, || queries.iter().filter_map(|&q| soa.nn(q)).count());
    let (ref_nn, _) =
        best_seconds(runs, || queries.iter().filter_map(|&q| reference.nn(q)).count());
    let (soa_radius, soa_hits) =
        best_seconds(runs, || queries.iter().map(|&q| soa.radius(q, radius).len()).sum());
    let (ref_radius, ref_hits) =
        best_seconds(runs, || queries.iter().map(|&q| reference.radius(q, radius).len()).sum());
    assert_eq!(soa_hits, ref_hits, "layouts disagree on radius hit counts");

    let nn_speedup = ref_nn / soa_nn;
    let radius_speedup = ref_radius / soa_radius;
    println!("nn     pointer-chasing {ref_nn:>9.4}s | SoA+SIMD {soa_nn:>9.4}s  ({nn_speedup:.2}x)");
    println!(
        "radius pointer-chasing {ref_radius:>9.4}s | SoA+SIMD {soa_radius:>9.4}s  \
         ({radius_speedup:.2}x, {soa_hits} hits)"
    );

    let report = BenchReport::new("kernels")
        .config_int("points", points.len())
        .config_int("queries", queries.len())
        .config_int("runs", runs)
        .config_str("wide_kernels", if wide_kernels_selected() { "on" } else { "off" })
        .samples("soa_nn_seconds", &[soa_nn])
        .samples("reference_nn_seconds", &[ref_nn])
        .samples("soa_radius_seconds", &[soa_radius])
        .samples("reference_radius_seconds", &[ref_radius])
        .derived_f64("nn_speedup", nn_speedup)
        .derived_f64("radius_speedup", radius_speedup)
        .derived_int("radius_hits", soa_hits);
    let path = report.write_env("BENCH_KERNELS_JSON", "BENCH_kernels.json");
    println!("baseline written to {}", path.display());
}

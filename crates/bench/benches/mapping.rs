//! Dynamic-map-index throughput: interleaved insert+query streams through
//! `DynamicMapIndex` vs. the naive rebuild-per-insert baseline.
//!
//! Besides the human-readable comparison, the run emits a
//! machine-readable baseline (`BENCH_mapping.json` by default, or the
//! path in `$BENCH_MAPPING_JSON`) that CI archives per commit, so
//! map-maintenance regressions show up as a diffable number.
//!
//! ```text
//! cargo bench -p tigris-bench --bench mapping
//! TIGRIS_MAP_POINTS=8000 cargo bench -p tigris-bench --bench mapping
//! ```

use tigris_bench::env_usize;
use tigris_bench::mapping::run_insert_query_comparison;

fn main() {
    let points = env_usize("TIGRIS_MAP_POINTS", 4000);
    let every = env_usize("TIGRIS_MAP_QUERY_EVERY", 8);
    let runs = env_usize("TIGRIS_MAP_RUNS", 3);
    println!(
        "== dynamic map index: {points} single-point inserts, queries every {every}, best of {runs} =="
    );

    let result = run_insert_query_comparison(points, every, 42, runs);
    println!(
        "dynamic index   {:>12.0} ops/s  ({:?} total, {} merge rebuilds)",
        result.dynamic_ops_per_s, result.dynamic_time, result.dynamic_rebuilds
    );
    println!(
        "rebuild/insert  {:>12.0} ops/s  ({:?} total, {} full rebuilds)",
        result.naive_ops_per_s, result.naive_time, result.points
    );
    println!("speedup         {:>12.3}x  (answers verified bit-identical)", result.speedup);

    let path = result.report().write_env("BENCH_MAPPING_JSON", "BENCH_mapping.json");
    println!("baseline written to {}", path.display());
}

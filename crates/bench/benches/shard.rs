//! Sharded serving: tile-routed map queries vs. the whole-snapshot
//! fan-out, on a map that outgrows the scanner.
//!
//! Besides the human-readable comparison, the run emits a
//! machine-readable baseline (`BENCH_shard.json` by default, or the path
//! in `$BENCH_SHARD_JSON`) that CI archives per commit, so shard-layer
//! regressions show up as a diffable number.
//!
//! ```text
//! cargo bench -p tigris-bench --bench shard
//! TIGRIS_SHARD_SCALE=20 cargo bench -p tigris-bench --bench shard
//! ```

use tigris_bench::env_usize;
use tigris_bench::shard::run_tiled_vs_whole_comparison;

fn main() {
    let scale = env_usize("TIGRIS_SHARD_SCALE", 10);
    let runs = env_usize("TIGRIS_SHARD_RUNS", 3);
    println!("== sharded serving: {scale}x loop fixture, best of {runs} runs ==");

    let result = run_tiled_vs_whole_comparison(scale, 7, runs);
    println!(
        "map               {} points, {} submaps, {} tiles",
        result.map_points, result.submaps, result.tiles
    );
    println!(
        "routing           {:>8.3} mean covering fraction over {} probes",
        result.mean_covering_fraction, result.probes
    );
    println!(
        "whole snapshot    {:>8.1} probes/s  ({:?} total)",
        result.whole_qps, result.whole_time
    );
    println!(
        "tile-routed       {:>8.1} probes/s  ({:?} total)",
        result.tiled_qps, result.tiled_time
    );
    println!("speedup           {:>8.3}x  (answers verified bit-identical)", result.speedup);

    let path = result.report().write_env("BENCH_SHARD_JSON", "BENCH_shard.json");
    println!("baseline written to {}", path.display());
}

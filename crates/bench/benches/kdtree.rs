//! KD-tree kernel benchmarks on the real host CPU: build, NN and radius
//! search for the canonical tree, the two-stage tree at several heights,
//! and the approximate leader/follower search. These are the measured
//! software numbers behind the Fig. 6 / Fig. 11 workload characterization.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tigris_bench::workload::{dense_frame_pair, height_for_leaf_size};
use tigris_core::{ApproxConfig, ApproxSearcher, KdTree, TwoStageKdTree};
use tigris_geom::Vec3;

fn setup() -> (Vec<Vec3>, Vec<Vec3>) {
    let (points, queries) = dense_frame_pair(42);
    let queries: Vec<Vec3> = queries.into_iter().step_by(64).collect();
    (points, queries)
}

fn bench_build(c: &mut Criterion) {
    let (points, _) = setup();
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    group.bench_function("classic", |b| {
        b.iter(|| KdTree::build(black_box(&points)));
    });
    for leaf in [32usize, 128] {
        let h = height_for_leaf_size(points.len(), leaf);
        group.bench_with_input(BenchmarkId::new("two_stage_leaf", leaf), &h, |b, &h| {
            b.iter(|| TwoStageKdTree::build(black_box(&points), h));
        });
    }
    group.finish();
}

fn bench_nn(c: &mut Criterion) {
    let (points, queries) = setup();
    let classic = KdTree::build(&points);
    let h = height_for_leaf_size(points.len(), 128);
    let two_stage = TwoStageKdTree::build(&points, h);

    let mut group = c.benchmark_group("nn_search");
    group.sample_size(20);
    group.bench_function("classic", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(classic.nn(q));
            }
        });
    });
    group.bench_function("two_stage_leaf128", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(two_stage.nn(q));
            }
        });
    });
    group.bench_function("two_stage_approx", |b| {
        b.iter(|| {
            let mut searcher = ApproxSearcher::new(&two_stage, ApproxConfig::default());
            for &q in &queries {
                black_box(searcher.nn(q));
            }
        });
    });
    group.finish();
}

fn bench_radius(c: &mut Criterion) {
    let (points, queries) = setup();
    let classic = KdTree::build(&points);
    let h = height_for_leaf_size(points.len(), 128);
    let two_stage = TwoStageKdTree::build(&points, h);
    let radius = 0.6;

    let mut group = c.benchmark_group("radius_search");
    group.sample_size(20);
    group.bench_function("classic", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(classic.radius(q, radius));
            }
        });
    });
    group.bench_function("two_stage_leaf128", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(two_stage.radius(q, radius));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_nn, bench_radius);
criterion_main!(benches);

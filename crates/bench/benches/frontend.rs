//! Front-end generations: rewritten SIMD + dense-scratch normal
//! estimation / FPFH vs. the frozen pre-refactor implementations, on
//! the shared city-block scene, with bit-identity asserted before any
//! timing.
//!
//! Besides the human-readable comparison, the run emits a
//! machine-readable baseline (`BENCH_frontend.json` by default, or the
//! path in `$BENCH_FRONTEND_JSON`) that CI archives per commit. The
//! acceptance gate on the same comparison is
//! `tests/frontend_speedup.rs` (≥2x on NE + FPFH combined).
//!
//! ```text
//! cargo bench -p tigris-bench --bench frontend
//! TIGRIS_FRONTEND_POINTS=60000 cargo bench -p tigris-bench --bench frontend
//! ```

use tigris_bench::env_usize;
use tigris_bench::frontend::{run_frontend_comparison, FPFH_RADIUS, NE_RADIUS};
use tigris_core::simd::wide_kernels_selected;

fn main() {
    let n_points = env_usize("TIGRIS_FRONTEND_POINTS", 120_000);
    let runs = env_usize("TIGRIS_FRONTEND_RUNS", 3);

    println!(
        "== front-end generations: {n_points} points, best of {runs}, \
         r_ne = {NE_RADIUS}, r_fpfh = {FPFH_RADIUS} (wide kernels: {}) ==",
        wide_kernels_selected()
    );
    let cmp = run_frontend_comparison(n_points, runs);
    println!(
        "normal estimation  frozen {:>9.4}s | rewritten {:>9.4}s  ({:.2}x)",
        cmp.frozen_ne_seconds,
        cmp.new_ne_seconds,
        cmp.ne_speedup()
    );
    println!(
        "fpfh ({} keypoints) frozen {:>9.4}s | rewritten {:>9.4}s  ({:.2}x)",
        cmp.n_keypoints,
        cmp.frozen_fpfh_seconds,
        cmp.new_fpfh_seconds,
        cmp.fpfh_speedup()
    );
    println!(
        "combined {:.2}x; warm-run scratch growth: {} bytes",
        cmp.combined_speedup(),
        cmp.warm_scratch_bytes_grown
    );

    let path = cmp.report(runs).write_env("BENCH_FRONTEND_JSON", "BENCH_frontend.json");
    println!("baseline written to {}", path.display());
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the Tigris benches use: [`criterion_group!`] /
//! [`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! [`BenchmarkId`] and [`black_box`].
//!
//! Measurement model (simpler than real criterion, deliberately): after
//! one warm-up call, each benchmark runs `sample_size` timed iterations
//! (capped at ~3 s wall clock) and prints mean / min / max per iteration.
//! There is no statistical analysis and no HTML report. A single
//! positional CLI argument acts as a substring filter on
//! `"group/benchmark"` ids, so `cargo bench --bench batch -- two_stage`
//! works the way criterion users expect.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark, so `sample_size(100)` on a slow
/// benchmark doesn't stall the suite.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag CLI argument = substring filter (real criterion
        // behaves the same way for `cargo bench -- <filter>`).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let filter = self.filter.clone();
        run_one(&filter, id, 100, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs `f` as the benchmark `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(&self.criterion.filter, &full, self.sample_size, f);
        self
    }

    /// Runs `f` with `input` as the benchmark `group/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(&self.criterion.filter, &full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility; no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`, e.g. `BenchmarkId::new("two_stage", 128)`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed): populate caches, fault pages, JIT-free but real.
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    filter: &Option<String>,
    id: &str,
    sample_size: usize,
    mut f: F,
) {
    if let Some(needle) = filter {
        if !id.contains(needle.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<50} (no samples recorded)");
        return;
    }
    let n = bencher.samples.len() as u32;
    let mean = bencher.samples.iter().sum::<Duration>() / n;
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    println!(
        "{id:<50} mean {:>12} min {:>12} max {:>12} ({n} samples)",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Collects benchmark functions (`fn(&mut Criterion)`) into a runnable
/// group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main()` running the listed groups (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion { filter: None };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(5);
            g.bench_function("trivial", |b| {
                b.iter(|| black_box(2 + 2));
                ran += 1;
            });
            g.finish();
        }
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("nomatch".into()) };
        let mut ran = 0;
        c.benchmark_group("g").bench_function("skipped", |_b| {
            ran += 1;
        });
        assert_eq!(ran, 0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("two_stage", 128);
        assert_eq!(id.0, "two_stage/128");
    }
}

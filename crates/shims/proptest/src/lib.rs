//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the Tigris workspace's property tests use:
//!
//! * the [`proptest!`] macro, with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * strategies: numeric ranges, tuples of strategies, [`Just`],
//!   [`any`]`::<bool>()`, `prop::bool::ANY`, `prop::collection::vec`
//!   (with a fixed size or a size range), the weighted [`prop_oneof!`]
//!   union, and the [`Strategy::prop_map`] / [`Strategy::prop_filter_map`]
//!   / [`Strategy::prop_flat_map`] / [`Strategy::prop_shuffle`]
//!   combinators,
//! * [`prop_assert!`] / [`prop_assert_eq!`], with optional format messages.
//!
//! Differences from the real crate (intentional; this shim exists so the
//! workspace builds without network access): no shrinking — a failing case
//! is reported verbatim — and the RNG is the workspace's vendored `rand`
//! shim, seeded deterministically from the test name, so failures
//! reproduce across runs.

use std::fmt::Debug;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// How many consecutive generation rejections (`prop_filter_map` returning
/// `None`) abort a test as over-constrained.
const MAX_REJECTS: u32 = 10_000;

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream, and rejections
/// (`None`) cause a retry with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value, or `None` to reject this attempt.
    fn try_generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, rejecting (and regenerating)
    /// whenever `f` returns `None`. `reason` labels the rejection in the
    /// over-constrained panic message.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, reason, f }
    }

    /// Keeps only values for which `f` returns `true`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, reason, f }
    }

    /// Derives a second strategy from each generated value and draws the
    /// final value from it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Randomly permutes generated `Vec` values (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn try_generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.try_generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn try_generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.try_generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn try_generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner.try_generate(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn try_generate(&self, rng: &mut StdRng) -> Option<S2::Value> {
        let seed = self.inner.try_generate(rng)?;
        (self.f)(seed).try_generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
    type Value = Vec<T>;
    fn try_generate(&self, rng: &mut StdRng) -> Option<Vec<T>> {
        let mut v = self.inner.try_generate(rng)?;
        for i in (1..v.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            v.swap(i, j);
        }
        Some(v)
    }
}

/// A weighted union of strategies over one value type; build with
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// An empty union. Generating from it panics; add arms with
    /// [`Union::or`].
    pub fn empty() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds an arm drawn with probability `weight / total_weight`.
    pub fn or(mut self, weight: u32, strategy: impl Strategy<Value = T> + 'static) -> Self {
        assert!(weight > 0, "prop_oneof weights must be positive");
        self.arms.push((weight, Box::new(strategy)));
        self
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("arms", &self.arms.len()).finish()
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn try_generate(&self, rng: &mut StdRng) -> Option<T> {
        let total: u32 = self.arms.iter().map(|(w, _)| w).sum();
        assert!(total > 0, "prop_oneof! needs at least one arm");
        let mut pick = rng.gen_range(0..total);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.try_generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn try_generate(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

impl<T: SampleRange> Strategy for Range<T> {
    type Value = T;
    fn try_generate(&self, rng: &mut StdRng) -> Option<T> {
        Some(rng.gen_range(self.clone()))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn try_generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.try_generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical "any value" strategy (`proptest::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn try_generate(&self, rng: &mut StdRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`
        /// (a fixed `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn try_generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                let n = if self.size.lo + 1 >= self.size.hi {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..self.size.hi)
                };
                (0..n).map(|_| self.element.try_generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::Any;

        /// Uniformly random booleans (`prop::bool::ANY`).
        pub const ANY: Any<bool> = Any(std::marker::PhantomData);
    }
}

/// Length specification for collection strategies: `n` (exact) or
/// `lo..hi` (half-open).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub lo: usize,
    /// Maximum length (exclusive); `lo + 1` for exact sizes.
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// Test-runner plumbing (`proptest::test_runner` subset).
pub mod test_runner {
    use super::{Debug, SeedableRng, StdRng, Strategy, MAX_REJECTS};

    /// Runner configuration (`ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A non-fatal test-case failure (what `prop_assert!` raises).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Generates `config.cases` values from `strategy` and applies `test`
    /// to each, panicking (with the case's Debug form) on the first
    /// failure. Seeded from `name` so failures reproduce.
    pub fn run<S: Strategy>(
        name: &str,
        config: Config,
        strategy: S,
        test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) where
        S::Value: Debug + Clone,
    {
        // FNV-1a over the test name: stable, platform-independent seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(seed);

        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < config.cases {
            let Some(value) = strategy.try_generate(&mut rng) else {
                rejects += 1;
                assert!(
                    rejects < MAX_REJECTS,
                    "proptest '{name}': {MAX_REJECTS} consecutive rejections — strategy over-constrained"
                );
                continue;
            };
            rejects = 0;
            case += 1;
            let shown = value.clone();
            if let Err(e) = test(value) {
                panic!(
                    "proptest '{name}' failed at case {case}/{}: {e}\n    input: {shown:?}",
                    config.cases
                );
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::test_runner::TestCaseError;
    pub use super::{any, prop, Any, Arbitrary, Just, Strategy, Union};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Draws from one of several strategies, optionally weighted. Mirrors
/// `proptest::prop_oneof!`:
///
/// ```ignore
/// prop_oneof![Just(0.0), Just(1.0)]            // uniform
/// prop_oneof![9 => -1.0f64..1.0, 1 => Just(0.0)] // weighted 9:1
/// ```
///
/// All arms must yield the same value type; each arm is boxed into a
/// [`Union`].
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::empty()$(.or($weight as u32, $strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::empty()$(.or(1u32, $strat))+
    };
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, v in prop::collection::vec(0u64..9, 1..5)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategy = ( $( $strat, )+ );
                $crate::test_runner::run(
                    stringify!($name),
                    config,
                    strategy,
                    |( $( $arg, )+ )| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `assert!` that reports the failing generated inputs. Supports an
/// optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // `if cond {} else` rather than `if !cond` keeps clippy's
        // neg_cmp_op_on_partial_ord lint quiet in caller crates when the
        // condition is a float comparison.
        if $cond {
        } else {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports the failing generated inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                l, r, stringify!($left), stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` that reports the failing generated inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` ({} == {})",
                l,
                r,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(
            x in -2.0f64..2.0,
            n in 1usize..5,
            v in prop::collection::vec(0u64..10, 2..6),
            flag in any::<bool>(),
        ) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!(flag == (flag as u8 == 1));
        }

        #[test]
        fn filter_map_rejects_and_retries(
            y in (0.0f64..1.0).prop_filter_map("upper half", |y| (y > 0.5).then_some(y)),
        ) {
            prop_assert!(y > 0.5, "got {y}");
        }

        #[test]
        fn flat_map_generates_dependently(
            v in (1usize..6).prop_flat_map(|n| prop::collection::vec(0u64..10, n)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }

        #[test]
        fn shuffle_permutes_without_loss(
            v in Just((0u64..20).collect::<Vec<u64>>()).prop_shuffle(),
        ) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0u64..20).collect::<Vec<u64>>());
        }

        #[test]
        fn oneof_draws_only_listed_arms(
            x in prop_oneof![2 => Just(1u64), 1 => Just(7u64), 1 => 100u64..103],
        ) {
            prop_assert!(x == 1 || x == 7 || (100..103).contains(&x), "got {x}");
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_input() {
        crate::test_runner::run(
            "always_fails",
            ProptestConfig::with_cases(4),
            (0u64..10,),
            |(_x,)| {
                prop_assert!(false);
                Ok(())
            },
        );
    }
}

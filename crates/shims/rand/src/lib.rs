//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the Tigris workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), [`Rng::gen_range`] over
//! float and integer ranges, and [`Rng::gen_bool`]. The generator is
//! xoshiro256**-based (seeded through SplitMix64), not the real crate's
//! ChaCha12 — streams differ from upstream `rand` for the same seed, but
//! are stable across runs and platforms, which is all the workspace needs.

use std::ops::Range;

/// Types that can seed and construct an RNG.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed, expanding it with
    /// SplitMix64 (the standard xoshiro seeding procedure).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface implemented by all generators in this shim.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open, `low..high`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        // 53 random bits → uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Scalar types `Rng::gen_range` can sample.
pub trait SampleRange: Copy + PartialOrd {
    /// Maps 64 uniform bits onto `range`.
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add((bits % span) as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    fn sample(bits: u64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        let unit = ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleRange for f32 {
    fn sample(bits: u64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        let unit = ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32);
        range.start + unit * (range.end - range.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for the real crate's
    /// ChaCha12-backed `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Blackman & Vigna.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&f));
            let i = rng.gen_range(1..4usize);
            assert!((1..4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "0.25 bias wildly off: {hits}");
    }
}

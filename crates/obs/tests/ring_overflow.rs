//! Ring-buffer overflow accounting, end to end through the environment
//! path: a deliberately tiny `TIGRIS_TRACE_BUF` must drop records
//! (drop-newest) and the loss must be *reported* — in the drained
//! trace, in the process-lifetime total, and in the human summary —
//! never silent.
//!
//! This lives in its own integration-test binary so `init_from_env`
//! (first call wins, process-wide) reads exactly the variables set
//! here.

use tigris_obs::export::summary;
use tigris_obs::{drain, dropped_total, init_from_env, span, TraceMode};

#[test]
fn overflowing_a_tiny_trace_buffer_reports_every_dropped_record() {
    const CAPACITY: u64 = 8;
    const SPANS: u64 = 100;

    std::env::set_var("TIGRIS_TRACE_BUF", CAPACITY.to_string());
    std::env::set_var("TIGRIS_TRACE", "summary");
    std::env::set_var("TIGRIS_RECORDER", "off");
    let mode = init_from_env();
    assert_eq!(mode, TraceMode::Summary, "TIGRIS_TRACE=summary must select the summary exporter");
    assert!(tigris_obs::enabled(), "selecting a mode enables recording");

    let _ = drain();
    let dropped_before = dropped_total();
    // 100 spans on one thread = 200 records (begin + end each) against
    // an 8-record ring: the first 8 stick, the remaining 192 drop.
    for i in 0..SPANS {
        let _span = span!("overflow.request", i = i);
    }
    let trace = drain();

    let expected_dropped = 2 * SPANS - CAPACITY;
    assert_eq!(trace.records.len() as u64, CAPACITY, "ring keeps exactly its capacity");
    assert_eq!(
        trace.dropped, expected_dropped,
        "every record beyond capacity is counted, none silently lost"
    );
    assert!(
        dropped_total() >= dropped_before + expected_dropped,
        "the lifetime total grows by at least this drain's losses"
    );

    // The human summary surfaces both figures — the per-drain drop
    // count and the process-lifetime total.
    let text = summary(&trace, None);
    assert!(
        text.contains(&format!("({expected_dropped} dropped at ring-buffer capacity")),
        "summary must state the drop count, got:\n{text}"
    );
    assert!(
        text.contains("dropped over process lifetime"),
        "summary must state the lifetime total, got:\n{text}"
    );

    // A second drain starts a fresh window: no new records, no new
    // drops carried over.
    let empty = drain();
    assert_eq!(empty.records.len(), 0);
    assert_eq!(empty.dropped, 0, "per-drain drop counts reset; only the lifetime total persists");
}

//! Chrome-trace exporter validity: the output must parse as JSON,
//! every `B` must have a matching `E` (same name, same thread, LIFO
//! order — the nesting invariant Perfetto relies on), and instants
//! must be thread-scoped.

use std::sync::Mutex;

use tigris_obs::json::Json;
use tigris_obs::{drain, event, export, set_enabled, span};

static SERIAL: Mutex<()> = Mutex::new(());

/// Walks a parsed Chrome trace and asserts the B/E stream is balanced
/// per thread with matching names; returns per-kind counts.
fn check_balanced(doc: &Json) -> (usize, usize, usize) {
    let events = doc.as_arr().expect("top level is a JSON array");
    let mut stacks: std::collections::HashMap<i64, Vec<String>> = std::collections::HashMap::new();
    let mut last_ts: std::collections::HashMap<i64, f64> = std::collections::HashMap::new();
    let (mut begins, mut ends, mut instants) = (0, 0, 0);
    for entry in events {
        let ph = entry.get("ph").and_then(Json::as_str).expect("every event has ph");
        if ph == "M" {
            continue;
        }
        let tid = entry.get("tid").and_then(Json::as_f64).expect("every event has tid") as i64;
        let ts = entry.get("ts").and_then(Json::as_f64).expect("every event has ts");
        let name = entry.get("name").and_then(Json::as_str).expect("every event has name");
        let prev = last_ts.entry(tid).or_insert(ts);
        assert!(*prev <= ts, "per-thread timestamps are non-decreasing");
        *prev = ts;
        match ph {
            "B" => {
                begins += 1;
                stacks.entry(tid).or_default().push(name.to_string());
            }
            "E" => {
                ends += 1;
                let open = stacks.entry(tid).or_default().pop();
                assert_eq!(open.as_deref(), Some(name), "E matches the innermost open B");
            }
            "i" => {
                instants += 1;
                assert_eq!(entry.get("s").and_then(Json::as_str), Some("t"));
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "thread {tid} has unclosed spans: {stack:?}");
    }
    (begins, ends, instants)
}

#[test]
fn exporter_emits_valid_nested_chrome_json() {
    let _serial = SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    set_enabled(true);
    let _ = drain();

    let worker = std::thread::spawn(|| {
        for i in 0..3u64 {
            let _outer = span!("chrome.outer", i = i);
            let _inner = span!("chrome.inner", detail = "nested", ratio = 0.5_f64);
            event!("chrome.tick", i = i);
        }
    });
    {
        let _main = span!("chrome.main");
        event!("chrome.note", ok = true);
    }
    worker.join().unwrap();

    // A guard deliberately leaked: its End never records, so the
    // exporter must synthesize the close to keep the stream balanced.
    let leaked = span!("chrome.leaked");
    std::mem::forget(leaked);

    set_enabled(false);
    let trace = drain();

    let rendered = export::chrome_trace_json(&trace);
    let doc = Json::parse(&rendered).expect("chrome trace parses as JSON");
    let (begins, ends, instants) = check_balanced(&doc);
    assert_eq!(begins, 3 + 3 + 1 + 1, "outer x3, inner x3, main, leaked");
    assert_eq!(begins, ends, "every B has a matching E (leaked span synthesized)");
    assert_eq!(instants, 3 + 1);

    // Span args carry the structured fields.
    let events = doc.as_arr().unwrap();
    let inner = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("chrome.inner"))
        .expect("inner span exported");
    let args = inner.get("args").expect("B events carry args");
    assert_eq!(args.get("detail").and_then(Json::as_str), Some("nested"));
    assert_eq!(args.get("ratio").and_then(Json::as_f64), Some(0.5));

    // The JSONL exporter agrees record-for-record and parses per line.
    let jsonl = export::jsonl(&trace);
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), trace.records.len());
    for line in lines {
        let record = Json::parse(line).expect("every JSONL line parses");
        assert!(record.get("ts_ns").is_some() && record.get("name").is_some());
    }

    // The summary names every span and reports the drop count.
    let summary = export::summary(&trace, None);
    assert!(summary.contains("chrome.outer"));
    assert!(summary.contains("0 dropped"));
}

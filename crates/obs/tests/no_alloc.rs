//! The disabled-path contract: with tracing off, `span!`/`event!`
//! sites must not allocate at all — the whole cost is one relaxed
//! atomic load and a branch. Asserted with a counting global
//! allocator; this lives in its own test binary so no other test's
//! allocations interleave.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_spans_and_events_allocate_nothing() {
    tigris_obs::set_enabled(false);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let _guard = tigris_obs::span!("noalloc.span", i = i, half = 0.5_f64, tag = "quiet");
        tigris_obs::event!("noalloc.event", i = i, ok = true);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled instrumentation sites must not allocate");
}

#[test]
fn disabled_field_expressions_are_not_evaluated() {
    tigris_obs::set_enabled(false);
    let mut evaluated = false;
    {
        let _guard = tigris_obs::span!(
            "noalloc.lazy",
            cost = {
                evaluated = true;
                1_u64
            }
        );
    }
    assert!(!evaluated, "field expressions must stay unevaluated while tracing is off");
}

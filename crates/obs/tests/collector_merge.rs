//! Concurrent-collector losslessness: N threads × M spans must merge
//! into exactly N×M begin/end/event records, with per-thread order and
//! parentage intact, and ring-buffer overflow must be counted, never
//! silent.
//!
//! The tests share the process-wide enable flag and collectors, so
//! they serialize on one mutex.

use std::sync::Mutex;

use tigris_obs::{drain, event, set_buffer_capacity, set_enabled, span, RecordKind};

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn n_threads_times_m_spans_merge_losslessly() {
    let _serial = lock();
    const THREADS: u64 = 8;
    const SPANS: u64 = 250;

    set_enabled(true);
    let _ = drain();
    let handles: Vec<_> = (0..THREADS)
        .map(|thread| {
            std::thread::spawn(move || {
                for i in 0..SPANS {
                    let guard = span!("merge.worker", thread = thread, i = i);
                    assert!(guard.id().is_some(), "tracing is enabled");
                    event!("merge.tick", i = i);
                    drop(guard);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    set_enabled(false);
    let trace = drain();

    assert_eq!(trace.dropped, 0, "no overflow at default capacity");
    let begins = trace.find(RecordKind::Begin, "merge.worker");
    let ends = trace.find(RecordKind::End, "merge.worker");
    let events = trace.find(RecordKind::Instant, "merge.tick");
    assert_eq!(begins.len() as u64, THREADS * SPANS, "every begin survives the merge");
    assert_eq!(ends.len() as u64, THREADS * SPANS, "every end survives the merge");
    assert_eq!(events.len() as u64, THREADS * SPANS, "every event survives the merge");

    // Ids are process-unique across threads.
    let mut ids: Vec<u64> = begins.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, THREADS * SPANS, "span ids are unique");

    // Per-thread structure: exactly SPANS spans per worker thread, in
    // recording order (timestamps and sequence numbers monotone), and
    // every event parented under the span open at its recording site.
    let mut tids: Vec<u32> = begins.iter().map(|r| r.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len() as u64, THREADS, "one collector per worker thread");
    for &tid in &tids {
        let thread_records: Vec<_> = trace.records.iter().filter(|r| r.tid == tid).collect();
        assert_eq!(thread_records.len() as u64, SPANS * 3);
        for pair in thread_records.windows(2) {
            assert!(pair[0].ts_ns <= pair[1].ts_ns, "per-thread timestamps are monotone");
            assert!(pair[0].seq < pair[1].seq, "per-thread sequence numbers are monotone");
        }
    }
    for event in &events {
        assert_ne!(event.parent, 0, "events record inside an open span");
        assert!(
            begins.iter().any(|b| b.id == event.parent),
            "event parent is a recorded span begin"
        );
    }
}

#[test]
fn overflow_is_counted_not_silent() {
    let _serial = lock();
    set_buffer_capacity(8);
    set_enabled(true);
    let _ = drain();
    std::thread::spawn(|| {
        for i in 0..100u64 {
            event!("overflow.tick", i = i);
        }
    })
    .join()
    .unwrap();
    set_enabled(false);
    let trace = drain();
    set_buffer_capacity(tigris_obs::DEFAULT_BUFFER_CAPACITY);

    let kept = trace.find(RecordKind::Instant, "overflow.tick").len() as u64;
    assert_eq!(kept, 8, "ring keeps exactly its capacity");
    assert_eq!(trace.dropped, 92, "every dropped record is counted");
}

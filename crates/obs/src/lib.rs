//! **tigris-obs** — the unified observability layer: hierarchical
//! spans and structured events, a metrics registry, and trace
//! exporters, with zero external dependencies.
//!
//! Every other subsystem's telemetry reports through this crate:
//! the pipeline's stage timings, the mapper's counters, the serving
//! layer's latency distribution and tile residency, and the
//! accelerator model's cycle accounting all live in (or mirror into)
//! obs registries, and the full request path is instrumented with
//! [`span!`]/[`event!`] so one serve request yields one connected
//! trace tree from the service entry point down to the KD-tree.
//!
//! # The three pieces
//!
//! * **Spans & events** ([`span!`], [`event!`], [`drain`]) — RAII span
//!   guards with monotonic timestamps and thread ids, recorded into
//!   per-thread ring buffers and merged losslessly at drain time.
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`])
//!   — named, atomically updated, lock-free on the hot path.
//! * **Exporters** ([`export`]) — Chrome trace-event JSON (load in
//!   [Perfetto](https://ui.perfetto.dev)), JSONL streams, and a
//!   human-readable summary, selected by `TIGRIS_TRACE` /
//!   `TIGRIS_TRACE_FILE` ([`init_from_env`], [`flush`]).
//!
//! # Overhead discipline
//!
//! Recording is off by default. The disabled path of every [`span!`]
//! and [`event!`] site is a single relaxed atomic load and branch —
//! field expressions are not evaluated, nothing allocates (asserted by
//! test), and results are bit-identical with tracing on or off because
//! instrumentation only observes. The enabled path appends to a
//! thread-local ring buffer behind an uncontended mutex.
//!
//! ```
//! tigris_obs::set_enabled(true);
//! {
//!     let _guard = tigris_obs::span!("prepare.fpfh", points = 4096_u64);
//!     tigris_obs::event!("fpfh.bin_overflow", bin = 11_u64, weight = 0.25_f64);
//! }
//! let trace = tigris_obs::drain();
//! tigris_obs::set_enabled(false);
//! assert_eq!(trace.find(tigris_obs::RecordKind::Begin, "prepare.fpfh").len(), 1);
//! println!("{}", tigris_obs::export::chrome_trace_json(&trace));
//! ```

#![warn(missing_docs)]

mod clock;
mod collector;
mod config;
pub mod export;
mod hist;
pub mod json;
mod registry;

use std::sync::atomic::{AtomicBool, Ordering};

pub use clock::now_ns;
pub use collector::{
    drain, record_event, set_buffer_capacity, Record, RecordKind, SpanGuard, Trace, Value,
    DEFAULT_BUFFER_CAPACITY,
};
pub use config::{init_from_env, trace_file, trace_mode, TraceMode};
pub use hist::{Histogram, HistogramConfig, HistogramSnapshot};
pub use registry::{global, Counter, Gauge, MetricSnapshot, Registry};

/// The master switch every instrumentation site branches on.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span/event recording is enabled. A relaxed atomic load —
/// this is the *entire* cost of a disabled instrumentation site (plus
/// one branch).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span/event recording on or off (metrics registries are always
/// live — a counter add is cheaper than the branch would be worth).
/// [`init_from_env`] calls this when `TIGRIS_TRACE` selects a mode;
/// tests and benches drive it directly.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Opens a hierarchical span, returning its RAII guard: the span ends
/// when the guard drops, and spans opened while it lives nest under
/// it. Fields are `name = value` pairs of any [`Value`]-convertible
/// type, evaluated **only when tracing is enabled**.
///
/// ```
/// let _guard = tigris_obs::span!("prepare.fpfh", points = 4096_usize, radius = 0.5_f64);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::begin(
                $name,
                &[$((stringify!($key), $crate::Value::from($value))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Records a point-in-time event under the current span. Fields are
/// `name = value` pairs, evaluated **only when tracing is enabled**.
///
/// ```
/// tigris_obs::event!("reloc.candidate", submap = 3_usize, inliers = 17_usize, pass = false);
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::record_event(
                $name,
                &[$((stringify!($key), $crate::Value::from($value))),*],
            );
        }
    };
}

/// Drains the collectors and writes the trace through the exporter
/// selected by [`init_from_env`] (no-op when tracing is off). Returns
/// the path written, if any — the summary mode prints to stderr.
/// Call once at process exit, after the instrumented work.
pub fn flush() -> std::io::Result<Option<std::path::PathBuf>> {
    let mode = trace_mode();
    if mode == TraceMode::Off {
        return Ok(None);
    }
    let trace = drain();
    match (mode, trace_file(mode)) {
        (TraceMode::Chrome, Some(path)) => {
            let mut file = std::fs::File::create(&path)?;
            export::write_chrome_trace(&mut file, &trace)?;
            Ok(Some(path))
        }
        (TraceMode::Jsonl, Some(path)) => {
            let mut file = std::fs::File::create(&path)?;
            export::write_jsonl(&mut file, &trace)?;
            Ok(Some(path))
        }
        _ => {
            eprint!("{}", export::summary(&trace, Some(global())));
            Ok(None)
        }
    }
}

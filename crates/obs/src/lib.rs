//! **tigris-obs** — the unified observability layer: hierarchical
//! spans and structured events, a metrics registry, and trace
//! exporters, with zero external dependencies.
//!
//! Every other subsystem's telemetry reports through this crate:
//! the pipeline's stage timings, the mapper's counters, the serving
//! layer's latency distribution and tile residency, and the
//! accelerator model's cycle accounting all live in (or mirror into)
//! obs registries, and the full request path is instrumented with
//! [`span!`]/[`event!`] so one serve request yields one connected
//! trace tree from the service entry point down to the KD-tree.
//!
//! # The three pieces
//!
//! * **Spans & events** ([`span!`], [`event!`], [`drain`]) — RAII span
//!   guards with monotonic timestamps and thread ids, recorded into
//!   per-thread ring buffers and merged losslessly at drain time.
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`])
//!   — named, atomically updated, lock-free on the hot path.
//! * **Exporters** ([`export`]) — Chrome trace-event JSON (load in
//!   [Perfetto](https://ui.perfetto.dev)), JSONL streams, and a
//!   human-readable summary, selected by `TIGRIS_TRACE` /
//!   `TIGRIS_TRACE_FILE` ([`init_from_env`], [`flush`]).
//!
//! # The operational tier
//!
//! On top of that substrate sits the tier a production fleet runs all
//! day: the **always-on [`recorder`]** (bounded per-thread flight rings
//! of the most recent spans/events, dumpable on demand), the
//! **[`sampler`]** (tail-based retention of complete span trees for
//! slow/failed/marked requests only), the **[`slo`]** engine
//! (declarative [`slo::SloSpec`]s evaluated over sliding registry
//! windows into burn-rate verdicts), and **[`ops`]** (operational
//! snapshots and SLO-triggered post-mortem bundles).
//!
//! # Overhead discipline
//!
//! Full-trace recording is off by default; the flight recorder is on
//! whenever [`init_from_env`] ran (opt out with `TIGRIS_RECORDER=off`)
//! and is CI-bounded to ≤3% of the streaming workload. The disabled
//! path of every [`span!`] and [`event!`] site is a single relaxed
//! atomic load and branch —
//! field expressions are not evaluated, nothing allocates (asserted by
//! test), and results are bit-identical with tracing on or off because
//! instrumentation only observes. The enabled path appends to a
//! thread-local ring buffer behind an uncontended mutex.
//!
//! ```
//! tigris_obs::set_enabled(true);
//! {
//!     let _guard = tigris_obs::span!("prepare.fpfh", points = 4096_u64);
//!     tigris_obs::event!("fpfh.bin_overflow", bin = 11_u64, weight = 0.25_f64);
//! }
//! let trace = tigris_obs::drain();
//! tigris_obs::set_enabled(false);
//! assert_eq!(trace.find(tigris_obs::RecordKind::Begin, "prepare.fpfh").len(), 1);
//! println!("{}", tigris_obs::export::chrome_trace_json(&trace));
//! ```

#![warn(missing_docs)]

mod clock;
mod collector;
mod config;
pub mod export;
mod hist;
pub mod json;
pub mod ops;
pub mod recorder;
mod registry;
pub mod sampler;
pub mod slo;

use std::sync::atomic::{AtomicU8, Ordering};

pub use clock::now_ns;
pub use collector::{
    drain, dropped_total, record_event, set_buffer_capacity, Record, RecordKind, SpanGuard, Trace,
    Value, DEFAULT_BUFFER_CAPACITY,
};
pub use config::{init_from_env, trace_file, trace_mode, TraceMode};
pub use hist::{Histogram, HistogramConfig, HistogramSnapshot};
pub use registry::{global, Counter, Gauge, MetricSnapshot, Registry};

/// The sink mask every instrumentation site branches on. Bit 0 is the
/// drain-trace sink (`TIGRIS_TRACE`, [`drain`]); bit 1 is the always-on
/// flight recorder ([`recorder`]). One byte, one relaxed load: the
/// disabled-site cost is identical to the old single-switch design
/// however many sinks exist.
static STATE: AtomicU8 = AtomicU8::new(0);

pub(crate) const TRACE_SINK: u8 = 1 << 0;
pub(crate) const RECORDER_SINK: u8 = 1 << 1;

/// Whether *any* span/event sink is live. A relaxed atomic load — this
/// is the *entire* cost of a disabled instrumentation site (plus one
/// branch). When it returns `false`, no field expression is evaluated
/// and nothing is recorded anywhere.
#[inline(always)]
pub fn enabled() -> bool {
    STATE.load(Ordering::Relaxed) != 0
}

/// The active sink mask (see [`TRACE_SINK`] / [`RECORDER_SINK`] bits).
#[inline(always)]
pub(crate) fn sinks() -> u8 {
    STATE.load(Ordering::Relaxed)
}

/// Whether the drain-trace sink is on (the sink [`drain`] empties and
/// [`flush`] exports).
#[inline(always)]
pub fn trace_on() -> bool {
    STATE.load(Ordering::Relaxed) & TRACE_SINK != 0
}

/// Whether the always-on flight recorder is on (see [`recorder`]).
#[inline(always)]
pub fn recorder_on() -> bool {
    STATE.load(Ordering::Relaxed) & RECORDER_SINK != 0
}

/// Turns the drain-trace sink on or off (metrics registries are always
/// live — a counter add is cheaper than the branch would be worth).
/// [`init_from_env`] calls this when `TIGRIS_TRACE` selects a mode;
/// tests and benches drive it directly. The flight recorder is switched
/// independently by [`set_recorder`].
pub fn set_enabled(on: bool) {
    set_sink(TRACE_SINK, on);
}

/// Turns the always-on flight recorder on or off. [`init_from_env`]
/// turns it on by default (`TIGRIS_RECORDER=off` opts out); tests and
/// benches drive it directly.
pub fn set_recorder(on: bool) {
    set_sink(RECORDER_SINK, on);
}

fn set_sink(bit: u8, on: bool) {
    if on {
        STATE.fetch_or(bit, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!bit, Ordering::Relaxed);
    }
}

/// Opens a hierarchical span, returning its RAII guard: the span ends
/// when the guard drops, and spans opened while it lives nest under
/// it. Fields are `name = value` pairs of any [`Value`]-convertible
/// type, evaluated **only when tracing is enabled**.
///
/// ```
/// let _guard = tigris_obs::span!("prepare.fpfh", points = 4096_usize, radius = 0.5_f64);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::begin(
                $name,
                &[$((stringify!($key), $crate::Value::from($value))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Records a point-in-time event under the current span. Fields are
/// `name = value` pairs, evaluated **only when tracing is enabled**.
///
/// ```
/// tigris_obs::event!("reloc.candidate", submap = 3_usize, inliers = 17_usize, pass = false);
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::record_event(
                $name,
                &[$((stringify!($key), $crate::Value::from($value))),*],
            );
        }
    };
}

/// Drains the collectors and writes the trace through the exporter
/// selected by [`init_from_env`] (no-op when tracing is off). Returns
/// the path written, if any — the summary mode prints to stderr.
/// Call once at process exit, after the instrumented work.
pub fn flush() -> std::io::Result<Option<std::path::PathBuf>> {
    let mode = trace_mode();
    if mode == TraceMode::Off {
        return Ok(None);
    }
    let trace = drain();
    match (mode, trace_file(mode)) {
        (TraceMode::Chrome, Some(path)) => {
            let mut file = std::fs::File::create(&path)?;
            export::write_chrome_trace(&mut file, &trace)?;
            Ok(Some(path))
        }
        (TraceMode::Jsonl, Some(path)) => {
            let mut file = std::fs::File::create(&path)?;
            export::write_jsonl(&mut file, &trace)?;
            Ok(Some(path))
        }
        _ => {
            eprint!("{}", export::summary(&trace, Some(global())));
            Ok(None)
        }
    }
}

/// Unit tests across this crate's modules toggle the process-global
/// sink mask and share the process-wide rings; one crate-wide lock
/// keeps them from interleaving.
#[cfg(test)]
pub(crate) mod testsync {
    use std::sync::{Mutex, MutexGuard};

    static SERIAL: Mutex<()> = Mutex::new(());

    pub(crate) fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

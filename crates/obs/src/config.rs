//! Environment-driven tracing configuration: `TIGRIS_TRACE` selects
//! the export mode (and enables recording), `TIGRIS_TRACE_FILE`
//! overrides the output path, `TIGRIS_TRACE_BUF` sizes the per-thread
//! ring buffers. This replaces the old ad-hoc `TIGRIS_SERVE_DEBUG`
//! eprintln switch.
//!
//! The always-on flight recorder ([`crate::recorder`]) is switched
//! here too: it defaults **on** whenever [`init_from_env`] runs (every
//! service, the CLI and the examples call it at startup) — that is the
//! production posture — and `TIGRIS_RECORDER=off` opts out;
//! `TIGRIS_RECORDER_BUF` sizes its per-thread window in records.

use std::path::PathBuf;
use std::sync::OnceLock;

/// Which exporter [`crate::flush`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Recording disabled; `flush` is a no-op.
    #[default]
    Off,
    /// Chrome trace-event JSON (load the file in Perfetto or
    /// `chrome://tracing`).
    Chrome,
    /// One JSON object per record, streamed line-by-line.
    Jsonl,
    /// Human-readable span/metric summary to stderr.
    Summary,
}

impl TraceMode {
    fn parse(raw: &str) -> TraceMode {
        match raw.trim().to_ascii_lowercase().as_str() {
            "chrome" | "on" | "1" | "true" => TraceMode::Chrome,
            "jsonl" => TraceMode::Jsonl,
            "summary" => TraceMode::Summary,
            _ => TraceMode::Off,
        }
    }

    /// The default output path for the mode (`None` writes to stderr).
    pub fn default_path(self) -> Option<PathBuf> {
        match self {
            TraceMode::Chrome => Some(PathBuf::from("tigris-trace.json")),
            TraceMode::Jsonl => Some(PathBuf::from("tigris-trace.jsonl")),
            TraceMode::Off | TraceMode::Summary => None,
        }
    }
}

static MODE: OnceLock<TraceMode> = OnceLock::new();

/// Reads `TIGRIS_TRACE`/`TIGRIS_TRACE_BUF` (and the flight recorder's
/// `TIGRIS_RECORDER`/`TIGRIS_RECORDER_BUF`) once, enables recording
/// when a mode is selected, turns the flight recorder on unless opted
/// out, and returns the mode. Idempotent: the first call wins; later
/// calls return the cached mode without re-reading the environment.
/// Entry points (services, the CLI, examples) call this at startup and
/// [`crate::flush`] at exit.
pub fn init_from_env() -> TraceMode {
    *MODE.get_or_init(|| {
        if let Ok(raw) = std::env::var("TIGRIS_TRACE_BUF") {
            if let Ok(records) = raw.trim().parse::<usize>() {
                crate::set_buffer_capacity(records);
            }
        }
        if let Ok(raw) = std::env::var("TIGRIS_RECORDER_BUF") {
            if let Ok(records) = raw.trim().parse::<usize>() {
                crate::recorder::set_flight_capacity(records);
            }
        }
        // The flight recorder is the always-on tier: default on, with
        // an explicit opt-out for overhead-sensitive comparisons.
        let recorder = std::env::var("TIGRIS_RECORDER")
            .map(|raw| !matches!(raw.trim().to_ascii_lowercase().as_str(), "off" | "0" | "false"))
            .unwrap_or(true);
        if recorder {
            crate::set_recorder(true);
        }
        let mode =
            std::env::var("TIGRIS_TRACE").map(|raw| TraceMode::parse(&raw)).unwrap_or_default();
        if mode != TraceMode::Off {
            crate::set_enabled(true);
        }
        mode
    })
}

/// The mode selected by [`init_from_env`] (`Off` if never initialized).
pub fn trace_mode() -> TraceMode {
    MODE.get().copied().unwrap_or_default()
}

/// The output path for `mode`: `TIGRIS_TRACE_FILE` if set, else the
/// mode's default (`None` = stderr).
pub fn trace_file(mode: TraceMode) -> Option<PathBuf> {
    match std::env::var_os("TIGRIS_TRACE_FILE") {
        Some(path) => Some(PathBuf::from(path)),
        None => mode.default_path(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_strings_parse() {
        assert_eq!(TraceMode::parse("chrome"), TraceMode::Chrome);
        assert_eq!(TraceMode::parse("ON"), TraceMode::Chrome);
        assert_eq!(TraceMode::parse("jsonl"), TraceMode::Jsonl);
        assert_eq!(TraceMode::parse("summary"), TraceMode::Summary);
        assert_eq!(TraceMode::parse("off"), TraceMode::Off);
        assert_eq!(TraceMode::parse("0"), TraceMode::Off);
        assert_eq!(TraceMode::parse(""), TraceMode::Off);
    }
}

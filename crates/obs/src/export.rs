//! Exporters over a drained [`Trace`]: Chrome trace-event JSON
//! (Perfetto / `chrome://tracing`), a JSONL record stream, and a
//! human-readable summary.

use std::collections::HashMap;
use std::io::{self, Write};

use crate::collector::{Record, RecordKind, Trace, Value};
use crate::registry::{MetricSnapshot, Registry};

/// Escapes a string into the body of a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

fn push_value(out: &mut String, value: &Value) {
    match value {
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) if v.is_finite() => out.push_str(&format!("{v}")),
        Value::F64(v) => push_json_str(out, &format!("{v}")),
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::Str(v) => push_json_str(out, v),
    }
}

fn push_fields_object(out: &mut String, fields: &[(&'static str, Value)], extra: &[(&str, u64)]) {
    out.push('{');
    let mut first = true;
    for (key, value) in fields {
        if !first {
            out.push(',');
        }
        first = false;
        push_json_str(out, key);
        out.push(':');
        push_value(out, value);
    }
    for (key, value) in extra {
        if !first {
            out.push(',');
        }
        first = false;
        push_json_str(out, key);
        out.push(':');
        out.push_str(&value.to_string());
    }
    out.push('}');
}

/// The optional `args` of one Chrome event: the record's typed fields
/// plus exporter-synthesized numeric extras (span/parent ids).
type ChromeArgs<'a> = (&'a [(&'static str, Value)], &'a [(&'a str, u64)]);

fn push_chrome_event(
    out: &mut String,
    name: &str,
    ph: char,
    ts_ns: u64,
    tid: u32,
    args: Option<ChromeArgs<'_>>,
) {
    out.push_str("{\"name\":");
    push_json_str(out, name);
    out.push_str(",\"cat\":\"tigris\",\"ph\":\"");
    out.push(ph);
    out.push('"');
    if ph == 'i' {
        // Instant events need a scope; thread scope renders as a tick
        // on the emitting thread's track.
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(&format!(",\"ts\":{:.3},\"pid\":1,\"tid\":{tid}", ts_ns as f64 / 1000.0));
    if let Some((fields, extra)) = args {
        out.push_str(",\"args\":");
        push_fields_object(out, fields, extra);
    }
    out.push('}');
}

/// One sampled metric value for Chrome `"C"` (counter) export — a
/// point on a named timeline. Histograms sample as several series
/// (`name.count`, `name.p50`, `name.p99`); see [`metric_samples`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Sample instant ([`crate::now_ns`]).
    pub ts_ns: u64,
    /// Timeline name (Perfetto groups samples by it).
    pub name: String,
    /// Sampled value.
    pub value: f64,
}

/// Samples every metric of `registry` at `ts_ns` into [`MetricSample`]s
/// — counters and gauges one series each, histograms as `.count`,
/// `.p50` and `.p99` series. Output order follows the registry's
/// sorted-by-name snapshot. Feed accumulated samples to
/// [`chrome_trace_json_with_counters`] for metric timelines alongside
/// the spans.
pub fn metric_samples(registry: &Registry, ts_ns: u64) -> Vec<MetricSample> {
    let mut samples = Vec::new();
    for (name, value) in registry.snapshot() {
        match value {
            MetricSnapshot::Counter(v) => {
                samples.push(MetricSample { ts_ns, name, value: v as f64 });
            }
            MetricSnapshot::Gauge(v) => {
                samples.push(MetricSample { ts_ns, name, value: v as f64 });
            }
            MetricSnapshot::Histogram(h) => {
                for (suffix, v) in [("count", h.count), ("p50", h.p50), ("p99", h.p99)] {
                    samples.push(MetricSample {
                        ts_ns,
                        name: format!("{name}.{suffix}"),
                        value: v as f64,
                    });
                }
            }
        }
    }
    samples
}

fn push_counter_event(out: &mut String, sample: &MetricSample) {
    out.push_str("{\"name\":");
    push_json_str(out, &sample.name);
    out.push_str(&format!(
        ",\"cat\":\"tigris\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":1,\"args\":{{\"value\":{}}}}}",
        sample.ts_ns as f64 / 1000.0,
        if sample.value.is_finite() { sample.value } else { 0.0 }
    ));
}

/// [`chrome_trace_json`] plus Chrome `"C"` (counter) events for the
/// given metric samples, so Perfetto renders metric timelines alongside
/// the span tracks. Counter events carry no `tid` (they are
/// process-scoped) and cannot unbalance the `B`/`E` stream.
pub fn chrome_trace_json_with_counters(trace: &Trace, samples: &[MetricSample]) -> String {
    let mut out = chrome_trace_json(trace);
    if samples.is_empty() {
        return out;
    }
    // Re-open the closed array and append the counter events.
    let body_end = out.rfind("\n]").expect("chrome trace ends with its array close");
    out.truncate(body_end);
    for sample in samples {
        out.push_str(",\n");
        push_counter_event(&mut out, sample);
    }
    out.push_str("\n]\n");
    out
}

/// Renders a trace as a Chrome trace-event JSON array. Spans become
/// `B`/`E` duration events nested per thread; events become thread-
/// scoped instants. Span guards still open at drain time get a
/// synthesized `E` at the trace's final timestamp, and an `E` whose
/// `B` was lost to ring-buffer overflow is skipped — every emitted `B`
/// therefore has exactly one matching `E`.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.records.len() * 96 + 128);
    out.push_str("[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"tigris\"}}",
    );
    let mut open: HashMap<u32, Vec<(u64, &'static str)>> = HashMap::new();
    let mut last_ts = 0u64;
    for record in &trace.records {
        last_ts = last_ts.max(record.ts_ns);
        match record.kind {
            RecordKind::Begin => {
                out.push_str(",\n");
                let extra = [("span_id", record.id), ("parent", record.parent)];
                push_chrome_event(
                    &mut out,
                    record.name,
                    'B',
                    record.ts_ns,
                    record.tid,
                    Some((&record.fields, &extra)),
                );
                open.entry(record.tid).or_default().push((record.id, record.name));
            }
            RecordKind::End => {
                let stack = open.entry(record.tid).or_default();
                if stack.last().map(|&(id, _)| id) == Some(record.id) {
                    stack.pop();
                    out.push_str(",\n");
                    push_chrome_event(&mut out, record.name, 'E', record.ts_ns, record.tid, None);
                }
                // Otherwise the matching `B` overflowed out of the ring:
                // dropping the `E` keeps the stream balanced.
            }
            RecordKind::Instant => {
                out.push_str(",\n");
                let extra = [("event_id", record.id), ("parent", record.parent)];
                push_chrome_event(
                    &mut out,
                    record.name,
                    'i',
                    record.ts_ns,
                    record.tid,
                    Some((&record.fields, &extra)),
                );
            }
        }
    }
    // Close spans still open at drain time (guards alive on some
    // thread), innermost first so per-thread nesting stays balanced.
    let mut open: Vec<(u32, Vec<(u64, &'static str)>)> = open.into_iter().collect();
    open.sort_by_key(|&(tid, _)| tid);
    for (tid, stack) in open {
        for (_, name) in stack.into_iter().rev() {
            out.push_str(",\n");
            push_chrome_event(&mut out, name, 'E', last_ts, tid, None);
        }
    }
    out.push_str("\n]\n");
    out
}

/// Writes [`chrome_trace_json`] to `writer`.
pub fn write_chrome_trace<W: Write>(writer: &mut W, trace: &Trace) -> io::Result<()> {
    writer.write_all(chrome_trace_json(trace).as_bytes())
}

fn kind_tag(kind: RecordKind) -> &'static str {
    match kind {
        RecordKind::Begin => "B",
        RecordKind::End => "E",
        RecordKind::Instant => "i",
    }
}

fn jsonl_line(out: &mut String, record: &Record) {
    out.push_str(&format!(
        "{{\"ts_ns\":{},\"tid\":{},\"seq\":{},\"kind\":\"{}\",\"name\":",
        record.ts_ns,
        record.tid,
        record.seq,
        kind_tag(record.kind)
    ));
    push_json_str(out, record.name);
    out.push_str(&format!(",\"id\":{},\"parent\":{},\"fields\":", record.id, record.parent));
    push_fields_object(out, &record.fields, &[]);
    out.push_str("}\n");
}

/// Renders a trace as JSONL: one JSON object per record, in merged
/// timestamp order.
pub fn jsonl(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.records.len() * 96);
    for record in &trace.records {
        jsonl_line(&mut out, record);
    }
    out
}

/// Writes [`jsonl`] to `writer`.
pub fn write_jsonl<W: Write>(writer: &mut W, trace: &Trace) -> io::Result<()> {
    writer.write_all(jsonl(trace).as_bytes())
}

/// Renders a human-readable roll-up: per-span-name counts and total
/// self-inclusive time, per-event-name counts, the overflow count, and
/// (when given) a registry snapshot.
pub fn summary(trace: &Trace, registry: Option<&Registry>) -> String {
    let mut begins: HashMap<u64, u64> = HashMap::new();
    let mut spans: HashMap<&'static str, (u64, u64)> = HashMap::new();
    let mut events: HashMap<&'static str, u64> = HashMap::new();
    for record in &trace.records {
        match record.kind {
            RecordKind::Begin => {
                begins.insert(record.id, record.ts_ns);
            }
            RecordKind::End => {
                if let Some(start) = begins.remove(&record.id) {
                    let entry = spans.entry(record.name).or_default();
                    entry.0 += 1;
                    entry.1 += record.ts_ns.saturating_sub(start);
                }
            }
            RecordKind::Instant => *events.entry(record.name).or_default() += 1,
        }
    }
    let mut out = String::new();
    out.push_str("== tigris-obs summary ==\n");
    out.push_str(&format!(
        "records: {} ({} dropped at ring-buffer capacity; {} dropped over process lifetime)\n",
        trace.records.len(),
        trace.dropped,
        crate::dropped_total()
    ));
    let mut spans: Vec<_> = spans.into_iter().collect();
    spans.sort_by_key(|&(name, _)| name);
    if !spans.is_empty() {
        out.push_str("spans:\n");
        for (name, (count, total_ns)) in spans {
            out.push_str(&format!(
                "  {name:<28} x{count:<6} total {:.3} ms\n",
                total_ns as f64 / 1e6
            ));
        }
    }
    let mut events: Vec<_> = events.into_iter().collect();
    events.sort_by_key(|&(name, _)| name);
    if !events.is_empty() {
        out.push_str("events:\n");
        for (name, count) in events {
            out.push_str(&format!("  {name:<28} x{count}\n"));
        }
    }
    if let Some(registry) = registry {
        let snapshot = registry.snapshot();
        if !snapshot.is_empty() {
            out.push_str("metrics:\n");
            for (name, value) in snapshot {
                match value {
                    MetricSnapshot::Counter(v) => {
                        out.push_str(&format!("  {name:<28} counter   {v}\n"));
                    }
                    MetricSnapshot::Gauge(v) => {
                        out.push_str(&format!("  {name:<28} gauge     {v}\n"));
                    }
                    MetricSnapshot::Histogram(h) => {
                        out.push_str(&format!(
                            "  {name:<28} histogram count {} p50 {} p99 {} max {}\n",
                            h.count, h.p50, h.p99, h.max
                        ));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::testsync::serial;

    /// Walks a parsed Chrome trace asserting per-tid `B`/`E` balance;
    /// returns the count of events with phase `ph`.
    fn assert_balanced_and_count(doc: &Json, ph: &str) -> usize {
        let events = doc.as_arr().expect("chrome trace is a JSON array");
        let mut depth: HashMap<i64, i64> = HashMap::new();
        let mut matched = 0;
        for ev in events {
            let phase = ev.get("ph").and_then(Json::as_str).expect("event has ph");
            if phase == ph {
                matched += 1;
            }
            let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(-1.0) as i64;
            match phase {
                "B" => *depth.entry(tid).or_default() += 1,
                "E" => {
                    let d = depth.entry(tid).or_default();
                    *d -= 1;
                    assert!(*d >= 0, "E without B on tid {tid}");
                }
                _ => {}
            }
        }
        assert!(depth.values().all(|&d| d == 0), "unclosed spans: {depth:?}");
        matched
    }

    #[test]
    fn counter_events_interleave_without_unbalancing_the_trace() {
        let _guard = serial();
        crate::drain();
        crate::set_enabled(true);
        {
            let _span = crate::span!("export.counter_test", step = 1_u64);
            crate::event!("export.counter_tick");
        }
        crate::set_enabled(false);
        let trace = crate::drain();
        let registry = Registry::new();
        registry.counter("export.requests").add(7);
        registry.gauge("export.resident").set(-3);
        registry.histogram("export.lat").record(42);
        let t = crate::now_ns();
        let mut samples = metric_samples(&registry, t);
        samples.extend(metric_samples(&registry, t + 1_000_000));
        let json = chrome_trace_json_with_counters(&trace, &samples);
        let doc = Json::parse(&json).expect("counter-augmented trace must stay valid JSON");
        assert_balanced_and_count(&doc, "B");
        let c_events = assert_balanced_and_count(&doc, "C");
        // 1 counter + 1 gauge + 3 histogram series, sampled twice.
        assert_eq!(c_events, 10, "every sample must become one C event");
        let events = doc.as_arr().unwrap();
        let sample = events
            .iter()
            .find(|ev| {
                ev.get("ph").and_then(Json::as_str) == Some("C")
                    && ev.get("name").and_then(Json::as_str) == Some("export.requests")
            })
            .expect("counter series present");
        assert_eq!(
            sample.get("args").and_then(|a| a.get("value")).and_then(Json::as_f64),
            Some(7.0)
        );
        // Without samples the output is byte-identical to the plain export.
        assert_eq!(chrome_trace_json_with_counters(&trace, &[]), chrome_trace_json(&trace));
    }

    #[test]
    fn metric_samples_follow_snapshot_order_and_expand_histograms() {
        let registry = Registry::new();
        registry.histogram("b.hist").record(5);
        registry.counter("a.count").inc();
        let samples = metric_samples(&registry, 123);
        let names: Vec<&str> = samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a.count", "b.hist.count", "b.hist.p50", "b.hist.p99"]);
        assert!(samples.iter().all(|s| s.ts_ns == 123));
    }
}

//! The process-wide monotonic clock every span and event timestamps
//! against: a single [`Instant`] epoch captured on first use, so
//! timestamps from every thread share one origin and subtract safely.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (the first call to any
/// obs timestamping function). Monotonic, shared across threads.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

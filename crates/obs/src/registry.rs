//! The metrics registry: named counters, gauges and histograms,
//! get-or-registered by dot-namespaced name and snapshotted in sorted
//! order.
//!
//! Two scopes exist deliberately:
//!
//! * [`global()`] — one process-wide registry for subsystems that are
//!   themselves process-wide (the pipeline's stage timings, the
//!   accelerator model's cycle accounting).
//! * [`Registry::new`] — instantiable registries owned by a service or
//!   mapper instance, so many services in one process (the normal case
//!   in tests and multi-tenant serving) meter independently.
//!
//! Handles are `Arc`s: register once, cache the handle, update with a
//! single atomic op on the hot path — name lookup never happens per
//! frame.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{Histogram, HistogramConfig, HistogramSnapshot};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1; returns the new total.
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Adds `v`.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (resident bytes, active sessions).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `v` (negative to decrease); returns the new value.
    pub fn add(&self, v: i64) -> i64 {
        self.0.fetch_add(v, Ordering::Relaxed) + v
    }

    /// Raises the value to at least `v` (peak tracking).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A metric's value at one instant, as produced by
/// [`Registry::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricSnapshot {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram headline numbers.
    Histogram(HistogramSnapshot),
}

/// A named collection of metrics; see the module docs above for the
/// global-vs-instance scoping.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().expect("obs registry lock poisoned");
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => c,
            other => panic!("metric '{name}' is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric '{name}' is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram registered under `name` with the default shape
    /// ([`HistogramConfig::default`]), creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, HistogramConfig::default())
    }

    /// The histogram registered under `name`, creating it with `config`
    /// on first use (an existing histogram keeps its original shape).
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram_with(&self, name: &str, config: HistogramConfig) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new(config)))) {
            Metric::Histogram(h) => h,
            other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
        }
    }

    /// The counter registered under `name`, **without** creating it —
    /// `None` if absent or of another kind. Watchers (the SLO engine)
    /// use these lookups so observing a metric never brings it into
    /// existence.
    pub fn lookup_counter(&self, name: &str) -> Option<Arc<Counter>> {
        match self.metrics.lock().expect("obs registry lock poisoned").get(name) {
            Some(Metric::Counter(c)) => Some(Arc::clone(c)),
            _ => None,
        }
    }

    /// The gauge registered under `name`, without creating it (see
    /// [`Registry::lookup_counter`]).
    pub fn lookup_gauge(&self, name: &str) -> Option<Arc<Gauge>> {
        match self.metrics.lock().expect("obs registry lock poisoned").get(name) {
            Some(Metric::Gauge(g)) => Some(Arc::clone(g)),
            _ => None,
        }
    }

    /// The histogram registered under `name`, without creating it (see
    /// [`Registry::lookup_counter`]).
    pub fn lookup_histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        match self.metrics.lock().expect("obs registry lock poisoned").get(name) {
            Some(Metric::Histogram(h)) => Some(Arc::clone(h)),
            _ => None,
        }
    }

    /// Every metric's value at one instant, **sorted by name** — a
    /// guarantee, not an accident: snapshot order is deterministic
    /// across runs and processes (names sort lexicographically), so
    /// snapshot diffs, the ops exporter's tables and golden tests are
    /// stable. Guarded by a regression test.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let metrics = self.metrics.lock().expect("obs registry lock poisoned");
        metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect()
    }
}

/// The process-wide registry; see the module docs above for when to
/// use it versus an instance registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("x.count");
        let b = r.counter("x.count");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let r = Registry::new();
        r.counter("b.count").add(5);
        r.gauge("a.level").set(-2);
        r.histogram("c.dist").record(7);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.level", "b.count", "c.dist"]);
        assert_eq!(snap[0].1, MetricSnapshot::Gauge(-2));
        assert_eq!(snap[1].1, MetricSnapshot::Counter(5));
        match snap[2].1 {
            MetricSnapshot::Histogram(h) => assert_eq!((h.count, h.p50), (1, 7)),
            ref other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_order_is_deterministic_regardless_of_registration_order() {
        // The documented guarantee: sorted by name, stable across runs.
        // Register in two different orders and require identical
        // snapshot shapes.
        let names = ["z.last", "a.first", "m.middle", "a.second", "z.apex"];
        let forward = Registry::new();
        for n in &names {
            forward.counter(n).inc();
        }
        let backward = Registry::new();
        for n in names.iter().rev() {
            backward.counter(n).inc();
        }
        let f: Vec<String> = forward.snapshot().into_iter().map(|(n, _)| n).collect();
        let b: Vec<String> = backward.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(f, b, "snapshot order must not depend on registration order");
        let mut sorted = f.clone();
        sorted.sort();
        assert_eq!(f, sorted, "snapshot must be sorted by name");
    }

    #[test]
    fn lookups_do_not_create_and_respect_kinds() {
        let r = Registry::new();
        assert!(r.lookup_counter("ghost").is_none());
        assert!(r.snapshot().is_empty(), "lookup must not create the metric");
        r.counter("real").add(3);
        assert_eq!(r.lookup_counter("real").unwrap().get(), 3);
        assert!(r.lookup_gauge("real").is_none(), "kind mismatch yields None, not a panic");
        assert!(r.lookup_histogram("real").is_none());
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let r = std::sync::Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("shared");
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(r.counter("shared").get(), 80_000);
    }
}

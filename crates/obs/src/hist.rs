//! A lock-free, log-bucketed (HDR-style) histogram over `u64` ticks.
//!
//! # Bucket layout and the error bound
//!
//! With `n = sub_bucket_bits`:
//!
//! * **Group 0** covers `[0, 2^n)` with one slot per tick — every value
//!   below `2^n` is stored **exactly**.
//! * **Group g ≥ 1** covers `[2^(n+g-1), 2^(n+g))` with `2^(n-1)` slots
//!   of width `2^g` — a recorded value is attributed to its slot's
//!   lower bound, so the quantization error is `< 2^g`, i.e. a
//!   **relative error below `2^-(n-1)`** everywhere above the exact
//!   region.
//!
//! Percentiles are nearest-rank over the slot counts and return slot
//! lower bounds, which makes them *exact on bucket boundaries*: a
//! value that is itself a slot lower bound (in particular any value in
//! the exact region) is reported back bit-for-bit. `count`, `sum`,
//! `min` and `max` are tracked exactly (atomics on the raw values), so
//! the mean has no quantization error at all.
//!
//! Groups allocate lazily on first touch, so a histogram whose values
//! stay in one region costs only that region's slots.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Histogram shape: how many low-order bits are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramConfig {
    /// `n` in the layout above: values below `2^n` ticks are exact;
    /// above, relative error stays below `2^-(n-1)`. Must be in
    /// `1..=32`.
    pub sub_bucket_bits: u32,
}

impl Default for HistogramConfig {
    /// 7 sub-bucket bits: exact below 128 ticks, relative error below
    /// `2^-6` (≈1.6%) above — the registry's general-purpose shape.
    fn default() -> Self {
        HistogramConfig { sub_bucket_bits: 7 }
    }
}

/// The histogram itself; see the module docs above for the layout
/// and error bound. All operations are `&self` and lock-free.
pub struct Histogram {
    bits: u32,
    groups: Box<[OnceLock<Box<[AtomicU32]>>]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("sub_bucket_bits", &self.bits)
            .field("count", &self.count())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram with the given shape.
    pub fn new(config: HistogramConfig) -> Self {
        let bits = config.sub_bucket_bits.clamp(1, 32);
        let groups = (0..=(64 - bits)).map(|_| OnceLock::new()).collect::<Vec<_>>();
        Histogram {
            bits,
            groups: groups.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn slots_in_group(&self, group: usize) -> usize {
        if group == 0 {
            1usize << self.bits
        } else {
            1usize << (self.bits - 1)
        }
    }

    /// `(group, slot)` for a value.
    fn locate(&self, value: u64) -> (usize, usize) {
        if value < (1u64 << self.bits) {
            (0, value as usize)
        } else {
            let top = 63 - value.leading_zeros();
            let group = (top - self.bits + 1) as usize;
            let slot = ((value >> group) - (1u64 << (self.bits - 1))) as usize;
            (group, slot)
        }
    }

    /// Lower bound of a `(group, slot)` — the value percentiles report.
    fn lower_bound(&self, group: usize, slot: usize) -> u64 {
        if group == 0 {
            slot as u64
        } else {
            ((slot as u64) + (1u64 << (self.bits - 1))) << group
        }
    }

    /// Records one value (in ticks).
    pub fn record(&self, value: u64) {
        let (group, slot) = self.locate(value);
        let slots = self.groups[group]
            .get_or_init(|| (0..self.slots_in_group(group)).map(|_| AtomicU32::new(0)).collect());
        slots[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let min = self.min.load(Ordering::Relaxed);
        if min == u64::MAX {
            0
        } else {
            min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            None
        } else {
            Some(self.sum() as f64 / count as f64)
        }
    }

    /// Nearest-rank percentile, reported as the holding slot's lower
    /// bound (exact for values in the exact region or on a bucket
    /// boundary; otherwise low by less than the relative error bound).
    ///
    /// `p` outside `[0, 1]` clamps to the extremes; `NaN` reports the
    /// maximum — the same conventions the serving layer's recorder has
    /// always used.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = if p.is_nan() {
            count
        } else {
            let raw = (p * count as f64).ceil();
            if raw.is_nan() || raw >= count as f64 {
                count
            } else if raw <= 1.0 {
                1
            } else {
                raw as u64
            }
        };
        let mut cumulative = 0u64;
        for group in 0..self.groups.len() {
            let Some(slots) = self.groups[group].get() else { continue };
            for (slot, c) in slots.iter().enumerate() {
                let c = c.load(Ordering::Relaxed) as u64;
                if c == 0 {
                    continue;
                }
                cumulative += c;
                if cumulative >= rank {
                    return Some(self.lower_bound(group, slot));
                }
            }
        }
        // A concurrent recorder bumped `count` before its slot write
        // landed; the max is the best consistent answer.
        Some(self.max())
    }

    /// Adds every value recorded in `other` into `self`, slot-wise —
    /// the per-thread-shard merge: recording into N thread-local
    /// histograms and merging equals recording into one (exactly, for
    /// count/sum/min/max; slot-for-slot for percentiles).
    ///
    /// # Panics
    ///
    /// If the shapes (`sub_bucket_bits`) differ.
    pub fn merge_from(&self, other: &Histogram) {
        assert_eq!(self.bits, other.bits, "histogram shapes must match to merge");
        for (group, lock) in other.groups.iter().enumerate() {
            let Some(src) = lock.get() else { continue };
            let dst = self.groups[group].get_or_init(|| {
                (0..self.slots_in_group(group)).map(|_| AtomicU32::new(0)).collect()
            });
            for (slot, c) in src.iter().enumerate() {
                let c = c.load(Ordering::Relaxed);
                if c != 0 {
                    dst[slot].fetch_add(c, Ordering::Relaxed);
                }
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The distribution recorded **since** `baseline` (an earlier
    /// [`Clone`] of this histogram): slot-wise saturating subtraction.
    /// This is how the SLO engine turns a cumulative histogram into a
    /// sliding-window one — clone at window start, `delta_since` at
    /// evaluation time, take percentiles of the delta.
    ///
    /// `count` and `sum` subtract exactly. `min`/`max` of the delta are
    /// reconstructed from the surviving slots' lower bounds, so above
    /// the exact region they carry the histogram's usual quantization
    /// (low by less than the relative error bound) rather than the
    /// exact extremes — percentiles of the delta are unaffected.
    ///
    /// # Panics
    ///
    /// If the shapes (`sub_bucket_bits`) differ.
    pub fn delta_since(&self, baseline: &Histogram) -> Histogram {
        assert_eq!(self.bits, baseline.bits, "histogram shapes must match to delta");
        let delta = Histogram::new(HistogramConfig { sub_bucket_bits: self.bits });
        let mut count = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for (group, lock) in self.groups.iter().enumerate() {
            let Some(now) = lock.get() else { continue };
            let base = baseline.groups[group].get();
            for (slot, c) in now.iter().enumerate() {
                let was = base.map_or(0, |b| b[slot].load(Ordering::Relaxed));
                let n = c.load(Ordering::Relaxed).saturating_sub(was);
                if n == 0 {
                    continue;
                }
                let dst = delta.groups[group].get_or_init(|| {
                    (0..self.slots_in_group(group)).map(|_| AtomicU32::new(0)).collect()
                });
                dst[slot].store(n, Ordering::Relaxed);
                let lo = self.lower_bound(group, slot);
                min = min.min(lo);
                max = max.max(lo);
                count += n as u64;
            }
        }
        delta.count.store(count, Ordering::Relaxed);
        delta.sum.store(
            self.sum().wrapping_sub(baseline.sum.load(Ordering::Relaxed)),
            Ordering::Relaxed,
        );
        delta.min.store(min, Ordering::Relaxed);
        delta.max.store(max, Ordering::Relaxed);
        delta
    }

    /// A point-in-time copy of the distribution's headline numbers.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(0.50).unwrap_or(0),
            p90: self.percentile(0.90).unwrap_or(0),
            p99: self.percentile(0.99).unwrap_or(0),
        }
    }
}

impl Clone for Histogram {
    /// Deep copy of the slot counts (a point-in-time snapshot under
    /// concurrent recording).
    fn clone(&self) -> Self {
        let copy = Histogram::new(HistogramConfig { sub_bucket_bits: self.bits });
        for (group, lock) in self.groups.iter().enumerate() {
            if let Some(slots) = lock.get() {
                let dst = copy.groups[group].get_or_init(|| {
                    (0..self.slots_in_group(group)).map(|_| AtomicU32::new(0)).collect()
                });
                for (slot, c) in slots.iter().enumerate() {
                    dst[slot].store(c.load(Ordering::Relaxed), Ordering::Relaxed);
                }
            }
        }
        copy.count.store(self.count.load(Ordering::Relaxed), Ordering::Relaxed);
        copy.sum.store(self.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        copy.min.store(self.min.load(Ordering::Relaxed), Ordering::Relaxed);
        copy.max.store(self.max.load(Ordering::Relaxed), Ordering::Relaxed);
        copy
    }
}

/// Headline numbers of a [`Histogram`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Exact sum of values.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// 50th-percentile slot lower bound.
    pub p50: u64,
    /// 90th-percentile slot lower bound.
    pub p90: u64,
    /// 99th-percentile slot lower bound.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_round_trips_every_value() {
        let h = Histogram::new(HistogramConfig { sub_bucket_bits: 7 });
        for v in [0u64, 1, 2, 63, 64, 126, 127] {
            let (g, s) = h.locate(v);
            assert_eq!(g, 0);
            assert_eq!(h.lower_bound(g, s), v);
        }
    }

    #[test]
    fn log_region_error_stays_below_the_bound() {
        let h = Histogram::new(HistogramConfig { sub_bucket_bits: 7 });
        for v in [128u64, 129, 200, 1000, 123_456, u64::MAX / 3, u64::MAX] {
            let (g, s) = h.locate(v);
            let lo = h.lower_bound(g, s);
            assert!(lo <= v, "lower bound {lo} above value {v}");
            let err = (v - lo) as f64 / v as f64;
            assert!(err < 1.0 / 64.0, "value {v}: relative error {err} above 2^-6");
        }
    }

    #[test]
    fn bucket_boundaries_are_exact_above_the_exact_region() {
        let h = Histogram::new(HistogramConfig { sub_bucket_bits: 7 });
        // Powers of two (every group's first slot) and exact slot
        // starts must come back bit-for-bit.
        for v in [128u64, 256, 1 << 20, (1 << 20) + (1 << 14), 1 << 40] {
            h.record(v);
            let (g, s) = h.locate(v);
            assert_eq!(h.lower_bound(g, s), v, "boundary {v} not exact");
        }
    }

    #[test]
    fn nearest_rank_percentiles_match_the_sorted_oracle_in_the_exact_region() {
        let h = Histogram::new(HistogramConfig { sub_bucket_bits: 7 });
        let samples = [5u64, 1, 9, 9, 3, 2, 7, 100, 42, 11];
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        for p in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            assert_eq!(h.percentile(p), Some(sorted[rank - 1]), "p={p}");
        }
        assert_eq!(h.percentile(-1.0), Some(sorted[0]));
        assert_eq!(h.percentile(2.0), Some(*sorted.last().unwrap()));
        assert_eq!(h.percentile(f64::NAN), Some(*sorted.last().unwrap()));
    }

    #[test]
    fn count_sum_min_max_mean_are_exact() {
        let h = Histogram::new(HistogramConfig::default());
        for v in [1_000_000u64, 3, 999] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1_001_002);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.mean(), Some(1_001_002.0 / 3.0));
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new(HistogramConfig::default());
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new(HistogramConfig::default()));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        let total: u64 = (0..40_000u64).sum();
        assert_eq!(h.sum(), total);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 39_999);
    }

    #[test]
    fn empty_window_delta_has_no_quantiles() {
        // The SLO engine's "no data in this window" case: cumulative
        // histogram unchanged since the baseline clone.
        let h = Histogram::new(HistogramConfig::default());
        h.record(42);
        let baseline = h.clone();
        let window = h.delta_since(&baseline);
        assert_eq!(window.count(), 0);
        assert_eq!(window.percentile(0.99), None);
        assert_eq!(window.mean(), None);
        assert_eq!(window.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn single_bucket_saturation_reports_that_bucket_at_every_quantile() {
        // A service pinned at one latency: every percentile must be that
        // value, and the slot counter must absorb heavy traffic.
        let h = Histogram::new(HistogramConfig { sub_bucket_bits: 7 });
        for _ in 0..100_000 {
            h.record(64);
        }
        for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.percentile(p), Some(64), "p={p}");
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!((h.min(), h.max()), (64, 64));
    }

    #[test]
    fn sliding_window_deltas_partition_at_reset_boundaries() {
        // Three windows cut from one cumulative histogram: each delta
        // must see exactly its own window's values, and re-baselining at
        // a boundary must not leak a value into both adjacent windows.
        let h = Histogram::new(HistogramConfig { sub_bucket_bits: 7 });
        let b0 = h.clone();
        h.record(10);
        h.record(20);
        let b1 = h.clone();
        h.record(30);
        let b2 = h.clone();
        let w0 = h.delta_since(&b0);
        let w1 = h.delta_since(&b1);
        let w2 = h.delta_since(&b2);
        assert_eq!((w0.count(), w0.sum()), (3, 60), "since start: everything");
        assert_eq!((w1.count(), w1.sum()), (1, 30), "middle window: only the 30");
        assert_eq!(w1.percentile(1.0), Some(30));
        assert_eq!((w1.min(), w1.max()), (30, 30));
        assert_eq!(w2.count(), 0, "fresh boundary: empty window");
        // The boundary value 30 appears in exactly one of the two
        // windows it borders.
        assert_eq!(w1.count() + w2.count(), 1);
    }

    #[test]
    fn merging_per_thread_shards_equals_one_histogram() {
        use std::sync::Arc;
        let merged = Histogram::new(HistogramConfig { sub_bucket_bits: 7 });
        let oracle = Histogram::new(HistogramConfig { sub_bucket_bits: 7 });
        let shards: Vec<_> = (0..4)
            .map(|t| {
                let shard = Arc::new(Histogram::new(HistogramConfig { sub_bucket_bits: 7 }));
                let worker = Arc::clone(&shard);
                let handle = std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        worker.record(t * 37 + i % 211);
                    }
                });
                (shard, handle)
            })
            .collect();
        for (shard, handle) in shards {
            handle.join().unwrap();
            merged.merge_from(&shard);
        }
        for t in 0..4u64 {
            for i in 0..5_000u64 {
                oracle.record(t * 37 + i % 211);
            }
        }
        assert_eq!(merged.count(), oracle.count());
        assert_eq!(merged.sum(), oracle.sum());
        assert_eq!(merged.min(), oracle.min());
        assert_eq!(merged.max(), oracle.max());
        for p in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.percentile(p), oracle.percentile(p), "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "shapes must match")]
    fn merging_mismatched_shapes_panics() {
        let a = Histogram::new(HistogramConfig { sub_bucket_bits: 7 });
        let b = Histogram::new(HistogramConfig { sub_bucket_bits: 9 });
        a.merge_from(&b);
    }

    #[test]
    fn clone_is_a_deep_snapshot() {
        let h = Histogram::new(HistogramConfig::default());
        h.record(10);
        let copy = h.clone();
        h.record(20);
        assert_eq!(copy.count(), 1);
        assert_eq!(h.count(), 2);
        assert_eq!(copy.percentile(1.0), Some(10));
    }
}

//! The always-on flight recorder: bounded per-thread rings of the most
//! recent spans and events, running continuously and dumpable on demand
//! or on an SLO trigger.
//!
//! Where the drain-trace sink (`TIGRIS_TRACE`, [`crate::drain`]) is a
//! debugging aid you opt into per run, the flight recorder is the
//! production posture: it records into fixed-capacity circular buffers
//! (overwrite-oldest, one ring per thread, no cross-thread contention)
//! **whether or not** tracing is enabled, so when an anomaly fires the
//! last seconds of every thread's activity are already in memory. Its
//! cost is CI-gated (`bench/tests/obs_overhead.rs`): at most 3% of the
//! streaming workload's wall-clock versus the recorder disabled.
//!
//! [`crate::init_from_env`] turns the recorder on by default; set
//! `TIGRIS_RECORDER=off` to opt out and `TIGRIS_RECORDER_BUF` to size
//! the per-thread window (records per thread).
//!
//! Snapshots are **non-destructive**: [`snapshot`] copies the rings and
//! the recorder keeps flying, so an export never loses the window that
//! follows it. Because the ring drops *oldest*, a snapshot can contain
//! `End` records whose `Begin` was overwritten; the Chrome exporter
//! already skips those, keeping the dump balanced.
//!
//! ```
//! tigris_obs::set_recorder(true);
//! {
//!     let _guard = tigris_obs::span!("serve.localize", frame = 1_u64);
//! }
//! let window = tigris_obs::recorder::snapshot();
//! assert!(!window.records.is_empty());
//! tigris_obs::set_recorder(false);
//! ```

use std::time::Duration;

use crate::collector::{self, Trace};

/// Default per-thread flight-ring capacity, in records. Sized so a busy
/// serving thread retains several seconds of span history while the
/// whole-process footprint stays a few megabytes.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 16_384;

/// Overrides the per-thread flight-ring capacity (records per thread).
/// Applies to records pushed after the call; rings that already grew
/// larger overwrite in place. `TIGRIS_RECORDER_BUF` sets this at
/// [`crate::init_from_env`] time.
pub fn set_flight_capacity(records: usize) {
    collector::set_flight_capacity_raw(records);
}

/// A merged, timestamp-ordered copy of every thread's flight ring —
/// the full retained window. Non-destructive: the recorder keeps
/// recording. [`Trace::dropped`] reports records overwritten (oldest
/// lost) since the last [`reset`].
pub fn snapshot() -> Trace {
    collector::flight_snapshot()
}

/// [`snapshot`] restricted to records from the last `window` — "the
/// Chrome trace of the last N seconds". The cut is on the shared
/// monotonic trace clock ([`crate::now_ns`]), so all threads trim at
/// the same instant.
pub fn snapshot_last(window: Duration) -> Trace {
    let mut trace = collector::flight_snapshot();
    let now = crate::now_ns();
    let horizon = now.saturating_sub(window.as_nanos().min(u64::MAX as u128) as u64);
    trace.records.retain(|r| r.ts_ns >= horizon);
    trace
}

/// Clears every thread's flight ring and overwrite count. Tests and
/// post-incident handling use this to start a fresh window.
pub fn reset() {
    collector::flight_reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsync::serial;
    use crate::{RecordKind, Value};

    #[test]
    fn records_without_tracing_and_snapshots_non_destructively() {
        let _guard = serial();
        reset();
        assert!(!crate::trace_on(), "test assumes tracing off");
        crate::set_recorder(true);
        {
            let _span = crate::span!("flight.test_span", x = 1_u64);
            crate::event!("flight.test_event");
        }
        let first = snapshot();
        let second = snapshot();
        crate::set_recorder(false);
        assert_eq!(first.find(RecordKind::Begin, "flight.test_span").len(), 1);
        assert_eq!(first.find(RecordKind::Instant, "flight.test_event").len(), 1);
        assert_eq!(
            first.records.len(),
            second.records.len(),
            "snapshot must not consume the rings"
        );
        // Nothing leaked into the drain sink.
        let drained = crate::drain();
        assert!(
            drained.find(RecordKind::Begin, "flight.test_span").is_empty(),
            "recorder-only records must not reach the drain rings"
        );
        reset();
    }

    #[test]
    fn overwrites_oldest_and_counts_it() {
        let _guard = serial();
        reset();
        set_flight_capacity(4);
        crate::set_recorder(true);
        for i in 0..6_u64 {
            crate::event!("flight.overflow_probe", i = i);
        }
        crate::set_recorder(false);
        let window = snapshot();
        set_flight_capacity(DEFAULT_FLIGHT_CAPACITY);
        let mut kept: Vec<Value> = window
            .find(RecordKind::Instant, "flight.overflow_probe")
            .iter()
            .map(|r| r.fields[0].1)
            .collect();
        kept.sort_by_key(|v| match v {
            Value::U64(i) => *i,
            _ => u64::MAX,
        });
        // Drop-oldest: exactly the *latest* 4 of the 6 events survive.
        let expect: Vec<Value> = (2..6_u64).map(Value::U64).collect();
        assert_eq!(kept, expect, "newest records must survive");
        assert!(window.dropped >= 2, "overwrites must be counted");
        reset();
    }

    #[test]
    fn both_sinks_receive_when_tracing_is_also_on() {
        let _guard = serial();
        reset();
        crate::drain();
        crate::set_recorder(true);
        crate::set_enabled(true);
        crate::event!("flight.dual_sink", tag = "x");
        crate::set_enabled(false);
        crate::set_recorder(false);
        let drained = crate::drain();
        let window = snapshot();
        reset();
        let in_drain = drained.find(RecordKind::Instant, "flight.dual_sink");
        let in_flight = window.find(RecordKind::Instant, "flight.dual_sink");
        assert_eq!(in_drain.len(), 1);
        assert_eq!(in_flight.len(), 1);
        assert_eq!(in_drain[0].fields, vec![("tag", Value::Str("x"))]);
        assert_eq!(in_drain[0].id, in_flight[0].id, "both sinks see the same span ids");
    }

    #[test]
    fn snapshot_last_trims_to_the_window() {
        let _guard = serial();
        reset();
        crate::set_recorder(true);
        crate::event!("flight.window_old");
        std::thread::sleep(Duration::from_millis(30));
        crate::event!("flight.window_new");
        crate::set_recorder(false);
        let recent = snapshot_last(Duration::from_millis(15));
        let all = snapshot_last(Duration::from_secs(3600));
        reset();
        assert!(recent.find(RecordKind::Instant, "flight.window_old").is_empty());
        assert_eq!(recent.find(RecordKind::Instant, "flight.window_new").len(), 1);
        assert_eq!(all.find(RecordKind::Instant, "flight.window_old").len(), 1);
    }
}

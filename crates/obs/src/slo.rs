//! The declarative SLO engine: objectives over registry metrics,
//! evaluated on sliding windows into burn-rate verdicts.
//!
//! An [`SloSpec`] names a metric and an objective; the [`SloEngine`]
//! holds a list of them plus a window, and each [`SloEngine::evaluate`]
//! call checks every spec against what the registry recorded **inside
//! the window** — cumulative counters and histograms are converted to
//! windowed ones by baselining ([`crate::Histogram::delta_since`]),
//! gauges are read instantaneously. Three objective shapes cover the
//! serving stack's SLOs:
//!
//! * **Quantile** — `serve.latency_us:p99<=250ms`: the windowed p99 of
//!   a latency histogram must stay at or below a cutoff.
//! * **Ratio** — `serve.relocalizations_succeeded/serve.relocalizations_attempted>=0.9`:
//!   a windowed success/attempt counter ratio must stay at or above a
//!   floor (with a minimum-attempts guard so an idle service is not
//!   judged on one unlucky request).
//! * **Ceiling** — `serve.sessions_dropped==0` (windowed counter delta)
//!   or `serve.tiles.resident_bytes<=268435456` (instantaneous gauge):
//!   a value must stay at or below a cap.
//!
//! Each verdict carries a **burn rate**: how fast the objective's
//! budget is being consumed, normalized so `1.0` is exactly at the
//! threshold and anything above is a breach — the number an alerting
//! policy pages on. Verdicts with no window data report
//! [`SloStatus::NoData`] instead of a fake pass or fail.
//!
//! Specs are written in a tiny DSL (the `TIGRIS_SLO` environment
//! variable, semicolon-separated — see [`parse_specs`]); the ops layer
//! ([`crate::ops`]) evaluates an engine per service and snapshots the
//! flight recorder into a post-mortem bundle when a verdict breaches.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::Duration;

use crate::hist::Histogram;
use crate::registry::Registry;

/// Default sliding-window length when `TIGRIS_SLO_WINDOW_MS` is unset.
pub const DEFAULT_WINDOW: Duration = Duration::from_secs(10);

/// Minimum windowed attempts before a [`Objective::Ratio`] is judged.
pub const DEFAULT_MIN_ATTEMPTS: u64 = 10;

/// What an [`SloSpec`] requires of its metric(s).
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// The windowed `p`-quantile of histogram `metric` must be ≤
    /// `max_ticks` (in the histogram's own tick unit; the serving
    /// layer's latency histograms tick in microseconds).
    Quantile {
        /// Histogram name.
        metric: String,
        /// Quantile in `[0, 1]`.
        p: f64,
        /// Inclusive ceiling, in histogram ticks.
        max_ticks: u64,
    },
    /// Windowed `success / attempts` (both counters) must be ≥
    /// `min_ratio`, judged only once the window holds at least
    /// `min_attempts` attempts.
    Ratio {
        /// Numerator counter name.
        success: String,
        /// Denominator counter name.
        attempts: String,
        /// Inclusive floor in `[0, 1]`.
        min_ratio: f64,
        /// Windowed-attempts guard below which the verdict is NoData.
        min_attempts: u64,
    },
    /// The metric must stay ≤ `max`: windowed delta for a counter
    /// (e.g. zero dropped sessions), instantaneous value for a gauge
    /// (e.g. resident bytes under budget).
    Ceiling {
        /// Counter or gauge name.
        metric: String,
        /// Inclusive cap.
        max: i64,
    },
}

/// One declared service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// The spec in DSL form — the stable display name in verdicts,
    /// snapshots and bundles.
    pub text: String,
    /// The parsed objective.
    pub objective: Objective,
}

impl std::fmt::Display for SloSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl SloSpec {
    /// Parses one DSL spec; see [`parse_specs`] for the grammar.
    pub fn parse(raw: &str) -> Result<SloSpec, String> {
        let text = raw.trim().to_string();
        if text.is_empty() {
            return Err("empty SLO spec".to_string());
        }
        let objective = parse_objective(&text)?;
        Ok(SloSpec { text, objective })
    }
}

/// Parses a semicolon-separated spec list — the `TIGRIS_SLO` format.
/// Empty segments are skipped. The grammar, one spec per segment:
///
/// ```text
/// histogram:pNN<=BOUND      quantile   serve.latency_us:p99<=250ms
/// success/attempts>=RATIO   ratio      a.ok/a.tried>=0.9@100   (@N = min attempts)
/// metric<=N  |  metric==0   ceiling    serve.sessions_dropped==0
/// ```
///
/// `BOUND` is a number with an optional `us`/`ms`/`s` suffix, converted
/// to **microsecond** ticks (bare numbers are raw ticks).
pub fn parse_specs(raw: &str) -> Result<Vec<SloSpec>, String> {
    raw.split(';').map(str::trim).filter(|s| !s.is_empty()).map(SloSpec::parse).collect()
}

fn parse_objective(text: &str) -> Result<Objective, String> {
    if let Some((lhs, rhs)) = text.split_once(">=") {
        // Ratio: success/attempts>=0.9[@min_attempts]
        let (success, attempts) = lhs
            .split_once('/')
            .ok_or_else(|| format!("'{text}': expected success/attempts before >="))?;
        let (ratio_raw, min_attempts) = match rhs.split_once('@') {
            Some((r, n)) => {
                (r, n.trim().parse::<u64>().map_err(|_| format!("'{text}': bad @min_attempts"))?)
            }
            None => (rhs, DEFAULT_MIN_ATTEMPTS),
        };
        let min_ratio = ratio_raw
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("'{text}': bad ratio '{ratio_raw}'"))?;
        if !(0.0..=1.0).contains(&min_ratio) {
            return Err(format!("'{text}': ratio must be in [0, 1]"));
        }
        return Ok(Objective::Ratio {
            success: success.trim().to_string(),
            attempts: attempts.trim().to_string(),
            min_ratio,
            min_attempts,
        });
    }
    if let Some((lhs, rhs)) = text.split_once("<=") {
        if let Some((metric, quantile)) = lhs.split_once(':') {
            // Quantile: metric:p99<=250ms
            let quantile = quantile.trim();
            let digits = quantile
                .strip_prefix('p')
                .ok_or_else(|| format!("'{text}': expected pNN after ':'"))?;
            let pct =
                digits.parse::<f64>().map_err(|_| format!("'{text}': bad quantile 'p{digits}'"))?;
            if !(0.0..=100.0).contains(&pct) {
                return Err(format!("'{text}': quantile must be p0..p100"));
            }
            return Ok(Objective::Quantile {
                metric: metric.trim().to_string(),
                p: pct / 100.0,
                max_ticks: parse_ticks(rhs)
                    .ok_or_else(|| format!("'{text}': bad bound '{rhs}'"))?,
            });
        }
        // Ceiling: metric<=N
        let max =
            rhs.trim().parse::<i64>().map_err(|_| format!("'{text}': bad ceiling '{rhs}'"))?;
        return Ok(Objective::Ceiling { metric: lhs.trim().to_string(), max });
    }
    if let Some((lhs, rhs)) = text.split_once("==") {
        let max = rhs.trim().parse::<i64>().map_err(|_| format!("'{text}': bad value '{rhs}'"))?;
        if max != 0 {
            return Err(format!("'{text}': only ==0 is supported (use <= for other caps)"));
        }
        return Ok(Objective::Ceiling { metric: lhs.trim().to_string(), max: 0 });
    }
    Err(format!("'{text}': no recognized operator (>=, <=, ==0)"))
}

/// `"250ms"` / `"80us"` / `"2s"` / `"5000"` → microsecond ticks.
fn parse_ticks(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    let (digits, scale) = if let Some(d) = raw.strip_suffix("us") {
        (d, 1)
    } else if let Some(d) = raw.strip_suffix("ms") {
        (d, 1_000)
    } else if let Some(d) = raw.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        (raw, 1)
    };
    digits.trim().parse::<u64>().ok().map(|n| n.saturating_mul(scale))
}

/// One spec's verdict at one evaluation instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloStatus {
    /// Inside the objective.
    Ok,
    /// Outside the objective — an anomaly trigger.
    Breached,
    /// The window held nothing to judge (absent metric, empty window,
    /// or below the min-attempts guard).
    NoData,
}

/// The outcome of evaluating one [`SloSpec`] over one window.
#[derive(Debug, Clone)]
pub struct SloVerdict {
    /// The spec's DSL text.
    pub spec: String,
    /// Pass / breach / no data.
    pub status: SloStatus,
    /// What the window showed (quantile ticks, ratio, or value).
    pub observed: f64,
    /// The objective's threshold in the same unit.
    pub threshold: f64,
    /// Budget consumption normalized to the threshold: `1.0` is exactly
    /// at the objective, above is breaching. For quantile and ceiling
    /// objectives this is `observed / threshold`; for ratios it is the
    /// error-budget burn `(1 - observed) / (1 - min_ratio)`. Infinite
    /// when any violation of a zero-budget objective occurs.
    pub burn_rate: f64,
    /// The window actually evaluated, in nanoseconds (shorter than the
    /// configured window during warmup).
    pub window_ns: u64,
}

impl SloVerdict {
    /// Whether this verdict should fire an anomaly trigger.
    pub fn breached(&self) -> bool {
        self.status == SloStatus::Breached
    }
}

impl std::fmt::Display for SloVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let status = match self.status {
            SloStatus::Ok => "ok",
            SloStatus::Breached => "BREACHED",
            SloStatus::NoData => "no-data",
        };
        write!(
            f,
            "{status:8} {}  observed={:.3} threshold={:.3} burn={:.2} window={}ms",
            self.spec,
            self.observed,
            self.threshold,
            self.burn_rate,
            self.window_ns / 1_000_000
        )
    }
}

/// A baselined copy of the windowed metrics at one instant.
struct Baseline {
    ts_ns: u64,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Evaluates a fixed list of [`SloSpec`]s against one registry over a
/// sliding window; see the module docs above for the model. One engine
/// per watched registry — baselines are captured from the registry each
/// [`SloEngine::evaluate`] call, so windows slide with evaluation
/// cadence.
pub struct SloEngine {
    specs: Vec<SloSpec>,
    window: Duration,
    baselines: Mutex<VecDeque<Baseline>>,
}

impl SloEngine {
    /// An engine over `specs` with the given sliding window.
    pub fn new(specs: Vec<SloSpec>, window: Duration) -> Self {
        SloEngine { specs, window, baselines: Mutex::new(VecDeque::new()) }
    }

    /// An engine configured from the environment: specs from
    /// `TIGRIS_SLO` (unparsable specs are discarded), window from
    /// `TIGRIS_SLO_WINDOW_MS` (default [`DEFAULT_WINDOW`]).
    pub fn from_env() -> Self {
        let specs = std::env::var("TIGRIS_SLO")
            .ok()
            .map(|raw| {
                raw.split(';')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .filter_map(|s| SloSpec::parse(s).ok())
                    .collect()
            })
            .unwrap_or_default();
        let window = std::env::var("TIGRIS_SLO_WINDOW_MS")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(DEFAULT_WINDOW);
        SloEngine::new(specs, window)
    }

    /// The declared objectives.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// The configured sliding window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Evaluates every spec against `registry` over the sliding window
    /// ending now. Cumulative metrics are compared against the newest
    /// baseline at least one window old (or the oldest available during
    /// warmup; the first call sees everything since process start).
    /// Also captures a fresh baseline for future windows and prunes
    /// expired ones.
    pub fn evaluate(&self, registry: &Registry) -> Vec<SloVerdict> {
        let now = crate::now_ns();
        let window_ns = self.window.as_nanos().min(u64::MAX as u128) as u64;
        let mut baselines = self.baselines.lock().expect("slo baseline lock poisoned");
        // Anchor: newest baseline old enough to span the full window;
        // else the oldest we have; else the process epoch (ts 0, empty).
        let anchor_idx = baselines
            .iter()
            .rposition(|b| now.saturating_sub(b.ts_ns) >= window_ns)
            .or(if baselines.is_empty() { None } else { Some(0) });
        let verdicts = self
            .specs
            .iter()
            .map(|spec| {
                let anchor = anchor_idx.map(|i| &baselines[i]);
                evaluate_spec(spec, registry, anchor, now)
            })
            .collect();
        // Drop baselines older than the anchor — never again needed.
        if let Some(keep_from) = anchor_idx {
            baselines.drain(..keep_from);
        }
        baselines.push_back(capture_baseline(&self.specs, registry, now));
        verdicts
    }
}

fn capture_baseline(specs: &[SloSpec], registry: &Registry, ts_ns: u64) -> Baseline {
    let mut counters = BTreeMap::new();
    let mut histograms = BTreeMap::new();
    for spec in specs {
        match &spec.objective {
            Objective::Quantile { metric, .. } => {
                if let Some(h) = registry.lookup_histogram(metric) {
                    histograms.entry(metric.clone()).or_insert_with(|| (*h).clone());
                }
            }
            Objective::Ratio { success, attempts, .. } => {
                for name in [success, attempts] {
                    if let Some(c) = registry.lookup_counter(name) {
                        counters.insert(name.clone(), c.get());
                    }
                }
            }
            Objective::Ceiling { metric, .. } => {
                if let Some(c) = registry.lookup_counter(metric) {
                    counters.insert(metric.clone(), c.get());
                }
            }
        }
    }
    Baseline { ts_ns, counters, histograms }
}

fn evaluate_spec(
    spec: &SloSpec,
    registry: &Registry,
    anchor: Option<&Baseline>,
    now: u64,
) -> SloVerdict {
    let window_ns = now.saturating_sub(anchor.map_or(0, |b| b.ts_ns));
    let verdict = |status, observed, threshold, burn_rate| SloVerdict {
        spec: spec.text.clone(),
        status,
        observed,
        threshold,
        burn_rate,
        window_ns,
    };
    let windowed_counter = |name: &str| -> Option<u64> {
        let total = registry.lookup_counter(name)?.get();
        Some(total.saturating_sub(anchor.and_then(|b| b.counters.get(name)).copied().unwrap_or(0)))
    };
    match &spec.objective {
        Objective::Quantile { metric, p, max_ticks } => {
            let threshold = *max_ticks as f64;
            let Some(hist) = registry.lookup_histogram(metric) else {
                return verdict(SloStatus::NoData, 0.0, threshold, 0.0);
            };
            let windowed = match anchor.and_then(|b| b.histograms.get(metric)) {
                Some(baseline) => hist.delta_since(baseline),
                None => (*hist).clone(),
            };
            match windowed.percentile(*p) {
                Some(observed) => {
                    let burn = if *max_ticks == 0 {
                        if observed > 0 {
                            f64::INFINITY
                        } else {
                            0.0
                        }
                    } else {
                        observed as f64 / threshold
                    };
                    let status =
                        if observed <= *max_ticks { SloStatus::Ok } else { SloStatus::Breached };
                    verdict(status, observed as f64, threshold, burn)
                }
                None => verdict(SloStatus::NoData, 0.0, threshold, 0.0),
            }
        }
        Objective::Ratio { success, attempts, min_ratio, min_attempts } => {
            let (Some(ok), Some(tried)) = (windowed_counter(success), windowed_counter(attempts))
            else {
                return verdict(SloStatus::NoData, 0.0, *min_ratio, 0.0);
            };
            if tried < (*min_attempts).max(1) {
                return verdict(SloStatus::NoData, 0.0, *min_ratio, 0.0);
            }
            let observed = ok as f64 / tried as f64;
            let budget = 1.0 - *min_ratio;
            let burn = if budget <= 0.0 {
                if observed < 1.0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            } else {
                (1.0 - observed) / budget
            };
            let status = if observed >= *min_ratio { SloStatus::Ok } else { SloStatus::Breached };
            verdict(status, observed, *min_ratio, burn)
        }
        Objective::Ceiling { metric, max } => {
            let threshold = *max as f64;
            // Instantaneous for gauges, windowed delta for counters.
            let observed = if let Some(g) = registry.lookup_gauge(metric) {
                g.get() as f64
            } else if let Some(delta) = windowed_counter(metric) {
                delta as f64
            } else {
                return verdict(SloStatus::NoData, 0.0, threshold, 0.0);
            };
            let burn = if *max <= 0 {
                if observed > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            } else {
                observed / threshold
            };
            let status = if observed <= threshold { SloStatus::Ok } else { SloStatus::Breached };
            verdict(status, observed, threshold, burn)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::HistogramConfig;

    fn spec(text: &str) -> SloSpec {
        SloSpec::parse(text).unwrap()
    }

    #[test]
    fn dsl_parses_every_objective_shape() {
        assert_eq!(
            spec("serve.latency_us:p99<=250ms").objective,
            Objective::Quantile {
                metric: "serve.latency_us".to_string(),
                p: 0.99,
                max_ticks: 250_000
            }
        );
        assert_eq!(
            spec("serve.latency_us:p50<=80us").objective,
            Objective::Quantile { metric: "serve.latency_us".to_string(), p: 0.50, max_ticks: 80 }
        );
        assert_eq!(
            spec("a.ok/a.tried>=0.9@100").objective,
            Objective::Ratio {
                success: "a.ok".to_string(),
                attempts: "a.tried".to_string(),
                min_ratio: 0.9,
                min_attempts: 100
            }
        );
        assert_eq!(
            spec("serve.sessions_dropped==0").objective,
            Objective::Ceiling { metric: "serve.sessions_dropped".to_string(), max: 0 }
        );
        assert_eq!(
            spec("serve.tiles.resident_bytes<=1048576").objective,
            Objective::Ceiling { metric: "serve.tiles.resident_bytes".to_string(), max: 1_048_576 }
        );
        let list = parse_specs("a:p99<=1ms; ; b==0;").unwrap();
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn dsl_rejects_malformed_specs() {
        for bad in
            ["", "a.latency:p999x<=1ms", "a/b>=1.5", "a==3", "nonsense", "a:p99<=fast", "a<=abc"]
        {
            assert!(SloSpec::parse(bad).is_err(), "'{bad}' must not parse");
        }
    }

    #[test]
    fn quantile_objective_breaches_and_recovers_with_the_window() {
        let r = Registry::new();
        let h = r.histogram_with("lat", HistogramConfig { sub_bucket_bits: 17 });
        let engine = SloEngine::new(vec![spec("lat:p99<=1000us")], Duration::ZERO);
        // First window: all fast.
        for _ in 0..100 {
            h.record(100);
        }
        let v = &engine.evaluate(&r)[0];
        assert_eq!(v.status, SloStatus::Ok);
        assert!(v.burn_rate < 1.0);
        // Second window: slow burst. Window ZERO anchors at the previous
        // evaluate, so only the burst is judged.
        for _ in 0..100 {
            h.record(50_000);
        }
        let v = &engine.evaluate(&r)[0];
        assert_eq!(v.status, SloStatus::Breached);
        assert!(v.observed >= 49_000.0, "windowed p99 must see the burst, got {}", v.observed);
        assert!(v.burn_rate > 1.0);
        // Third window: quiet again — the breach must age out.
        h.record(100);
        let v = &engine.evaluate(&r)[0];
        assert_eq!(v.status, SloStatus::Ok, "old burst must slide out of the window");
    }

    #[test]
    fn ratio_objective_guards_on_min_attempts() {
        let r = Registry::new();
        let ok = r.counter("reloc.ok");
        let tried = r.counter("reloc.tried");
        let engine = SloEngine::new(vec![spec("reloc.ok/reloc.tried>=0.9@10")], Duration::ZERO);
        ok.add(1);
        tried.add(2);
        assert_eq!(engine.evaluate(&r)[0].status, SloStatus::NoData, "below min attempts");
        ok.add(5);
        tried.add(10);
        let v = &engine.evaluate(&r)[0];
        assert_eq!(v.status, SloStatus::Breached, "windowed 5/10 < 0.9");
        assert!(v.burn_rate > 1.0);
        ok.add(20);
        tried.add(20);
        assert_eq!(engine.evaluate(&r)[0].status, SloStatus::Ok, "windowed 20/20 passes");
    }

    #[test]
    fn ceiling_objective_is_windowed_for_counters_and_instant_for_gauges() {
        let r = Registry::new();
        let drops = r.counter("drops");
        let resident = r.gauge("resident");
        let engine = SloEngine::new(vec![spec("drops==0"), spec("resident<=100")], Duration::ZERO);
        drops.inc();
        resident.set(50);
        let verdicts = engine.evaluate(&r);
        assert_eq!(verdicts[0].status, SloStatus::Breached);
        assert!(verdicts[0].burn_rate.is_infinite(), "zero-budget breach burns infinitely");
        assert_eq!(verdicts[1].status, SloStatus::Ok);
        // No new drops: the counter ceiling recovers because it is
        // windowed; the gauge follows its instantaneous value.
        resident.set(200);
        let verdicts = engine.evaluate(&r);
        assert_eq!(verdicts[0].status, SloStatus::Ok, "old drop must slide out");
        assert_eq!(verdicts[1].status, SloStatus::Breached);
    }

    #[test]
    fn missing_metrics_and_empty_windows_report_no_data() {
        let r = Registry::new();
        let engine = SloEngine::new(
            vec![spec("ghost:p99<=1ms"), spec("ghost.ok/ghost.tried>=0.5"), spec("ghost==0")],
            Duration::ZERO,
        );
        for v in engine.evaluate(&r) {
            assert_eq!(v.status, SloStatus::NoData, "{}", v.spec);
        }
        // Histogram exists but the window is empty.
        r.histogram("lat").record(5);
        let engine = SloEngine::new(vec![spec("lat:p99<=1ms")], Duration::ZERO);
        assert_ne!(engine.evaluate(&r)[0].status, SloStatus::NoData, "first window sees history");
        assert_eq!(engine.evaluate(&r)[0].status, SloStatus::NoData, "second window is empty");
    }

    #[test]
    fn verdicts_render_for_the_ops_table() {
        let r = Registry::new();
        r.histogram("lat").record(500);
        let engine = SloEngine::new(vec![spec("lat:p50<=1000us")], Duration::from_secs(3600));
        let line = engine.evaluate(&r)[0].to_string();
        assert!(line.starts_with("ok"), "got: {line}");
        assert!(line.contains("lat:p50<=1000us"));
    }
}

//! The operational surface: service registration, periodic SLO
//! evaluation, unified snapshots, and SLO-triggered post-mortem
//! bundles.
//!
//! Services ([`crate::Registry`] owners — the localization service, the
//! shard service, the mapper) register themselves with the process-wide
//! [`OpsMonitor`] via [`register_service`]. Each [`OpsMonitor::tick`]
//! then, per live service:
//!
//! 1. samples the registry into metric timelines (for Chrome `"C"`
//!    counter export, [`crate::export::metric_samples`]),
//! 2. evaluates the service's [`crate::slo::SloEngine`] over its
//!    sliding window, and
//! 3. on any [`crate::slo::SloStatus::Breached`] verdict fires the
//!    **anomaly trigger**: the flight-recorder window, the registry,
//!    the verdicts and the tail-sampler's retained slow/failed traces
//!    are written out as a **post-mortem bundle** directory.
//!
//! A bundle `postmortem-<seq>-<label>/` contains:
//!
//! * `trace.json` — Chrome trace of the flight-recorder window with
//!   metric-timeline `"C"` events interleaved,
//! * `records.jsonl` — the same window as one JSON record per line,
//! * `verdicts.json` — every spec's verdict at trigger time,
//! * `retained.json` — the tail sampler's retained request trees
//!   (root id, latency, outcome, reason), and
//! * `summary.txt` — the human-readable roll-up.
//!
//! [`OpsMonitor::snapshot_text`] / [`snapshot_json`](OpsMonitor::snapshot_json)
//! render the unified operational snapshot (all registries, sampler
//! stats, SLO status, ring-overflow counts) for humans and machines;
//! [`spawn_periodic`] runs `tick` + snapshot export on a background
//! cadence.
//!
//! Environment: `TIGRIS_SLO` declares the specs (see
//! [`crate::slo::parse_specs`]), `TIGRIS_SLO_WINDOW_MS` the window,
//! `TIGRIS_OPS_DIR` the bundle/snapshot directory (default
//! `<tmp>/tigris-ops`).

use std::collections::VecDeque;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Duration;

use crate::export::{self, MetricSample};
use crate::registry::{MetricSnapshot, Registry};
use crate::sampler::TailSampler;
use crate::slo::{SloEngine, SloStatus, SloVerdict};

/// Retained metric-timeline samples (process-wide, oldest evicted).
const SERIES_CAPACITY: usize = 8_192;

/// Lifetime cap on written post-mortem bundles — a breach storm must
/// not fill the disk.
const MAX_BUNDLES: u64 = 16;

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct OpsConfig {
    /// Where bundles and snapshots are written.
    pub dir: PathBuf,
    /// The SLO specs every registered service is evaluated against.
    pub specs: Vec<crate::slo::SloSpec>,
    /// The SLO sliding window.
    pub window: Duration,
}

impl OpsConfig {
    /// Configuration from the environment (see the module docs).
    pub fn from_env() -> Self {
        let dir = std::env::var_os("TIGRIS_OPS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("tigris-ops"));
        let engine = SloEngine::from_env();
        OpsConfig { dir, specs: engine.specs().to_vec(), window: engine.window() }
    }
}

struct Service {
    label: String,
    registry: Weak<Registry>,
    sampler: Option<Weak<TailSampler>>,
    engine: SloEngine,
}

/// The process-wide operational monitor; see the module docs for the
/// tick/trigger model. Obtain it via [`global`] (services) or construct
/// one directly (tests).
pub struct OpsMonitor {
    config: OpsConfig,
    services: Mutex<Vec<Service>>,
    series: Mutex<VecDeque<MetricSample>>,
    bundle_seq: AtomicU64,
    ticks: AtomicU64,
}

impl OpsMonitor {
    /// A monitor with the given configuration.
    pub fn new(config: OpsConfig) -> Self {
        OpsMonitor {
            config,
            services: Mutex::new(Vec::new()),
            series: Mutex::new(VecDeque::new()),
            bundle_seq: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &OpsConfig {
        &self.config
    }

    /// Registers a service's registry (and optionally its tail sampler)
    /// under a dense generated label (`"serve/0"`, `"map/1"`, ...),
    /// returned for correlation. Only weak references are held: a
    /// dropped service disappears from future ticks and snapshots.
    /// Re-registering the same registry returns its existing label.
    pub fn register(
        &self,
        kind: &str,
        registry: &Arc<Registry>,
        sampler: Option<&Arc<TailSampler>>,
    ) -> String {
        let mut services = self.services.lock().expect("ops services lock poisoned");
        for service in services.iter() {
            if let Some(existing) = service.registry.upgrade() {
                if Arc::ptr_eq(&existing, registry) {
                    return service.label.clone();
                }
            }
        }
        let index = services.iter().filter(|s| s.label.starts_with(kind)).count();
        let label = format!("{kind}/{index}");
        services.push(Service {
            label: label.clone(),
            registry: Arc::downgrade(registry),
            sampler: sampler.map(Arc::downgrade),
            engine: SloEngine::new(self.config.specs.clone(), self.config.window),
        });
        label
    }

    /// One monitor cycle: prune dead services, sample every live
    /// registry into the metric timelines, evaluate every SLO engine,
    /// and write a post-mortem bundle per service with a breached
    /// verdict. Returns the bundle paths written this tick (empty when
    /// healthy; write failures are swallowed — monitoring must never
    /// take down serving).
    pub fn tick(&self) -> Vec<PathBuf> {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        let now = crate::now_ns();
        let mut bundles = Vec::new();
        let mut services = self.services.lock().expect("ops services lock poisoned");
        services.retain(|s| s.registry.strong_count() > 0);
        for service in services.iter() {
            let Some(registry) = service.registry.upgrade() else { continue };
            let mut samples = export::metric_samples(&registry, now);
            for sample in &mut samples {
                sample.name = format!("{}:{}", service.label, sample.name);
            }
            {
                let mut series = self.series.lock().expect("ops series lock poisoned");
                series.extend(samples);
                while series.len() > SERIES_CAPACITY {
                    series.pop_front();
                }
            }
            let verdicts = service.engine.evaluate(&registry);
            if verdicts.iter().any(SloVerdict::breached)
                && self.bundle_seq.load(Ordering::Relaxed) < MAX_BUNDLES
            {
                let sampler = service.sampler.as_ref().and_then(Weak::upgrade);
                if let Ok(path) =
                    self.write_bundle(&service.label, &registry, sampler.as_deref(), &verdicts)
                {
                    bundles.push(path);
                }
            }
        }
        bundles
    }

    /// Writes the post-mortem bundle for one breached service; see the
    /// module docs for the directory layout.
    fn write_bundle(
        &self,
        label: &str,
        registry: &Registry,
        sampler: Option<&TailSampler>,
        verdicts: &[SloVerdict],
    ) -> io::Result<PathBuf> {
        let seq = self.bundle_seq.fetch_add(1, Ordering::Relaxed);
        let sanitized: String =
            label.chars().map(|c| if c.is_alphanumeric() { c } else { '-' }).collect();
        let dir = self.config.dir.join(format!("postmortem-{seq}-{sanitized}"));
        std::fs::create_dir_all(&dir)?;
        let window = crate::recorder::snapshot();
        let series: Vec<MetricSample> =
            self.series.lock().expect("ops series lock poisoned").iter().cloned().collect();
        std::fs::write(
            dir.join("trace.json"),
            export::chrome_trace_json_with_counters(&window, &series),
        )?;
        std::fs::write(dir.join("records.jsonl"), export::jsonl(&window))?;
        std::fs::write(dir.join("verdicts.json"), verdicts_json(verdicts))?;
        std::fs::write(
            dir.join("retained.json"),
            retained_json(sampler.map(|s| s.retained()).unwrap_or_default()),
        )?;
        std::fs::write(dir.join("summary.txt"), export::summary(&window, Some(registry)))?;
        Ok(dir)
    }

    /// The unified operational snapshot as a human-readable table.
    pub fn snapshot_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== tigris ops snapshot ==\n");
        out.push_str(&format!(
            "recorder: {}  trace-sink: {}  ring drops (lifetime): {}  ticks: {}\n",
            onoff(crate::recorder_on()),
            onoff(crate::trace_on()),
            crate::dropped_total(),
            self.ticks.load(Ordering::Relaxed),
        ));
        let services = self.services.lock().expect("ops services lock poisoned");
        for service in services.iter() {
            let Some(registry) = service.registry.upgrade() else { continue };
            out.push_str(&format!("-- {} --\n", service.label));
            for verdict in service.engine.evaluate(&registry) {
                out.push_str(&format!("  slo: {verdict}\n"));
            }
            if let Some(sampler) = service.sampler.as_ref().and_then(Weak::upgrade) {
                let s = sampler.stats();
                out.push_str(&format!(
                    "  tail: observed {} retained {} fast-dropped {} evicted {}\n",
                    s.observed, s.retained, s.dropped_fast, s.evicted
                ));
            }
            for (name, value) in registry.snapshot() {
                match value {
                    MetricSnapshot::Counter(v) => {
                        out.push_str(&format!("  {name:<32} counter   {v}\n"));
                    }
                    MetricSnapshot::Gauge(v) => {
                        out.push_str(&format!("  {name:<32} gauge     {v}\n"));
                    }
                    MetricSnapshot::Histogram(h) => {
                        out.push_str(&format!(
                            "  {name:<32} histogram count {} p50 {} p99 {} max {}\n",
                            h.count, h.p50, h.p99, h.max
                        ));
                    }
                }
            }
        }
        out
    }

    /// The unified operational snapshot as machine-readable JSON
    /// (stable member order within each service: the registry's
    /// sorted-by-name guarantee).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        out.push_str(&format!("\"ts_ns\":{}", crate::now_ns()));
        out.push_str(&format!(",\"recorder_on\":{}", crate::recorder_on()));
        out.push_str(&format!(",\"trace_on\":{}", crate::trace_on()));
        out.push_str(&format!(",\"ring_dropped_total\":{}", crate::dropped_total()));
        out.push_str(",\"services\":[");
        let services = self.services.lock().expect("ops services lock poisoned");
        let mut first_service = true;
        for service in services.iter() {
            let Some(registry) = service.registry.upgrade() else { continue };
            if !first_service {
                out.push(',');
            }
            first_service = false;
            out.push_str("{\"label\":");
            export::push_json_str(&mut out, &service.label);
            out.push_str(",\"slo\":[");
            for (i, verdict) in service.engine.evaluate(&registry).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_verdict_json(&mut out, verdict);
            }
            out.push(']');
            if let Some(sampler) = service.sampler.as_ref().and_then(Weak::upgrade) {
                let s = sampler.stats();
                out.push_str(&format!(
                    ",\"tail\":{{\"observed\":{},\"retained\":{},\"dropped_fast\":{},\
                     \"evicted\":{}}}",
                    s.observed, s.retained, s.dropped_fast, s.evicted
                ));
            }
            out.push_str(",\"metrics\":{");
            for (i, (name, value)) in registry.snapshot().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                export::push_json_str(&mut out, name);
                out.push(':');
                match value {
                    MetricSnapshot::Counter(v) => out.push_str(&v.to_string()),
                    MetricSnapshot::Gauge(v) => out.push_str(&v.to_string()),
                    MetricSnapshot::Histogram(h) => out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\
                         \"p90\":{},\"p99\":{}}}",
                        h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                    )),
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

fn onoff(on: bool) -> &'static str {
    if on {
        "on"
    } else {
        "off"
    }
}

fn push_f64_or_null(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_verdict_json(out: &mut String, v: &SloVerdict) {
    out.push_str("{\"spec\":");
    export::push_json_str(out, &v.spec);
    out.push_str(",\"status\":");
    export::push_json_str(
        out,
        match v.status {
            SloStatus::Ok => "ok",
            SloStatus::Breached => "breached",
            SloStatus::NoData => "no-data",
        },
    );
    out.push_str(",\"observed\":");
    push_f64_or_null(out, v.observed);
    out.push_str(",\"threshold\":");
    push_f64_or_null(out, v.threshold);
    out.push_str(",\"burn_rate\":");
    push_f64_or_null(out, v.burn_rate);
    out.push_str(&format!(",\"window_ns\":{}}}", v.window_ns));
}

fn verdicts_json(verdicts: &[SloVerdict]) -> String {
    let mut out = String::from("[");
    for (i, v) in verdicts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_verdict_json(&mut out, v);
    }
    out.push_str("]\n");
    out
}

fn retained_json(retained: Vec<crate::sampler::RetainedTrace>) -> String {
    let mut out = String::from("[");
    for (i, r) in retained.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"root\":{},\"latency_us\":{},\"outcome\":\"{}\",\"reason\":\"{}\",\
             \"records\":{},\"trace\":",
            r.root,
            r.latency.as_micros(),
            match r.outcome {
                crate::sampler::RequestOutcome::Completed => "completed",
                crate::sampler::RequestOutcome::Failed => "failed",
            },
            r.decision.reason(),
            r.trace.records.len(),
        ));
        out.push_str(&export::chrome_trace_json(&r.trace));
        out.push('}');
    }
    out.push_str("]\n");
    out
}

/// The process-wide monitor, configured from the environment on first
/// use. Services register here.
pub fn global() -> &'static OpsMonitor {
    static GLOBAL: OnceLock<OpsMonitor> = OnceLock::new();
    GLOBAL.get_or_init(|| OpsMonitor::new(OpsConfig::from_env()))
}

/// Registers a service with the [`global`] monitor; see
/// [`OpsMonitor::register`].
pub fn register_service(
    kind: &str,
    registry: &Arc<Registry>,
    sampler: Option<&Arc<TailSampler>>,
) -> String {
    global().register(kind, registry, sampler)
}

/// A handle to the periodic ops thread; dropping it stops the thread.
pub struct OpsTicker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for OpsTicker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Spawns the periodic operational exporter over the [`global`]
/// monitor: every `period` it runs [`OpsMonitor::tick`] (evaluating
/// SLOs and writing post-mortem bundles on breach) and rewrites
/// `<dir>/ops-snapshot.json` with the current unified snapshot. The
/// returned handle stops the thread when dropped.
pub fn spawn_periodic(period: Duration) -> OpsTicker {
    let stop = Arc::new(AtomicBool::new(false));
    let stopped = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("tigris-ops".to_string())
        .spawn(move || {
            let monitor = global();
            let snapshot_path = monitor.config.dir.join("ops-snapshot.json");
            while !stopped.load(Ordering::Relaxed) {
                monitor.tick();
                if std::fs::create_dir_all(&monitor.config.dir).is_ok() {
                    let _ = std::fs::write(&snapshot_path, monitor.snapshot_json());
                }
                // Sleep in short slices so drop-stop stays responsive.
                let mut remaining = period;
                while !stopped.load(Ordering::Relaxed) && remaining > Duration::ZERO {
                    let slice = remaining.min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        })
        .expect("failed to spawn tigris-ops thread");
    OpsTicker { stop, handle: Some(handle) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::HistogramConfig;
    use crate::json::Json;
    use crate::sampler::{RequestOutcome, TailConfig};
    use crate::slo::parse_specs;
    use crate::testsync::serial;

    fn test_config(tag: &str, specs: &str) -> OpsConfig {
        let dir = std::env::temp_dir().join("tigris-ops-test").join(format!(
            "{}-{}",
            tag,
            crate::now_ns()
        ));
        OpsConfig { dir, specs: parse_specs(specs).unwrap(), window: Duration::ZERO }
    }

    #[test]
    fn breach_writes_a_complete_bundle() {
        let _guard = serial();
        crate::recorder::reset();
        crate::set_recorder(true);
        let monitor = OpsMonitor::new(test_config("bundle", "lat:p50<=10us"));
        let registry = Arc::new(Registry::new());
        let hist = registry.histogram_with("lat", HistogramConfig { sub_bucket_bits: 17 });
        let sampler = Arc::new(TailSampler::new(TailConfig::absolute(Duration::ZERO)));
        let label = monitor.register("serve", &registry, Some(&sampler));
        assert_eq!(label, "serve/0");
        {
            let _span = crate::span!("ops.breach_request");
            crate::event!("ops.breach_work");
        }
        for _ in 0..10 {
            hist.record(50_000);
        }
        sampler.observe(None, Duration::from_millis(50), RequestOutcome::Completed, false);
        let bundles = monitor.tick();
        crate::set_recorder(false);
        crate::recorder::reset();
        assert_eq!(bundles.len(), 1, "one breached service, one bundle");
        let dir = &bundles[0];
        let trace = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        let doc = Json::parse(&trace).expect("bundle trace must be valid JSON");
        let events = doc.as_arr().unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("ops.breach_request")),
            "flight-recorder window must land in the bundle"
        );
        assert!(
            events.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("C")),
            "metric timelines must land in the bundle"
        );
        let verdicts = std::fs::read_to_string(dir.join("verdicts.json")).unwrap();
        let verdicts = Json::parse(&verdicts).unwrap();
        assert_eq!(
            verdicts.as_arr().unwrap()[0].get("status").and_then(Json::as_str),
            Some("breached")
        );
        let retained = std::fs::read_to_string(dir.join("retained.json")).unwrap();
        let retained = Json::parse(&retained).unwrap();
        assert_eq!(retained.as_arr().unwrap().len(), 1, "retained tail trace must be bundled");
        assert!(dir.join("records.jsonl").exists());
        assert!(std::fs::read_to_string(dir.join("summary.txt")).unwrap().contains("lat"));
        let _ = std::fs::remove_dir_all(&monitor.config.dir);
    }

    #[test]
    fn healthy_services_write_no_bundles_and_snapshots_parse() {
        let _guard = serial();
        let monitor = OpsMonitor::new(test_config("healthy", "lat:p99<=1s; drops==0"));
        let registry = Arc::new(Registry::new());
        registry.histogram_with("lat", HistogramConfig { sub_bucket_bits: 17 }).record(100);
        registry.counter("drops");
        monitor.register("serve", &registry, None);
        assert!(monitor.tick().is_empty(), "no breach, no bundle");
        let json = monitor.snapshot_json();
        let doc = Json::parse(&json).expect("ops snapshot must be valid JSON");
        let services = doc.get("services").and_then(Json::as_arr).unwrap();
        assert_eq!(services[0].get("label").and_then(Json::as_str), Some("serve/0"));
        let slo = services[0].get("slo").and_then(Json::as_arr).unwrap();
        assert_eq!(slo.len(), 2);
        assert!(doc.get("ring_dropped_total").is_some());
        let text = monitor.snapshot_text();
        assert!(text.contains("serve/0") && text.contains("ring drops (lifetime)"));
        let _ = std::fs::remove_dir_all(&monitor.config.dir);
    }

    #[test]
    fn dropped_services_are_pruned_and_labels_stay_dense() {
        let monitor = OpsMonitor::new(test_config("prune", ""));
        let keep = Arc::new(Registry::new());
        let label0 = monitor.register("serve", &keep, None);
        {
            let transient = Arc::new(Registry::new());
            assert_eq!(monitor.register("serve", &transient, None), "serve/1");
            assert_eq!(monitor.register("serve", &transient, None), "serve/1", "idempotent");
        }
        monitor.tick();
        assert_eq!(monitor.register("serve", &keep, None), label0, "survivor keeps its label");
        assert!(!monitor.snapshot_text().contains("serve/1"), "dead service pruned");
    }
}

//! Per-thread ring-buffer span/event collectors and the lossless drain
//! that merges them.
//!
//! Every thread that records gets its own fixed-capacity buffer (no
//! cross-thread contention on the hot path beyond one uncontended
//! mutex); [`drain`] gathers every thread's records — including those
//! of threads that have since exited — and merges them into one
//! timestamp-ordered [`Trace`], the same merge discipline the
//! pipeline's `SearchStats` uses: per-thread accumulation, exact
//! summation at the join point, nothing sampled or lost short of an
//! explicit, counted ring-buffer overflow.

use std::cell::{Cell, OnceCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock;

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (counts, byte sizes, ids).
    U64(u64),
    /// Floating point (distances, fractions, seconds).
    F64(f64),
    /// Boolean (gate outcomes).
    Bool(bool),
    /// Static string (names, enum-like tags).
    Str(&'static str),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}

/// What a [`Record`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened.
    Begin,
    /// A span closed (guard dropped).
    End,
    /// A point-in-time event.
    Instant,
}

/// One collected span boundary or event.
#[derive(Debug, Clone)]
pub struct Record {
    /// Nanoseconds since the process trace epoch ([`clock::now_ns`]).
    pub ts_ns: u64,
    /// Dense obs-assigned id of the recording thread (not the OS tid).
    pub tid: u32,
    /// Per-thread monotonic sequence number — the merge tie-breaker
    /// that keeps a thread's records in recording order at equal
    /// timestamps.
    pub seq: u64,
    /// Process-unique id of the span (or event) this record belongs to.
    pub id: u64,
    /// Id of the enclosing span on the recording thread (0 = root).
    pub parent: u64,
    /// Boundary kind.
    pub kind: RecordKind,
    /// Static name, dot-namespaced by subsystem (`"serve.localize"`).
    pub name: &'static str,
    /// Typed key/value fields evaluated at the recording site.
    pub fields: Vec<(&'static str, Value)>,
}

/// Ring contents: a bounded record vector plus the overflow count.
struct Ring {
    records: Vec<Record>,
    seq: u64,
    dropped: u64,
}

/// Flight-recorder ring contents: a bounded *circular* record vector.
/// Where the drain ring drops **newest** on overflow (a drained trace
/// keeps its oldest records so span trees stay rooted), the flight ring
/// overwrites **oldest** — a flight recorder's value is the most recent
/// window before an anomaly.
struct FlightRing {
    records: Vec<Record>,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    /// Records overwritten since the last reset (the flight analogue of
    /// `dropped`).
    overwritten: u64,
    seq: u64,
}

/// One thread's collector, kept alive by the global registry even
/// after its thread exits, so a drain after `thread::join` still sees
/// every record (losslessness).
struct ThreadBuf {
    tid: u32,
    ring: Mutex<Ring>,
    flight: Mutex<FlightRing>,
}

fn collectors() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static COLLECTORS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    COLLECTORS.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_BUFFER_CAPACITY);
static FLIGHT_CAPACITY: AtomicUsize = AtomicUsize::new(crate::recorder::DEFAULT_FLIGHT_CAPACITY);
/// Lifetime total of drain-ring records dropped at capacity, across
/// every drain — the counter the summary exporter and the operational
/// snapshot surface so overflow is never invisible.
static DROPPED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Default per-thread ring capacity, in records.
pub const DEFAULT_BUFFER_CAPACITY: usize = 65_536;

/// Overrides the per-thread ring-buffer capacity (records per thread).
/// Applies to records pushed after the call; existing buffers keep
/// their contents. `TIGRIS_TRACE_BUF` sets this at
/// [`crate::init_from_env`] time.
pub fn set_buffer_capacity(records: usize) {
    CAPACITY.store(records.max(1), Ordering::Relaxed);
}

/// Overrides the per-thread *flight-recorder* ring capacity (records
/// per thread); see [`crate::recorder::set_flight_capacity`].
pub(crate) fn set_flight_capacity_raw(records: usize) {
    FLIGHT_CAPACITY.store(records.max(1), Ordering::Relaxed);
}

/// Lifetime total of drain-ring records dropped at full capacity
/// (drop-newest), across every thread and every [`drain`]. Unlike
/// [`Trace::dropped`] — which resets with each drain — this total only
/// grows, so a single end-of-run report can state whether the process
/// ever overflowed.
pub fn dropped_total() -> u64 {
    DROPPED_TOTAL.load(Ordering::Relaxed)
}

thread_local! {
    static LOCAL: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

fn with_local<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
    LOCAL.with(|cell| {
        let buf = cell.get_or_init(|| {
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                ring: Mutex::new(Ring { records: Vec::new(), seq: 0, dropped: 0 }),
                flight: Mutex::new(FlightRing {
                    records: Vec::new(),
                    head: 0,
                    overwritten: 0,
                    seq: 0,
                }),
            });
            collectors().lock().expect("obs collector registry poisoned").push(Arc::clone(&buf));
            buf
        });
        f(buf)
    })
}

fn push_record(
    kind: RecordKind,
    name: &'static str,
    id: u64,
    parent: u64,
    fields: &[(&'static str, Value)],
) {
    let sinks = crate::sinks();
    if sinks == 0 {
        return;
    }
    let ts_ns = clock::now_ns();
    with_local(|buf| {
        // seq is filled in per sink: each ring keeps its own monotonic
        // sequence, so merge ordering is well-defined per sink even when
        // one sink started recording later than the other.
        let record =
            Record { ts_ns, tid: buf.tid, seq: 0, id, parent, kind, name, fields: fields.to_vec() };
        match (sinks & crate::TRACE_SINK != 0, sinks & crate::RECORDER_SINK != 0) {
            (true, true) => {
                buf.push_flight(record.clone());
                buf.push_drain(record);
            }
            (true, false) => buf.push_drain(record),
            (false, true) => buf.push_flight(record),
            (false, false) => {} // raced a sink shutdown: drop the record
        }
    });
}

impl ThreadBuf {
    /// Appends to the drain ring, dropping **newest** at capacity (a
    /// drained trace keeps its oldest records so span trees stay
    /// rooted).
    fn push_drain(&self, mut record: Record) {
        let mut ring = self.ring.lock().expect("obs ring lock poisoned");
        if ring.records.len() >= CAPACITY.load(Ordering::Relaxed) {
            ring.dropped += 1;
            DROPPED_TOTAL.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ring.seq += 1;
        record.seq = ring.seq;
        ring.records.push(record);
    }

    /// Appends to the flight ring, overwriting **oldest** at capacity —
    /// the flight recorder keeps the most recent window.
    fn push_flight(&self, mut record: Record) {
        let mut flight = self.flight.lock().expect("obs flight ring lock poisoned");
        flight.seq += 1;
        record.seq = flight.seq;
        let capacity = FLIGHT_CAPACITY.load(Ordering::Relaxed);
        if flight.records.len() < capacity {
            flight.records.push(record);
        } else {
            let len = flight.records.len();
            let head = flight.head;
            flight.records[head] = record;
            flight.head = (head + 1) % len;
            flight.overwritten += 1;
        }
    }
}

/// Records a point-in-time event under the current span. Callers go
/// through the [`crate::event!`] macro, which guards on
/// [`crate::enabled`] before any field is evaluated.
pub fn record_event(name: &'static str, fields: &[(&'static str, Value)]) {
    if !crate::enabled() {
        return;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_SPAN.with(Cell::get);
    push_record(RecordKind::Instant, name, id, parent, fields);
}

/// RAII span guard: records `Begin` on construction and `End` on drop,
/// maintaining the thread's current-span stack so nested guards parent
/// correctly. Construct through the [`crate::span!`] macro — its
/// disabled path is a single relaxed-atomic branch that builds nothing.
#[derive(Debug)]
pub struct SpanGuard(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
}

impl SpanGuard {
    /// Opens a span (unconditionally records; the enabled check lives
    /// in [`crate::span!`]).
    pub fn begin(name: &'static str, fields: &[(&'static str, Value)]) -> SpanGuard {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT_SPAN.with(|c| {
            let parent = c.get();
            c.set(id);
            parent
        });
        push_record(RecordKind::Begin, name, id, parent, fields);
        SpanGuard(Some(ActiveSpan { id, parent, name }))
    }

    /// The no-op guard the disabled path returns: drops without
    /// recording or allocating.
    pub fn disabled() -> SpanGuard {
        SpanGuard(None)
    }

    /// The span's process-unique id (`None` for a disabled guard).
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|s| s.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(span) = self.0.take() {
            CURRENT_SPAN.with(|c| c.set(span.parent));
            push_record(RecordKind::End, span.name, span.id, span.parent, &[]);
        }
    }
}

/// The merged output of [`drain`]: every thread's records in one
/// globally timestamp-ordered vector, plus the total overflow count.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All records, sorted by `(ts_ns, tid, seq)` — per-thread order is
    /// exactly recording order.
    pub records: Vec<Record>,
    /// Records discarded at full ring buffers (0 = lossless).
    pub dropped: u64,
}

impl Trace {
    /// Records of the given kind and name.
    pub fn find(&self, kind: RecordKind, name: &str) -> Vec<&Record> {
        self.records.iter().filter(|r| r.kind == kind && r.name == name).collect()
    }

    /// The parent chain of a span id, innermost first, from the `Begin`
    /// records in this trace (empty for an unknown or root-orphaned id).
    pub fn ancestors(&self, id: u64) -> Vec<u64> {
        let parents: HashMap<u64, u64> = self
            .records
            .iter()
            .filter(|r| r.kind != RecordKind::End)
            .map(|r| (r.id, r.parent))
            .collect();
        let mut chain = Vec::new();
        let mut cur = id;
        while let Some(&p) = parents.get(&cur) {
            if p == 0 || chain.len() > self.records.len() {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain
    }

    /// Whether `ancestor` appears in the parent chain of `id`.
    pub fn has_ancestor(&self, id: u64, ancestor: u64) -> bool {
        self.ancestors(id).contains(&ancestor)
    }

    /// The connected span tree rooted at `root`: every record whose id
    /// is `root` or descends from it (plus each such span's `End`).
    /// This is what the tail sampler retains per request — one complete
    /// request tree cut out of a mixed multi-request window. Linear in
    /// the trace size (memoized connectivity walk, built once), so
    /// extraction from a full flight-ring snapshot stays cheap.
    pub fn subtree(&self, root: u64) -> Trace {
        let parents: HashMap<u64, u64> = self
            .records
            .iter()
            .filter(|r| r.kind != RecordKind::End)
            .map(|r| (r.id, r.parent))
            .collect();
        let mut connected: HashMap<u64, bool> = HashMap::new();
        connected.insert(root, true);
        let mut path = Vec::new();
        for r in &self.records {
            let mut cur = r.id;
            // Walk up until a memoized id (or a dead end), then memoize
            // the whole walked path with the answer.
            let verdict = loop {
                if let Some(&known) = connected.get(&cur) {
                    break known;
                }
                path.push(cur);
                match parents.get(&cur) {
                    Some(&p) if p != 0 && path.len() <= self.records.len() => cur = p,
                    _ => break false,
                }
            };
            for id in path.drain(..) {
                connected.insert(id, verdict);
            }
        }
        let records = self
            .records
            .iter()
            .filter(|r| connected.get(&r.id).copied().unwrap_or(false))
            .cloned()
            .collect();
        Trace { records, dropped: self.dropped }
    }
}

/// Drains every thread's ring buffer (including exited threads') into
/// one merged, timestamp-ordered [`Trace`], resetting the buffers. The
/// merge is lossless: the merged record count equals the sum of the
/// per-thread counts, with `dropped` accounting exactly for overflow.
pub fn drain() -> Trace {
    let bufs: Vec<Arc<ThreadBuf>> =
        collectors().lock().expect("obs collector registry poisoned").clone();
    let mut records = Vec::new();
    let mut dropped = 0;
    for buf in bufs {
        let mut ring = buf.ring.lock().expect("obs ring lock poisoned");
        records.append(&mut ring.records);
        dropped += std::mem::take(&mut ring.dropped);
    }
    records.sort_by_key(|r| (r.ts_ns, r.tid, r.seq));
    Trace { records, dropped }
}

/// **Copies** every thread's flight ring (including exited threads')
/// into one merged, timestamp-ordered [`Trace`] *without* resetting the
/// rings — the recorder keeps flying while the snapshot is exported.
/// `dropped` reports the total records overwritten since the last
/// [`flight_reset`].
pub(crate) fn flight_snapshot() -> Trace {
    let bufs: Vec<Arc<ThreadBuf>> =
        collectors().lock().expect("obs collector registry poisoned").clone();
    let mut records = Vec::new();
    let mut dropped = 0;
    for buf in bufs {
        let flight = buf.flight.lock().expect("obs flight ring lock poisoned");
        records.extend_from_slice(&flight.records);
        dropped += flight.overwritten;
    }
    records.sort_by_key(|r| (r.ts_ns, r.tid, r.seq));
    Trace { records, dropped }
}

/// Clears every thread's flight ring and overwrite count (tests and
/// post-incident resets).
pub(crate) fn flight_reset() {
    let bufs: Vec<Arc<ThreadBuf>> =
        collectors().lock().expect("obs collector registry poisoned").clone();
    for buf in bufs {
        let mut flight = buf.flight.lock().expect("obs flight ring lock poisoned");
        flight.records.clear();
        flight.head = 0;
        flight.overwritten = 0;
        flight.seq = 0;
    }
}

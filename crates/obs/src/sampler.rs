//! Tail-based trace sampling: keep the interesting 1%, drop the rest.
//!
//! Head sampling (decide *before* the request runs) cannot know which
//! requests will matter. The [`TailSampler`] decides **after** the
//! outcome is known: every request's complete span tree is sitting in
//! the flight recorder anyway ([`crate::recorder`]), so when a request
//! finishes the service reports `(root span, latency, outcome)` and the
//! sampler either extracts that request's connected subtree from the
//! recorder window and retains it, or does nothing. Retention fires
//! when the request was
//!
//! * **slow** — latency at or above a [`SlowThreshold`] (a fixed cutoff
//!   or a live percentile of the service's own latency histogram),
//! * **failed** — the request returned an error, or
//! * **marked** — the caller explicitly flagged it.
//!
//! The boring majority costs one threshold comparison and a handful of
//! counter bumps — no allocation, no ring traffic. Retained traces live
//! in a bounded FIFO (oldest evicted first) until someone collects them
//! via [`TailSampler::take_retained`] — the ops layer folds them into
//! post-mortem bundles ([`crate::ops`]).
//!
//! Environment knobs (read by [`TailConfig::from_env`], which the
//! serving layer uses): `TIGRIS_TAIL_SLOW_US` forces a fixed slow
//! cutoff in microseconds; `TIGRIS_TAIL_RETAIN` caps the retained-trace
//! FIFO.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::collector::Trace;
use crate::hist::Histogram;

/// Default capacity of the retained-trace FIFO.
pub const DEFAULT_RETAIN_CAPACITY: usize = 32;

/// Default percentile used by [`TailConfig::percentile_of`].
pub const DEFAULT_SLOW_PERCENTILE: f64 = 0.99;

/// Samples a live percentile needs before it is trusted; below this the
/// percentile threshold abstains (nothing is "slow" yet).
pub const DEFAULT_MIN_SAMPLES: u64 = 100;

/// When is a request "slow"?
#[derive(Clone)]
pub enum SlowThreshold {
    /// Latency at or above a fixed cutoff is slow.
    Absolute(Duration),
    /// Latency at or above the live `p`-th percentile of a latency
    /// histogram (in **microsecond ticks**, the serving layer's unit)
    /// is slow. Self-calibrating: the cutoff tracks the service's own
    /// distribution, so "slow" always means "slow *for this service*".
    /// Abstains (nothing is slow) until the histogram holds at least
    /// `min_samples` values, so a cold service doesn't retain its first
    /// requests just because the distribution is still empty.
    Percentile {
        /// The latency histogram consulted, in microsecond ticks.
        of: Arc<Histogram>,
        /// The percentile in `[0, 1]` (e.g. `0.99`).
        p: f64,
        /// Minimum histogram count before the threshold activates.
        min_samples: u64,
    },
    /// Nothing is slow; only failed or marked requests are retained.
    Never,
}

impl std::fmt::Debug for SlowThreshold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlowThreshold::Absolute(d) => f.debug_tuple("Absolute").field(d).finish(),
            SlowThreshold::Percentile { p, min_samples, .. } => f
                .debug_struct("Percentile")
                .field("p", p)
                .field("min_samples", min_samples)
                .finish(),
            SlowThreshold::Never => write!(f, "Never"),
        }
    }
}

impl SlowThreshold {
    fn is_slow(&self, latency: Duration) -> bool {
        match self {
            SlowThreshold::Absolute(cutoff) => latency >= *cutoff,
            SlowThreshold::Percentile { of, p, min_samples } => {
                if of.count() < *min_samples {
                    return false;
                }
                match of.percentile(*p) {
                    Some(cutoff_us) => latency.as_micros() as u64 >= cutoff_us,
                    None => false,
                }
            }
            SlowThreshold::Never => false,
        }
    }
}

/// Tail-sampler configuration.
#[derive(Debug, Clone)]
pub struct TailConfig {
    /// The slow-request threshold.
    pub slow: SlowThreshold,
    /// Retained-trace FIFO capacity; the oldest trace is evicted when
    /// a new one would exceed it.
    pub max_retained: usize,
}

impl TailConfig {
    /// A fixed latency cutoff.
    pub fn absolute(cutoff: Duration) -> Self {
        TailConfig { slow: SlowThreshold::Absolute(cutoff), max_retained: DEFAULT_RETAIN_CAPACITY }
    }

    /// The default self-calibrating threshold: slow means at or above
    /// the live p99 of `latency_us` (microsecond ticks), active once
    /// [`DEFAULT_MIN_SAMPLES`] values are in.
    pub fn percentile_of(latency_us: Arc<Histogram>) -> Self {
        TailConfig {
            slow: SlowThreshold::Percentile {
                of: latency_us,
                p: DEFAULT_SLOW_PERCENTILE,
                min_samples: DEFAULT_MIN_SAMPLES,
            },
            max_retained: DEFAULT_RETAIN_CAPACITY,
        }
    }

    /// [`TailConfig::percentile_of`] with the environment applied on
    /// top: `TIGRIS_TAIL_SLOW_US` replaces the threshold with a fixed
    /// cutoff in microseconds, `TIGRIS_TAIL_RETAIN` resizes the FIFO.
    pub fn from_env(latency_us: Arc<Histogram>) -> Self {
        let mut config = TailConfig::percentile_of(latency_us);
        if let Some(us) = env_u64("TIGRIS_TAIL_SLOW_US") {
            config.slow = SlowThreshold::Absolute(Duration::from_micros(us));
        }
        if let Some(cap) = env_u64("TIGRIS_TAIL_RETAIN") {
            config.max_retained = (cap as usize).max(1);
        }
        config
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|raw| raw.trim().parse::<u64>().ok())
}

/// How a sampled request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The request returned a result.
    Completed,
    /// The request returned an error.
    Failed,
}

/// The sampler's verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailDecision {
    /// Fast and healthy: nothing kept.
    DroppedFast,
    /// Retained because latency met the slow threshold.
    RetainedSlow,
    /// Retained because the request failed.
    RetainedFailed,
    /// Retained because the caller marked it.
    RetainedMarked,
}

impl TailDecision {
    /// Whether the trace was kept.
    pub fn retained(self) -> bool {
        self != TailDecision::DroppedFast
    }

    /// A short reason string for exports ("slow" / "failed" / ...).
    pub fn reason(self) -> &'static str {
        match self {
            TailDecision::DroppedFast => "fast",
            TailDecision::RetainedSlow => "slow",
            TailDecision::RetainedFailed => "failed",
            TailDecision::RetainedMarked => "marked",
        }
    }
}

/// One retained request: its metadata plus the connected span tree
/// extracted from the flight-recorder window at decision time. The
/// trace is empty when the request's root span id was unavailable
/// (all sinks off) — the metadata is still worth keeping.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    /// The request's root span id (0 when unavailable).
    pub root: u64,
    /// End-to-end latency the service reported.
    pub latency: Duration,
    /// How the request ended.
    pub outcome: RequestOutcome,
    /// Why it was kept.
    pub decision: TailDecision,
    /// The complete connected span tree of this request.
    pub trace: Trace,
}

/// Lifetime counters for one sampler, for the ops snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailStats {
    /// Requests observed.
    pub observed: u64,
    /// Requests retained (slow + failed + marked).
    pub retained: u64,
    /// Requests dropped as fast.
    pub dropped_fast: u64,
    /// Retained traces evicted from the FIFO before collection.
    pub evicted: u64,
}

/// The tail sampler; see the module docs above for the decision flow.
/// All methods are `&self`; one sampler is shared per service.
#[derive(Debug)]
pub struct TailSampler {
    config: TailConfig,
    retained: Mutex<VecDeque<RetainedTrace>>,
    observed: AtomicU64,
    kept: AtomicU64,
    dropped_fast: AtomicU64,
    evicted: AtomicU64,
}

impl TailSampler {
    /// A sampler with the given configuration.
    pub fn new(config: TailConfig) -> Self {
        TailSampler {
            config,
            retained: Mutex::new(VecDeque::new()),
            observed: AtomicU64::new(0),
            kept: AtomicU64::new(0),
            dropped_fast: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Reports one finished request and returns the verdict. `root` is
    /// the request's root span id ([`crate::SpanGuard::id`]); when the
    /// verdict retains and a root is known, the request's connected
    /// subtree is cut out of the flight-recorder window and stored.
    ///
    /// The drop path (the common case) performs the threshold check and
    /// two counter bumps — no locking, no allocation.
    pub fn observe(
        &self,
        root: Option<u64>,
        latency: Duration,
        outcome: RequestOutcome,
        marked: bool,
    ) -> TailDecision {
        self.observed.fetch_add(1, Ordering::Relaxed);
        let decision = if outcome == RequestOutcome::Failed {
            TailDecision::RetainedFailed
        } else if marked {
            TailDecision::RetainedMarked
        } else if self.config.slow.is_slow(latency) {
            TailDecision::RetainedSlow
        } else {
            TailDecision::DroppedFast
        };
        if !decision.retained() {
            self.dropped_fast.fetch_add(1, Ordering::Relaxed);
            return decision;
        }
        self.kept.fetch_add(1, Ordering::Relaxed);
        let trace = match root {
            Some(root) if crate::recorder_on() => crate::recorder::snapshot().subtree(root),
            _ => Trace::default(),
        };
        let kept = RetainedTrace { root: root.unwrap_or(0), latency, outcome, decision, trace };
        let mut fifo = self.retained.lock().expect("tail sampler lock poisoned");
        fifo.push_back(kept);
        while fifo.len() > self.config.max_retained {
            fifo.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        decision
    }

    /// Removes and returns every retained trace, oldest first.
    pub fn take_retained(&self) -> Vec<RetainedTrace> {
        self.retained.lock().expect("tail sampler lock poisoned").drain(..).collect()
    }

    /// Clones the currently retained traces, oldest first, leaving them
    /// in place (the post-mortem path must not steal traces a later
    /// collection expects).
    pub fn retained(&self) -> Vec<RetainedTrace> {
        self.retained.lock().expect("tail sampler lock poisoned").iter().cloned().collect()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TailStats {
        TailStats {
            observed: self.observed.load(Ordering::Relaxed),
            retained: self.kept.load(Ordering::Relaxed),
            dropped_fast: self.dropped_fast.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::HistogramConfig;
    use crate::testsync::serial;
    use crate::RecordKind;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn absolute_threshold_splits_slow_from_fast() {
        let s = TailSampler::new(TailConfig::absolute(ms(10)));
        assert_eq!(
            s.observe(None, ms(2), RequestOutcome::Completed, false),
            TailDecision::DroppedFast
        );
        assert_eq!(
            s.observe(None, ms(10), RequestOutcome::Completed, false),
            TailDecision::RetainedSlow
        );
        assert_eq!(
            s.observe(None, ms(50), RequestOutcome::Completed, false),
            TailDecision::RetainedSlow
        );
        let stats = s.stats();
        assert_eq!((stats.observed, stats.retained, stats.dropped_fast), (3, 2, 1));
    }

    #[test]
    fn failed_and_marked_are_retained_even_when_fast() {
        let s = TailSampler::new(TailConfig::absolute(ms(1000)));
        assert_eq!(
            s.observe(None, ms(1), RequestOutcome::Failed, false),
            TailDecision::RetainedFailed
        );
        assert_eq!(
            s.observe(None, ms(1), RequestOutcome::Completed, true),
            TailDecision::RetainedMarked
        );
        assert_eq!(s.retained().len(), 2);
    }

    #[test]
    fn percentile_threshold_abstains_until_warm_then_tracks_the_distribution() {
        let hist = Arc::new(Histogram::new(HistogramConfig { sub_bucket_bits: 17 }));
        let config = TailConfig {
            slow: SlowThreshold::Percentile { of: Arc::clone(&hist), p: 0.99, min_samples: 10 },
            max_retained: DEFAULT_RETAIN_CAPACITY,
        };
        let s = TailSampler::new(config);
        // Cold: even an extreme latency is not "slow" yet.
        assert_eq!(
            s.observe(None, Duration::from_secs(5), RequestOutcome::Completed, false),
            TailDecision::DroppedFast
        );
        // Warm the distribution: 1000µs typical.
        for _ in 0..100 {
            hist.record(1000);
        }
        assert_eq!(
            s.observe(None, Duration::from_micros(900), RequestOutcome::Completed, false),
            TailDecision::DroppedFast
        );
        assert_eq!(
            s.observe(None, Duration::from_micros(5000), RequestOutcome::Completed, false),
            TailDecision::RetainedSlow
        );
    }

    #[test]
    fn fifo_evicts_oldest_beyond_capacity() {
        let mut config = TailConfig::absolute(Duration::ZERO);
        config.max_retained = 2;
        let s = TailSampler::new(config);
        for i in 0..4_u64 {
            s.observe(None, ms(i), RequestOutcome::Completed, false);
        }
        let kept = s.take_retained();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].latency, ms(2));
        assert_eq!(kept[1].latency, ms(3));
        assert_eq!(s.stats().evicted, 2);
        assert!(s.take_retained().is_empty(), "take drains the FIFO");
    }

    #[test]
    fn retained_trace_is_the_connected_subtree_of_the_request() {
        let _guard = serial();
        crate::recorder::reset();
        crate::set_recorder(true);
        // A foreign request that must NOT leak into the retained trace.
        {
            let _other = crate::span!("sampler.other_request", id = 99_u64);
            crate::event!("sampler.other_event");
        }
        let root_id = {
            let root = crate::span!("sampler.request", id = 1_u64);
            let id = root.id().expect("recorder on yields ids");
            {
                let _child = crate::span!("sampler.child");
                crate::event!("sampler.leaf", depth = 2_u64);
            }
            id
        };
        let s = TailSampler::new(TailConfig::absolute(Duration::ZERO));
        let decision = s.observe(Some(root_id), ms(1), RequestOutcome::Completed, false);
        crate::set_recorder(false);
        crate::recorder::reset();
        assert_eq!(decision, TailDecision::RetainedSlow);
        let kept = s.take_retained();
        assert_eq!(kept.len(), 1);
        let trace = &kept[0].trace;
        assert_eq!(trace.find(RecordKind::Begin, "sampler.request").len(), 1);
        assert_eq!(trace.find(RecordKind::Begin, "sampler.child").len(), 1);
        let leaf = trace.find(RecordKind::Instant, "sampler.leaf");
        assert_eq!(leaf.len(), 1);
        assert!(trace.has_ancestor(leaf[0].id, root_id), "leaf must descend from the root");
        assert!(
            trace.find(RecordKind::Begin, "sampler.other_request").is_empty()
                && trace.find(RecordKind::Instant, "sampler.other_event").is_empty(),
            "foreign request must not be retained"
        );
        // Every span that began also ended inside the subtree.
        for begin in trace.find(RecordKind::Begin, "sampler.child") {
            assert!(
                trace.records.iter().any(|r| r.kind == RecordKind::End && r.id == begin.id),
                "subtree must carry the End records of its spans"
            );
        }
    }

    #[test]
    fn no_root_retains_metadata_with_an_empty_trace() {
        let s = TailSampler::new(TailConfig::absolute(Duration::ZERO));
        s.observe(None, ms(7), RequestOutcome::Completed, false);
        let kept = s.take_retained();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].root, 0);
        assert!(kept[0].trace.records.is_empty());
    }
}

//! A minimal JSON reader used to *validate* exporter output in tests
//! and tooling (the workspace vendors no serde). It parses the full
//! JSON grammar the exporters emit; it is not a general-purpose,
//! spec-complete parser.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (rejecting trailing garbage).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object member lookup (first match; `None` off objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{text}' at {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| "non-utf8 \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a
                    // &str, so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let json = Json::parse(doc).unwrap();
        assert_eq!(json.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(json.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(json.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(json.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(json.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] garbage").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let json = Json::parse("\"A\\u00e9\"").unwrap();
        assert_eq!(json.as_str(), Some("A\u{e9}"));
        let json = Json::parse("\"raw \u{e9} passes through\"").unwrap();
        assert_eq!(json.as_str(), Some("raw \u{e9} passes through"));
    }
}

//! Batched parallel neighbor search: the query-level parallelism of the
//! two-stage KD-tree (paper Sec. 4.1), in software.
//!
//! Builds a dense synthetic frame, then runs the same RPCE-style NN query
//! stream three ways — serial classic tree, batched two-stage tree at
//! several thread counts, and the batched approximate searcher — printing
//! wall-clock, node-visit counts and the follower rate. Results are
//! bit-identical between serial and batched execution at any thread
//! count; only the wall-clock moves.
//!
//! ```text
//! cargo run --release --example batch_search
//! ```

use std::time::Instant;

use tigris::core::batch::{BatchConfig, BatchSearcher};
use tigris::core::{ApproxConfig, ApproxSearcher, KdTree, SearchStats, TwoStageKdTree};
use tigris::data::{Sequence, SequenceConfig};

fn main() {
    let seq = Sequence::generate(&SequenceConfig::medium(), 42);
    let target = seq.frame(0).points().to_vec();
    let queries = seq.frame(1).points().to_vec();
    println!("indexed {} points, querying {} NNs\n", target.len(), queries.len());

    // Serial baseline: the canonical KD-tree, one query at a time.
    let classic = KdTree::build(&target);
    let mut serial_stats = SearchStats::new();
    let t0 = Instant::now();
    let serial: Vec<_> =
        queries.iter().map(|&q| classic.nn_with_stats(q, &mut serial_stats)).collect();
    let serial_time = t0.elapsed();
    println!(
        "classic serial      {serial_time:>10.2?}  ({:.0} visits/query)",
        serial_stats.visits_per_query()
    );

    // Batched two-stage tree across thread counts.
    let mut two_stage = TwoStageKdTree::build(&target, 7);
    for threads in [1usize, 2, 4, 0] {
        let cfg = BatchConfig { threads, min_chunk: 64 };
        let mut stats = SearchStats::new();
        let t0 = Instant::now();
        let batched = two_stage.nn_batch(&queries, &cfg, &mut stats);
        let elapsed = t0.elapsed();
        let label = if threads == 0 { "auto".into() } else { format!("{threads}") };
        // Exact search: identical answers, counted identically.
        assert_eq!(batched.len(), serial.len());
        assert!(batched
            .iter()
            .zip(&serial)
            .all(|(a, b)| a.map(|n| n.distance_squared) == b.map(|n| n.distance_squared)));
        println!(
            "two-stage batched   {elapsed:>10.2?}  threads={label:<4} ({:.0} visits/query)",
            stats.visits_per_query()
        );
    }

    // The approximate leader/follower search, batched by leaf.
    let mut approx = ApproxSearcher::new(&two_stage, ApproxConfig::default());
    let cfg = BatchConfig::auto();
    let mut stats = SearchStats::new();
    let t0 = Instant::now();
    approx.nn_batch(&queries, &cfg, &mut stats);
    let elapsed = t0.elapsed();
    println!(
        "approx batched      {elapsed:>10.2?}  followers={:.0}% ({:.0} visits/query)",
        stats.follower_rate() * 100.0,
        stats.visits_per_query()
    );
}

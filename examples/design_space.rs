//! Mini design-space exploration (paper Sec. 3.2, Fig. 3): evaluate the
//! eight design points DP1–DP8 on a synthetic sequence, print the
//! accuracy/time tradeoff and mark the Pareto frontier, then show each
//! point's stage breakdown (Fig. 4a) and KD-search share (Fig. 4b).
//!
//! Run with:
//! ```text
//! cargo run --release --example design_space
//! ```

use tigris::data::{Sequence, SequenceConfig};
use tigris::geom::RigidTransform;
use tigris::pipeline::dse::{evaluate_design_points, pareto_frontier};
use tigris::pipeline::Stage;

fn main() {
    let mut cfg = SequenceConfig::medium();
    cfg.frames = 3;
    println!("generating a {}-frame sequence...", cfg.frames);
    let seq = Sequence::generate(&cfg, 11);
    let gts: Vec<RigidTransform> =
        (0..seq.len() - 1).map(|i| seq.ground_truth_relative(i)).collect();

    println!("evaluating DP1..DP8 (this takes a minute in release mode)...\n");
    let points = evaluate_design_points(seq.frames(), &gts);

    let tradeoff: Vec<(f64, f64)> =
        points.iter().map(|p| (p.translational_percent, p.time_per_pair.as_secs_f64())).collect();
    let pareto = pareto_frontier(&tradeoff);

    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>8}",
        "DP", "t-err (%)", "r-err (°/m)", "time (ms)", "Pareto"
    );
    for (i, p) in points.iter().enumerate() {
        println!(
            "{:<6} {:>12.2} {:>12.4} {:>12.1} {:>8}",
            p.label,
            p.translational_percent,
            p.rotational_deg_per_m,
            p.time_per_pair.as_secs_f64() * 1e3,
            if pareto.contains(&i) { "*" } else { "" }
        );
    }

    println!("\nstage time distribution (Fig. 4a view):");
    print!("{:<6}", "DP");
    for s in Stage::ALL {
        print!(" {:>8}", &s.name()[..7.min(s.name().len())]);
    }
    println!(" {:>8}", "KD-srch");
    for p in &points {
        print!("{:<6}", p.label);
        for s in Stage::ALL {
            print!(" {:>7.1}%", p.profile.fraction(s) * 100.0);
        }
        println!(" {:>7.1}%", p.profile.kd_search_fraction() * 100.0);
    }
    println!("\nthe paper's observation: no single stage dominates consistently,");
    println!("but KD-tree search is the common bottleneck across design points.");
}

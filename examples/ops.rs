//! Operational observability end to end: serve real requests with the
//! always-on flight recorder and a retain-the-tail sampler, declare an
//! SLO the workload is guaranteed to breach, and watch the monitor dump
//! a post-mortem bundle — the last seconds of spans, the breached
//! verdicts, the retained slow-request trees and a metrics summary.
//!
//! Run with:
//! ```text
//! cargo run --release --example ops
//! ```
//! then open the printed `trace.json` at <https://ui.perfetto.dev>.
//! Every binary gets the same machinery without code changes via the
//! environment:
//! ```text
//! TIGRIS_SLO='serve.latency_us:p99<=250ms' TIGRIS_TAIL_SLOW_US=5000 \
//!   cargo run --release --example serve
//! ```

use std::sync::Arc;
use std::time::Duration;

use tigris::data::{LidarConfig, Sequence, SequenceConfig};
use tigris::map::{Mapper, MapperConfig};
use tigris::obs;
use tigris::obs::ops::{OpsConfig, OpsMonitor};
use tigris::obs::slo::parse_specs;
use tigris::serve::{LocalizationService, MapSnapshot, ServeConfig};

fn main() {
    // The flight recorder runs continuously (it defaults on in every
    // service; this is explicit for the example's sake). No drain, no
    // export unless something goes wrong — the ring just keeps the
    // recent past.
    obs::set_recorder(true);

    // ---- A map to serve ------------------------------------------------
    let mut cfg = SequenceConfig::loop_circuit(60.0, 6);
    cfg.lidar = LidarConfig::tiny();
    println!("generating a {}-frame closed-circuit sequence (60 m ring)...", cfg.frames);
    let seq = Sequence::generate(&cfg, 7);
    println!("building the map...");
    let mut mapper = Mapper::new(MapperConfig::serving());
    for i in 0..seq.len() {
        mapper.push(seq.frame(i)).expect("mapping frame failed");
    }
    let snapshot = Arc::new(MapSnapshot::freeze(mapper).expect("freeze failed"));

    // ---- The operational tier ------------------------------------------
    // An SLO no real request can meet (p99 ≤ 1 µs) stands in for a
    // production latency regression: the very first evaluation breaches
    // and triggers the post-mortem dump. `TIGRIS_SLO` declares the same
    // thing environmentally for any binary.
    let specs = parse_specs("serve.latency_us:p99<=1us").expect("spec parses");
    let ops = OpsMonitor::new(OpsConfig {
        dir: std::env::temp_dir().join("tigris-ops-example"),
        specs,
        window: Duration::from_secs(10),
    });

    // Retain every request's trace (cutoff 0) so the bundle has tails
    // to show; production would keep the default self-calibrating p99
    // threshold (or set `TIGRIS_TAIL_SLOW_US`).
    std::env::set_var("TIGRIS_TAIL_SLOW_US", "0");
    let service = LocalizationService::new(Arc::clone(&snapshot), ServeConfig::default());
    std::env::remove_var("TIGRIS_TAIL_SLOW_US");
    let label = ops.register("serve", service.registry(), Some(service.sampler()));
    println!("registered service as '{label}' with SLO serve.latency_us:p99<=1us");

    // ---- Serve: every request is an induced latency breach -------------
    let mut session = service.open_session().expect("admission");
    for frame in [2usize, 3, 4, 5] {
        let step = session.localize(seq.frame(frame)).expect("localization failed");
        println!("frame {frame} → {}", step.pose.translation);
    }

    // ---- One monitor tick: evaluate, breach, dump ----------------------
    let bundles = ops.tick();
    println!("\n{}", ops.snapshot_text());
    match bundles.first() {
        Some(dir) => {
            println!("SLO breached — post-mortem bundle written to:");
            println!("  {}", dir.display());
            for file in ["trace.json", "records.jsonl", "verdicts.json", "retained.json"] {
                let len = std::fs::metadata(dir.join(file)).map(|m| m.len()).unwrap_or(0);
                println!("    {file:<14} {len:>8} bytes");
            }
            println!("open {}/trace.json at https://ui.perfetto.dev", dir.display());
        }
        None => println!("no breach — raise the example's SLO threshold to see a bundle"),
    }
}

//! Quickstart: register two synthetic LiDAR frames end to end.
//!
//! Generates a short synthetic sequence (the KITTI stand-in), registers
//! frame 1 onto frame 0 with the default pipeline, and compares the
//! estimate against ground truth.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use tigris::data::{relative_pose_error, Sequence, SequenceConfig};
use tigris::pipeline::{register, RegistrationConfig, Stage};

fn main() {
    // A small-but-realistic sequence: 32-beam scanner over an urban corridor.
    let mut cfg = SequenceConfig::medium();
    cfg.frames = 2;
    println!("generating synthetic LiDAR frames...");
    let seq = Sequence::generate(&cfg, 42);
    println!("frame 0: {} points, frame 1: {} points", seq.frame(0).len(), seq.frame(1).len());

    // Register frame 1 (source) onto frame 0 (target).
    let config = RegistrationConfig::default();
    let result = register(seq.frame(1), seq.frame(0), &config).expect("registration failed");

    let gt = seq.ground_truth_relative(0);
    let (t_err, r_err) = relative_pose_error(&result.transform, &gt);

    println!("\nestimated transform: {}", result.transform);
    println!("initial estimate:    {}", result.initial_transform);
    println!("ground truth:        {gt}");
    println!("translation error:   {:.3} m (of {:.3} m motion)", t_err, gt.translation_norm());
    println!("rotation error:      {:.4}°", r_err.to_degrees());
    println!(
        "\nkey-points: {} source / {} target, {} inlier correspondences, {} ICP iterations",
        result.keypoints.0,
        result.keypoints.1,
        result.inlier_correspondences,
        result.icp_iterations
    );

    println!("\nper-stage time (paper Fig. 4a view):");
    for stage in Stage::ALL {
        println!("  {:26} {:6.1}%", stage.name(), result.profile.fraction(stage) * 100.0);
    }
    println!(
        "\nKD-tree search: {:.1}% of total — the paper's acceleration target",
        result.profile.kd_search_fraction() * 100.0
    );
}

//! Shared-map localization with the tigris-serve subsystem: build a map
//! once, freeze it into an `Arc`-shared [`MapSnapshot`], and serve many
//! concurrent localization sessions — each cold-starting from a single
//! raw frame with no odometry history, then tracking frame to frame.
//!
//! Run with:
//! ```text
//! cargo run --release --example serve
//! ```

use std::sync::Arc;

use tigris::data::{LidarConfig, Sequence, SequenceConfig};
use tigris::map::{Mapper, MapperConfig};
use tigris::serve::{LocalizationService, MapSnapshot, ServeConfig, StepKind};

fn main() {
    // ---- Write side: one mapper builds the map -------------------------
    let mut cfg = SequenceConfig::loop_circuit(60.0, 6);
    cfg.lidar = LidarConfig::tiny();
    println!("generating a {}-frame closed-circuit sequence (60 m ring)...", cfg.frames);
    let seq = Sequence::generate(&cfg, 7);

    println!("building the map (serving profile: submap anchors every 6 m)...");
    let mut mapper = Mapper::new(MapperConfig::serving());
    for i in 0..seq.len() {
        mapper.push(seq.frame(i)).expect("mapping frame failed");
    }
    println!(
        "  {} submaps, {} points, {} loop closures",
        mapper.submaps().len(),
        mapper.total_points(),
        mapper.closures().len()
    );

    // ---- Freeze: the map becomes an immutable, shareable snapshot ------
    let snapshot = Arc::new(MapSnapshot::freeze(mapper).expect("freeze failed"));
    println!(
        "frozen: {} verifiable submaps, {} points moved (zero copied)",
        snapshot.verifiable_submaps(),
        snapshot.total_points()
    );

    // ---- Read side: concurrent sessions localize against it ------------
    let service = LocalizationService::new(Arc::clone(&snapshot), ServeConfig::default());
    let scripts: Vec<Vec<usize>> = vec![vec![2, 3, 4], vec![58, 59, 60], vec![61, 62, 63]];
    std::thread::scope(|scope| {
        for (id, script) in scripts.iter().enumerate() {
            let service = &service;
            let seq = &seq;
            scope.spawn(move || {
                let mut session = service.open_session().expect("admission");
                for &frame in script {
                    match session.localize(seq.frame(frame)) {
                        Ok(step) => match step.kind {
                            StepKind::Relocalized(r) => println!(
                                "session {id}: frame {frame} cold-started at {} \
                                 (submap {}, confidence {:.2})",
                                step.pose.translation, r.submap, r.confidence
                            ),
                            StepKind::Tracked { .. } => println!(
                                "session {id}: frame {frame} tracked to {}",
                                step.pose.translation
                            ),
                        },
                        Err(err) => println!("session {id}: frame {frame} failed: {err}"),
                    }
                }
            });
        }
    });

    let stats = service.stats();
    println!(
        "served {} frames across {} sessions: {} relocalizations, {} tracked, \
         p50 {:?} / p99 {:?}",
        stats.frames,
        stats.sessions_admitted,
        stats.relocalizations_succeeded,
        stats.frames_tracked,
        stats.latency.p50,
        stats.latency.p99
    );
}

//! End-to-end observability: map a closed-circuit sequence, serve four
//! concurrent localization sessions with tracing on, and write the
//! whole run as a Chrome trace — one connected span tree per request,
//! from the serve entry point down to the KD-tree — plus a metrics
//! summary on stderr.
//!
//! Run with:
//! ```text
//! cargo run --release --example observe
//! ```
//! then load the written `tigris-trace.json` at
//! <https://ui.perfetto.dev> (or `chrome://tracing`) to explore the
//! spans. Every binary gets the same behavior without code changes via
//! the environment: `TIGRIS_TRACE=chrome TIGRIS_TRACE_FILE=out.json`.

use std::sync::Arc;

use tigris::data::{LidarConfig, Sequence, SequenceConfig};
use tigris::map::{Mapper, MapperConfig};
use tigris::obs;
use tigris::serve::{LocalizationService, MapSnapshot, ServeConfig};

fn main() {
    // Tracing covers the whole run: the mapper's insert/closure/optimize
    // spans, then every serve request's tree.
    obs::set_enabled(true);

    // ---- Write side: one mapper builds the map, traced -----------------
    let mut cfg = SequenceConfig::loop_circuit(60.0, 6);
    cfg.lidar = LidarConfig::tiny();
    println!("generating a {}-frame closed-circuit sequence (60 m ring)...", cfg.frames);
    let seq = Sequence::generate(&cfg, 7);

    println!("building the map with tracing on...");
    let mut mapper = Mapper::new(MapperConfig::serving());
    for i in 0..seq.len() {
        mapper.push(seq.frame(i)).expect("mapping frame failed");
    }
    let map_stats = mapper.stats();
    let map_registry = Arc::clone(mapper.registry());
    println!(
        "  {} frames mapped, {} closures accepted, {} optimizations",
        map_stats.frames, map_stats.closures_accepted, map_stats.optimizations
    );

    // ---- Read side: four sessions, each one request tree ---------------
    let snapshot = Arc::new(MapSnapshot::freeze(mapper).expect("freeze failed"));
    let service = LocalizationService::new(Arc::clone(&snapshot), ServeConfig::default());
    let scripts: Vec<Vec<usize>> =
        vec![vec![2, 3, 4], vec![58, 59, 60], vec![61, 62], vec![63, 64]];
    std::thread::scope(|scope| {
        for (id, script) in scripts.iter().enumerate() {
            let service = &service;
            let seq = &seq;
            scope.spawn(move || {
                let mut session = service.open_session().expect("admission");
                for &frame in script {
                    let step = session.localize(seq.frame(frame)).expect("localization failed");
                    println!("session {id}: frame {frame} → {}", step.pose.translation);
                }
            });
        }
    });

    // ---- Export: spans to Perfetto, metrics to stderr ------------------
    let trace = obs::drain();
    let path = "tigris-trace.json";
    let mut file = std::fs::File::create(path).expect("creating the trace file failed");
    obs::export::write_chrome_trace(&mut file, &trace).expect("writing the trace failed");
    println!(
        "\n{} records ({} dropped) written to {path} — load it at https://ui.perfetto.dev",
        trace.records.len(),
        trace.dropped
    );

    // The summary exporter renders span totals plus any registry: here
    // the serving service's (latency histogram, session/frame counters)
    // and the mapper's (frame/closure/optimization counters).
    eprintln!("{}", obs::export::summary(&trace, Some(service.registry())));
    eprintln!("{}", obs::export::summary(&obs::Trace::default(), Some(&map_registry)));
}

//! LiDAR odometry over a synthetic sequence — the paper's motivating
//! application (Sec. 2.2): estimate the vehicle's trajectory by
//! registering consecutive frames, then score it with the KITTI metrics.
//!
//! Uses the [`Odometer`] API: frame-at-a-time consumption, one *frame
//! preparation* (KD-tree build + normals + key-points + descriptors) per
//! frame — each step reuses the previous frame's `PreparedFrame` instead
//! of recomputing its front end — and a constant-velocity motion prior.
//!
//! Run with:
//! ```text
//! cargo run --release --example odometry
//! ```

use tigris::data::{sequence_error, write_poses, Sequence, SequenceConfig};
use tigris::geom::RigidTransform;
use tigris::pipeline::{DesignPoint, Odometer};

fn main() {
    let mut cfg = SequenceConfig::medium();
    cfg.frames = 6;
    println!("generating a {}-frame synthetic sequence...", cfg.frames);
    let seq = Sequence::generate(&cfg, 7);

    // Drive the accuracy-oriented design point (paper's DP7).
    let mut odo = Odometer::new(DesignPoint::Dp7.config());

    let mut estimates = Vec::new();
    let mut gts = Vec::new();
    let mut poses = vec![RigidTransform::IDENTITY];
    println!("\nframe-to-frame registration (DP7, accuracy-oriented):");
    for i in 0..seq.len() {
        match odo.push(seq.frame(i)).expect("registration failed") {
            None => println!("  frame 0: map origin"),
            Some(step) => {
                let gt = seq.ground_truth_relative(i - 1);
                println!(
                    "  {} → {}: est |t| = {:.3} m, gt |t| = {:.3} m, {} ICP iters, \
                     kd-search {:.0}%, prepared {} frame(s) / reused {}",
                    i,
                    i - 1,
                    step.relative.translation_norm(),
                    gt.translation_norm(),
                    step.registration.icp_iterations,
                    step.registration.profile.kd_search_fraction() * 100.0,
                    step.registration.profile.frames_prepared,
                    step.registration.profile.frames_reused
                );
                estimates.push(step.relative);
                gts.push(gt);
                poses.push(step.pose);
            }
        }
    }

    let err = sequence_error(&estimates, &gts);
    println!("\nKITTI-style odometry error: {err}");

    let gt_end = seq.pose(seq.len() - 1).translation;
    println!("\naccumulated position: {} (ground truth {})", odo.pose().translation, gt_end);
    println!(
        "end-point drift: {:.3} m over {:.1} m of travel",
        (odo.pose().translation - gt_end).norm(),
        gt_end.norm()
    );

    // Export the trajectory in KITTI pose format.
    let out = std::env::temp_dir().join("tigris_trajectory.txt");
    write_poses(&out, &poses).expect("pose write failed");
    println!("trajectory written to {} (KITTI pose format)", out.display());
}

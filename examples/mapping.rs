//! 3D reconstruction / mapping: align a sequence of frames into one global
//! point cloud — the paper's second motivating application (Sec. 2.2:
//! "registration is key to 3D reconstruction, where a set of frames are
//! aligned against one another and merged together to form a global point
//! cloud of the scene").
//!
//! Run with:
//! ```text
//! cargo run --release --example mapping
//! ```

use tigris::core::KdTree;
use tigris::data::{write_xyz, Sequence, SequenceConfig};
use tigris::geom::{PointCloud, RigidTransform};
use tigris::pipeline::{prepare_frame, register_prepared, RegistrationConfig};

fn main() {
    let mut cfg = SequenceConfig::medium();
    cfg.frames = 5;
    println!("generating a {}-frame sequence...", cfg.frames);
    let seq = Sequence::generate(&cfg, 99);

    // Chain pairwise registrations into world poses (frame 0 = world).
    // Every frame is the source of one pair and the target of the next,
    // so prepare each frame once and carry the preparation forward —
    // identical results to register() per pair, at half the front-end
    // work for every interior frame.
    let reg_cfg = RegistrationConfig::default();
    let mut poses = vec![RigidTransform::IDENTITY];
    let mut prev = prepare_frame(seq.frame(0), &reg_cfg).expect("prepare failed");
    for i in 0..seq.len() - 1 {
        let mut next = prepare_frame(seq.frame(i + 1), &reg_cfg).expect("prepare failed");
        let result =
            register_prepared(&mut next, &mut prev, &reg_cfg).expect("registration failed");
        let pose = *poses.last().unwrap() * result.transform;
        println!(
            "frame {} -> {}: |t| = {:.3} m, {} ICP iterations, {} front end(s) reused",
            i + 1,
            i,
            result.transform.translation_norm(),
            result.icp_iterations,
            result.profile.frames_reused
        );
        poses.push(pose);
        prev = next;
    }

    // Merge all frames into one map, downsampled for compactness.
    let mut map = PointCloud::new();
    for (frame, pose) in seq.frames().iter().zip(&poses) {
        map.extend(frame.transformed(pose).points().iter().copied());
    }
    let map = map.voxel_downsample(0.2);
    println!("\nglobal map: {} points after 0.2 m voxel merge", map.len());

    // Map consistency: points of the last frame, placed with the estimated
    // pose, should land on map structure built from earlier frames.
    let early_map: PointCloud = {
        let mut m = PointCloud::new();
        for (frame, pose) in seq.frames()[..seq.len() - 1].iter().zip(&poses) {
            m.extend(frame.transformed(pose).points().iter().copied());
        }
        m.voxel_downsample(0.2)
    };
    let tree = KdTree::build(early_map.points());
    let last = seq.frame(seq.len() - 1).transformed(poses.last().unwrap());
    let mut dists: Vec<f64> = last
        .points()
        .iter()
        .map(|&p| tree.nn(p).unwrap().distance())
        .collect();
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "map consistency: median aligned-NN distance {:.3} m (p90 {:.3} m)",
        dists[dists.len() / 2],
        dists[dists.len() * 9 / 10]
    );

    // Export for external viewers.
    let out = std::env::temp_dir().join("tigris_map.xyz");
    write_xyz(&out, &map).expect("write failed");
    println!("map written to {}", out.display());

    // Ground-truth comparison of the final pose.
    let gt_end = seq.pose(seq.len() - 1);
    let drift = (poses.last().unwrap().translation - gt_end.translation).norm();
    println!(
        "final-pose drift vs ground truth: {:.3} m over {:.1} m traveled",
        drift,
        gt_end.translation.norm()
    );
}

//! 3D reconstruction / mapping with the tigris-map subsystem — the paper's
//! second motivating application (Sec. 2.2: "registration is key to 3D
//! reconstruction, where a set of frames are aligned against one another
//! and merged together to form a global point cloud of the scene").
//!
//! Drives the [`Mapper`] around a closed-circuit sequence: streaming
//! odometry feeds pose-tagged submaps, the revisit is detected by
//! descriptor retrieval + geometric verification, and the pose graph
//! redistributes the accumulated drift. Both the raw-odometry and the
//! drift-corrected global clouds are written as `.xyz` for side-by-side
//! inspection in any viewer.
//!
//! Run with:
//! ```text
//! cargo run --release --example mapping
//! ```

use tigris::data::{absolute_trajectory_error, write_xyz, Sequence, SequenceConfig};
use tigris::geom::PointCloud;
use tigris::map::{Mapper, MapperConfig};

fn main() {
    let circumference = 120.0;
    let cfg = SequenceConfig::loop_circuit(circumference, 6);
    println!(
        "generating a {}-frame closed-circuit sequence ({circumference} m ring)...",
        cfg.frames
    );
    let seq = Sequence::generate(&cfg, 99);

    let mut mapper = Mapper::new(MapperConfig::default());
    for i in 0..seq.len() {
        let step = mapper.push(seq.frame(i)).expect("mapping step failed");
        if step.spawned_submap {
            println!("frame {i:>3}: spawned submap {}", step.submap);
        }
        if let Some(closure) = step.closure {
            println!(
                "frame {i:>3}: LOOP CLOSED against submap {} (frame {}), {} inliers, \
                 pose-graph error {:.3} -> {:.3}",
                closure.submap,
                closure.matched_frame,
                closure.inliers,
                closure.report.initial_error,
                closure.report.final_error
            );
        }
    }

    let stats = mapper.stats();
    println!(
        "\n{} frames -> {} submaps, {} map points; {} closure(s) accepted of {} attempted",
        stats.frames,
        mapper.submaps().len(),
        mapper.total_points(),
        stats.closures_accepted,
        stats.closures_attempted
    );
    println!(
        "front end ran exactly once per frame: {} prepared, {} reuses",
        stats.frames_prepared, stats.frames_reused
    );

    // Accuracy: raw odometry vs the drift-corrected trajectory.
    let raw_ate = absolute_trajectory_error(mapper.raw_poses(), seq.poses());
    let opt_ate = absolute_trajectory_error(mapper.poses(), seq.poses());
    println!("\nabsolute trajectory error: raw odometry {raw_ate:.3} m, corrected {opt_ate:.3} m");

    // Side-by-side clouds: raw odometry (frames chained with unoptimized
    // poses) vs the mapper's corrected submap aggregate.
    let mut raw_map = PointCloud::new();
    for (frame, pose) in seq.frames().iter().zip(mapper.raw_poses()) {
        raw_map.extend(frame.transformed(pose).points().iter().copied());
    }
    let raw_map = raw_map.voxel_downsample(0.2);
    let corrected_map = mapper.global_cloud().voxel_downsample(0.2);

    let raw_out = std::env::temp_dir().join("tigris_map_raw.xyz");
    let corrected_out = std::env::temp_dir().join("tigris_map_corrected.xyz");
    write_xyz(&raw_out, &raw_map).expect("write failed");
    write_xyz(&corrected_out, &corrected_map).expect("write failed");
    println!(
        "\nraw-odometry map ({} pts)  -> {}\ncorrected map   ({} pts)  -> {}",
        raw_map.len(),
        raw_out.display(),
        corrected_map.len(),
        corrected_out.display()
    );

    // A quick taste of the map-query API: structure density around the
    // loop's starting corner.
    let hits = mapper.query(tigris::geom::Vec3::new(0.0, 0.0, 0.0), 3.0);
    println!(
        "\nmap query at the origin (r = 3 m): {} points across {} submap(s)",
        hits.len(),
        hits.iter().map(|h| h.submap).collect::<std::collections::BTreeSet<_>>().len()
    );
}

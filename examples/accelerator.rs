//! Run KD-tree search on the simulated Tigris accelerator and compare
//! against the CPU/GPU baseline models — a miniature of the paper's
//! Fig. 11 experiment.
//!
//! Run with:
//! ```text
//! cargo run --release --example accelerator
//! ```

use tigris::accel::baseline::Workload;
use tigris::accel::{AcceleratorConfig, AcceleratorSim, BaselineModel, SearchKind};
use tigris::core::{KdTree, SearchStats, TwoStageKdTree};
use tigris::data::{Sequence, SequenceConfig};

fn main() {
    // A dense synthetic frame as the search substrate, and the next frame's
    // points as queries (exactly the RPCE workload).
    let mut cfg = SequenceConfig::medium();
    cfg.frames = 2;
    println!("generating frames...");
    let seq = Sequence::generate(&cfg, 21);
    let target = seq.frame(0).points();
    let queries = seq.frame(1).points();
    println!("{} target points, {} NN queries", target.len(), queries.len());

    // Software searches characterize the baseline workloads.
    let classic = KdTree::build(target);
    let mut classic_stats = SearchStats::new();
    for &q in queries {
        classic.nn_with_stats(q, &mut classic_stats);
    }
    let two_stage = TwoStageKdTree::build(target, 10);
    let mut two_stage_stats = SearchStats::new();
    for &q in queries {
        two_stage.nn_with_stats(q, &mut two_stage_stats);
    }

    let baseline = BaselineModel::default();
    let base_kd = baseline.gpu(&Workload::from_stats(&classic_stats));
    let base_2skd = baseline.gpu(&Workload::from_stats(&two_stage_stats));
    let cpu = baseline.cpu(&Workload::from_stats(&classic_stats));

    // The accelerator runs the same queries, cycle by cycle.
    let mut sim = AcceleratorSim::new(&two_stage, AcceleratorConfig::paper());
    let acc = sim.run(queries, SearchKind::Nn);

    // Sanity: accelerator results are exact.
    let sw = two_stage.nn(queries[0]).unwrap();
    assert_eq!(acc.nn_results[0].unwrap().index, sw.index);

    println!("\nKD-tree search time (this workload):");
    println!(
        "  CPU (software, modeled)   {:>10.3} ms @ {:>5.0} W",
        cpu.seconds * 1e3,
        cpu.power_watts
    );
    println!(
        "  GPU  Base-KD              {:>10.3} ms @ {:>5.0} W",
        base_kd.seconds * 1e3,
        base_kd.power_watts
    );
    println!(
        "  GPU  Base-2SKD            {:>10.3} ms @ {:>5.0} W",
        base_2skd.seconds * 1e3,
        base_2skd.power_watts
    );
    println!(
        "  Tigris Acc-2SKD           {:>10.3} ms @ {:>5.1} W",
        acc.seconds * 1e3,
        acc.power_watts()
    );

    println!("\nspeedups:");
    println!("  Acc-2SKD vs Base-KD     {:>7.1}x", base_kd.seconds / acc.seconds);
    println!("  Acc-2SKD vs Base-2SKD   {:>7.1}x", base_2skd.seconds / acc.seconds);
    println!("  Acc-2SKD vs CPU         {:>7.1}x", cpu.seconds / acc.seconds);
    println!("  power reduction vs GPU  {:>7.1}x", base_kd.power_watts / acc.power_watts());

    println!("\naccelerator internals:");
    println!(
        "  FE cycles {} | BE cycles {} | PE utilization {:.0}%",
        acc.fe_cycles,
        acc.be_cycles,
        acc.pe_utilization * 100.0
    );
    println!(
        "  top-tree nodes expanded {} / bypassed {} | leaf points scanned {}",
        acc.nodes_expanded, acc.nodes_bypassed, acc.leaf_points_scanned
    );
    let (pe, rd, wr, leak, dram) = acc.energy.fractions();
    println!(
        "  energy: PE {:.1}% | SRAM read {:.1}% | SRAM write {:.1}% | leakage {:.1}% | DRAM {:.2}%",
        pe * 100.0,
        rd * 100.0,
        wr * 100.0,
        leak * 100.0,
        dram * 100.0
    );

    // ---- Accelerator as a *backend*: the whole pipeline on the machine --
    //
    // Instead of replaying logs, register the accelerator as a search
    // backend and run end-to-end registration "on the hardware". Exact
    // mode: the estimated transform is bit-identical to software.
    use tigris::pipeline::config::SearchBackendConfig;
    use tigris::pipeline::{register, RegistrationConfig};

    tigris::accel::register_accelerator_backend();
    let reg_cfg = RegistrationConfig::builder()
        .backend(SearchBackendConfig::Custom { name: "accelerator" })
        .build()
        .expect("valid config");
    println!("\nend-to-end registration on the accelerator backend...");
    match register(seq.frame(1), seq.frame(0), &reg_cfg) {
        Ok(result) => {
            let gt = seq.ground_truth_relative(0);
            println!(
                "  estimated {} vs ground truth {} ({} ICP iterations)",
                result.transform.translation, gt.translation, result.icp_iterations
            );
        }
        Err(e) => println!("  registration failed: {e}"),
    }
}

//! Sharded serving with epoch hot-swap: a live mapper publishes
//! copy-on-write map epochs while sessions localize against spatial
//! tiles that load on demand under a byte budget.
//!
//! The flow demonstrated here is the shard layer's whole story:
//!
//! 1. a mapper builds a map and **publishes epoch 1** — an immutable,
//!    versioned snapshot sharing unchanged submap payloads by `Arc`;
//! 2. a [`ShardService`] serves it **tiled**: map probes route only to
//!    the spatial tiles whose bounds can answer, tiles become resident
//!    on first touch and evict LRU under `tile_budget_bytes`;
//! 3. the mapper keeps mapping and publishes **epoch 2**; the service
//!    hot-swaps it in — sessions already open keep draining on their
//!    pinned epoch 1, new sessions pin epoch 2, and epoch 1's tiles are
//!    purged when its last session closes.
//!
//! Run with:
//! ```text
//! cargo run --release --example shard_serve
//! ```

use std::sync::Arc;

use tigris::data::{LidarConfig, Sequence, SequenceConfig};
use tigris::map::{Mapper, MapperConfig};
use tigris::serve::shard::{EpochPublisher, ShardConfig, ShardService};
use tigris::serve::StepKind;

fn main() {
    // ---- Write side: a live mapper, still mapping ----------------------
    let mut cfg = SequenceConfig::loop_circuit(60.0, 6);
    cfg.lidar = LidarConfig::tiny();
    println!("generating a {}-frame closed-circuit sequence (60 m ring)...", cfg.frames);
    let seq = Sequence::generate(&cfg, 7);

    let held_back = 3;
    println!("building the map (holding back the last {held_back} frames)...");
    let mut mapper = Mapper::new(MapperConfig::serving());
    for i in 0..seq.len() - held_back {
        mapper.push(seq.frame(i)).expect("mapping frame failed");
    }

    // ---- Publish epoch 1 and serve it tiled ----------------------------
    let mut publisher = EpochPublisher::new();
    let epoch1 = publisher.publish(&mapper).expect("publish failed");
    println!(
        "epoch 1: {} submaps, {} points, ~{} KiB archived",
        epoch1.payloads().len(),
        epoch1.total_points(),
        epoch1.archive_bytes() / 1024
    );

    // A deliberately tight tile budget: tiles load on demand and evict
    // LRU, so resident index bytes stay bounded while answers stay
    // bit-identical to the whole-snapshot fan-out.
    let config = ShardConfig { tile_budget_bytes: 2 << 20, ..ShardConfig::default() };
    let service = ShardService::with_epoch(Arc::clone(&epoch1), config);

    let mut session_a = service.open_session().expect("admission");
    let step = session_a.localize(seq.frame(2)).expect("cold start");
    if let StepKind::Relocalized(r) = &step.kind {
        println!(
            "session A: cold-started on epoch {} at {} (submap {}, confidence {:.2})",
            session_a.epoch_version(),
            step.pose.translation,
            r.submap,
            r.confidence
        );
    }

    // ---- The mapper moves on; epoch 2 hot-swaps in ---------------------
    for i in seq.len() - held_back..seq.len() {
        mapper.push(seq.frame(i)).expect("mapping frame failed");
    }
    let epoch2 = publisher.publish(&mapper).expect("publish failed");
    println!(
        "epoch 2: {} payloads shared with epoch 1, {} re-archived (copy-on-write)",
        publisher.payloads_shared(),
        publisher.payloads_copied()
    );
    service.install_epoch(Arc::clone(&epoch2));

    // Session A drains on its pinned epoch; a new session pins epoch 2.
    let step = session_a.localize(seq.frame(3)).expect("tracking");
    println!(
        "session A: still epoch {}, tracked to {}",
        session_a.epoch_version(),
        step.pose.translation
    );
    let mut session_b = service.open_session().expect("admission");
    session_b.localize(seq.frame(2)).expect("cold start");
    println!("session B: cold-started on epoch {}", session_b.epoch_version());

    // Closing epoch 1's last session purges its tiles.
    drop(session_a);
    let stats = service.stats();
    println!(
        "tiles: {} loads, {} hits, {} evictions; resident {} KiB (peak {} KiB) across {} tiles",
        stats.tiles.loads,
        stats.tiles.hits,
        stats.tiles.evictions,
        stats.tiles.resident_bytes / 1024,
        stats.tiles.peak_resident_bytes / 1024,
        stats.tiles.resident_tiles
    );
    println!(
        "served {} frames, {} relocalizations, p99 {:?}",
        stats.frames, stats.relocalizations_succeeded, stats.latency.p99
    );
}
